//! # doda — Distributed Online Data Aggregation in Dynamic Graphs
//!
//! Facade crate of the reproduction of *"Distributed Online Data
//! Aggregation in Dynamic Graphs"* (Bramas, Masuzawa, Tixeuil — ICDCS
//! 2016). It re-exports the workspace crates under a single name and hosts
//! the runnable examples and the cross-crate integration tests.
//!
//! | module | contents |
//! |--------|----------|
//! | [`graph`] | static/evolving graph substrate (`doda-graph`) |
//! | [`stats`] | statistics substrate (`doda-stats`) |
//! | [`core`] | the paper's model, algorithms, convergecast and cost (`doda-core`) |
//! | [`adversary`] | oblivious / adaptive / randomized adversaries (`doda-adversary`) |
//! | [`workloads`] | synthetic interaction-sequence generators (`doda-workloads`) |
//! | [`sim`] | trial runner, batches, the scenario registry, tables (`doda-sim`) |
//! | [`analysis`] | scaling studies and the E1–E14 experiment harness (`doda-analysis`) |
//! | [`service`] | multi-tenant session service: scheduler, wire format, transports (`doda-service`) |
//!
//! [`Sweep`](prelude::Sweep) is the one entry point for running trials:
//! pick an algorithm and an interaction family, set the shape fluently,
//! and the sweep resolves the fastest admissible execution tier (lanes,
//! rounds, streamed or materialized — byte-identical wherever they
//! overlap):
//!
//! ```
//! use doda::prelude::*;
//!
//! let results = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
//!     .n(8)
//!     .trials(4)
//!     .seed(42)
//!     .run();
//! assert!(results.iter().all(|r| r.terminated()));
//! ```
//!
//! The engine layer stays available for single executions — it pulls one
//! interaction per step from a seeded [`sim::Scenario`] source:
//!
//! ```
//! use doda::graph::NodeId;
//! use doda::prelude::*;
//!
//! let mut algo = Gathering::new();
//! let outcome = engine::run_with_id_sets(
//!     &mut algo,
//!     Scenario::Uniform.source(8, 42).as_mut(),
//!     NodeId(0),
//!     EngineConfig::sweep(10_000),
//! )?;
//! assert!(outcome.terminated());
//! # Ok::<(), doda::core::error::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use doda_adversary as adversary;
pub use doda_analysis as analysis;
pub use doda_core as core;
pub use doda_graph as graph;
pub use doda_service as service;
pub use doda_sim as sim;
pub use doda_stats as stats;
pub use doda_workloads as workloads;

mod error;

pub use error::Error;

/// One-stop prelude: the core prelude plus the most used simulation and
/// service types.
pub mod prelude {
    pub use crate::Error;
    pub use doda_core::prelude::*;
    pub use doda_service::prelude::*;
    pub use doda_sim::prelude::*;
    pub use doda_workloads::Workload;
}
