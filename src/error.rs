//! The workspace-level error surface.
//!
//! Each layer of the workspace keeps its own precise error type
//! ([`EngineError`] for the engine, [`FaultConfigError`] for fault
//! plans, [`ServiceError`] / [`WireError`] for the service boundary).
//! Applications that mix layers can funnel them all into one
//! [`enum@Error`] — every layer error converts with `?` — and still
//! recover the original through [`std::error::Error::source`].

use doda_core::error::EngineError;
use doda_core::fault::FaultConfigError;
use doda_service::{ServiceError, WireError};

/// Any error the workspace can produce, one `?`-friendly funnel.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The engine rejected an algorithm decision ([`EngineError`]).
    Engine(EngineError),
    /// A fault plan failed validation ([`FaultConfigError`]).
    FaultConfig(FaultConfigError),
    /// The aggregation service refused a request ([`ServiceError`]).
    Service(ServiceError),
    /// A wire frame failed to decode ([`WireError`]).
    Wire(WireError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Engine(e) => write!(f, "engine error: {e}"),
            Error::FaultConfig(e) => write!(f, "fault configuration error: {e}"),
            Error::Service(e) => write!(f, "service error: {e}"),
            Error::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Engine(e) => Some(e),
            Error::FaultConfig(e) => Some(e),
            Error::Service(e) => Some(e),
            Error::Wire(e) => Some(e),
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<FaultConfigError> for Error {
    fn from(e: FaultConfigError) -> Self {
        Error::FaultConfig(e)
    }
}

impl From<ServiceError> for Error {
    fn from(e: ServiceError) -> Self {
        Error::Service(e)
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_service::SessionId;
    use std::error::Error as _;

    #[test]
    fn layer_errors_funnel_in_and_keep_their_source() {
        fn faulty() -> Result<(), Error> {
            Err(ServiceError::UnknownSession(SessionId(7)))?
        }
        let err = faulty().unwrap_err();
        assert!(matches!(err, Error::Service(_)));
        assert!(err.source().is_some());
        assert!(err.to_string().contains("#7"));
    }

    #[test]
    fn wire_errors_chain_through_service_to_the_root() {
        let err: Error = ServiceError::from(WireError::Truncated).into();
        let service = err.source().expect("service layer");
        let wire = service.source().expect("wire layer");
        assert_eq!(wire.to_string(), WireError::Truncated.to_string());
    }
}
