//! Vehicular scenario (the paper's second motivating example: "cars
//! evolving in a city that communicate with each other in an ad hoc
//! manner").
//!
//! Vehicles random-walk over a grid of road cells and can only interact
//! when co-located; one roadside unit (the sink) collects the *count* of
//! vehicles whose congestion report reached it, each vehicle transmitting
//! at most once. The example sweeps the grid size to show how contact
//! density changes the completion time of each algorithm.
//!
//! ```text
//! cargo run --release --example vehicular_city
//! ```

use doda::core::data::Count;
use doda::graph::NodeId;
use doda::prelude::*;
use doda::sim::table::Table;
use doda::workloads::VehicularWorkload;

fn main() {
    let vehicles = 24;
    let sink = NodeId(0);
    let seed = 11;
    println!("Vehicular data aggregation: {vehicles} vehicles, roadside unit = {sink}\n");

    let mut table = Table::new([
        "grid",
        "algorithm",
        "terminated",
        "interactions",
        "reports aggregated",
    ]);

    for grid_side in [2usize, 4, 8] {
        let workload = VehicularWorkload::new(vehicles, grid_side);
        let trace = workload.generate(10 * vehicles * vehicles, seed);
        for spec in [
            AlgorithmSpec::Gathering,
            AlgorithmSpec::Waiting,
            AlgorithmSpec::WaitingGreedy { tau: None },
        ] {
            let Some(mut algorithm) = spec.instantiate(&trace, sink) else {
                continue;
            };
            let outcome = engine::run(
                algorithm.as_mut(),
                &mut trace.source(false),
                sink,
                |_| Count::unit(),
                EngineConfig::default(),
            )
            .expect("valid decisions");
            table.push_row([
                format!("{grid_side}x{grid_side}"),
                spec.label().to_string(),
                outcome.terminated().to_string(),
                outcome
                    .termination_time
                    .map(|t| (t + 1).to_string())
                    .unwrap_or_else(|| "-".to_string()),
                outcome
                    .sink_data
                    .map(|c| format!("{}/{vehicles}", c.0))
                    .unwrap_or_else(|| "-".to_string()),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    println!("Denser grids (smaller side) give more co-location, hence faster aggregation;");
    println!("sparse grids favour Gathering, which exploits every contact it gets.");
}
