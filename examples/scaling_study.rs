//! Scaling study: the headline comparison of the paper's Section 4, on a
//! small sweep (use `--full` for the benchmark-sized sweep).
//!
//! Reproduces the shapes of Theorems 7–11 against the uniform randomized
//! adversary: the offline optimum grows like `n log n`, Waiting Greedy like
//! `n^{3/2}√log n`, Gathering like `n²` and Waiting like `n² log n`, with
//! the ordering offline < WaitingGreedy < Gathering < Waiting at every `n`.
//!
//! ```text
//! cargo run --release --example scaling_study [-- --full]
//! ```

use doda::analysis::report::{exponents_to_markdown, scaling_to_markdown};
use doda::analysis::ScalingStudy;
use doda::prelude::*;
use doda::stats::harmonic;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let study = if full {
        ScalingStudy::benchmark()
    } else {
        ScalingStudy::quick()
    };
    println!(
        "Scaling study against the uniform randomized adversary: n ∈ {:?}, {} trials per point\n",
        study.ns, study.trials
    );

    let results = study.run_all(&AlgorithmSpec::randomized_comparison());

    println!("{}", scaling_to_markdown(&results));
    println!("{}", exponents_to_markdown(&results));

    println!("Closed-form expectations from the paper's proofs, for comparison:");
    for &n in &study.ns {
        println!(
            "  n = {n:4}: offline (n-1)H(n-1) = {:8.0}   Gathering (n-1)^2 = {:8.0}   Waiting n(n-1)H(n-1)/2 = {:9.0}   WG τ = {:8}",
            harmonic::expected_full_knowledge_interactions(n),
            harmonic::expected_gathering_interactions(n),
            harmonic::expected_waiting_interactions(n),
            harmonic::waiting_greedy_tau(n),
        );
    }
    println!(
        "\nExpected ordering at every n: OfflineOptimal < WaitingGreedy < Gathering < Waiting."
    );
}
