//! Scaling study: the headline comparison of the paper's Section 4, on a
//! small sweep (use `--full` for the benchmark-sized sweep, `--large` for
//! the million-node streamed regime).
//!
//! Reproduces the shapes of Theorems 7–11 against the uniform randomized
//! adversary: the offline optimum grows like `n log n`, Waiting Greedy like
//! `n^{3/2}√log n`, Gathering like `n²` and Waiting like `n² log n`, with
//! the ordering offline < WaitingGreedy < Gathering < Waiting at every `n`.
//!
//! `--large` skips the curve fits and instead demonstrates the large-n
//! regime directly: streamed Gathering trials at n = 10^5 and 10^6 under a
//! fixed interaction budget (peak state is O(n), so both fit comfortably in
//! memory), then a hierarchical sweep at n = 10^5 that *completes* — its
//! O(n^{3/2}) interaction count makes full aggregation feasible at node
//! counts where the flat O(n²) tiers starve on any practical budget.
//!
//! ```text
//! cargo run --release --example scaling_study [-- --full | -- --large]
//! ```

use doda::analysis::report::{exponents_to_markdown, scaling_to_markdown};
use doda::analysis::ScalingStudy;
use doda::prelude::*;
use doda::stats::harmonic;

/// One streamed Gathering trial at `n` under a fixed interaction budget:
/// prints wall-clock throughput and returns the interactions processed.
fn streamed_point(n: usize, budget: usize) -> u64 {
    let t0 = std::time::Instant::now();
    let trials = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .n(n)
        .trials(1)
        .seed(0xD0DA)
        .horizon(Some(budget))
        .parallel(false)
        .run();
    let secs = t0.elapsed().as_secs_f64();
    let processed = trials[0].interactions_processed;
    println!(
        "  n = {n:>9}: {processed} interactions streamed in {secs:5.2} s \
         ({:.0} i/s), terminated: {}",
        processed as f64 / secs.max(1e-9),
        trials[0].terminated(),
    );
    processed
}

/// The `--large` mode: the million-node streamed regime plus hierarchical
/// completion at a node count where flat aggregation starves.
fn large_regime() {
    const BUDGET: usize = 2_000_000;
    const HIER_N: usize = 100_000;
    const HIER_BUDGET: usize = 80_000_000;

    println!("Large-n regime: streamed Gathering vs the uniform adversary, budget = {BUDGET}\n");
    for n in [100_000, 1_000_000] {
        streamed_point(n, BUDGET);
    }
    println!(
        "\nFlat completion at these n needs ~(n-1)^2 interactions \
         (10^10 at n = 10^5), so both runs starve: the point is that the \
         streamed engine sustains them in O(n) memory.\n"
    );

    println!("Hierarchical tier at n = {HIER_N} (clusters of ~√n, budget = {HIER_BUDGET}):");
    let t0 = std::time::Instant::now();
    let trials = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .n(HIER_N)
        .trials(1)
        .seed(0xD0DA)
        .horizon(Some(HIER_BUDGET))
        .parallel(false)
        .tier(ExecutionTier::Hierarchical)
        .run();
    let secs = t0.elapsed().as_secs_f64();
    let trial = &trials[0];
    println!(
        "  fully aggregated: {} after {} interactions in {secs:.2} s \
         — O(n^{{3/2}}) beats the flat tiers' O(n^2) by ~{:.0}x here",
        trial.fully_aggregated(),
        trial.interactions_processed,
        (HIER_N as f64 - 1.0).powi(2) / trial.interactions_processed.max(1) as f64,
    );
}

fn main() {
    if std::env::args().any(|a| a == "--large") {
        large_regime();
        return;
    }
    let full = std::env::args().any(|a| a == "--full");
    let study = if full {
        ScalingStudy::benchmark()
    } else {
        ScalingStudy::quick()
    };
    println!(
        "Scaling study against the uniform randomized adversary: n ∈ {:?}, {} trials per point\n",
        study.ns, study.trials
    );

    let results = study.run_all(&AlgorithmSpec::randomized_comparison());

    println!("{}", scaling_to_markdown(&results));
    println!("{}", exponents_to_markdown(&results));

    println!("Closed-form expectations from the paper's proofs, for comparison:");
    for &n in &study.ns {
        println!(
            "  n = {n:4}: offline (n-1)H(n-1) = {:8.0}   Gathering (n-1)^2 = {:8.0}   Waiting n(n-1)H(n-1)/2 = {:9.0}   WG τ = {:8}",
            harmonic::expected_full_knowledge_interactions(n),
            harmonic::expected_gathering_interactions(n),
            harmonic::expected_waiting_interactions(n),
            harmonic::waiting_greedy_tau(n),
        );
    }
    println!(
        "\nExpected ordering at every n: OfflineOptimal < WaitingGreedy < Gathering < Waiting."
    );
}
