//! Adversarial showdown: the impossibility constructions of Theorems 1–3.
//!
//! Runs the knowledge-free algorithms (and the spanning-tree algorithm,
//! where applicable) against the paper's three adversarial constructions
//! and shows that none of them can finish, even though an offline optimal
//! schedule keeps existing (unbounded cost).
//!
//! ```text
//! cargo run --release --example adversarial_showdown
//! ```

use doda::adversary::{AdaptiveTrap, CycleTrap, ObliviousTrap};
use doda::core::convergecast;
use doda::graph::NodeId;
use doda::prelude::*;
use doda::sim::table::Table;

fn run_once<S: InteractionSource>(
    source: &mut S,
    mut algorithm: Box<dyn DodaAlgorithm>,
    sink: NodeId,
    horizon: u64,
) -> (String, bool) {
    let outcome = engine::run_with_id_sets(
        algorithm.as_mut(),
        source,
        sink,
        EngineConfig::sweep(horizon),
    )
    .expect("valid decisions");
    (algorithm.name().to_string(), outcome.terminated())
}

fn main() {
    let horizon = 50_000;
    let mut table = Table::new([
        "adversary (theorem)",
        "algorithm",
        "terminated within horizon",
    ]);

    // Theorem 1 — 3-node adaptive trap, defeats every algorithm.
    for algo in [
        Box::new(Waiting::new()) as Box<dyn DodaAlgorithm>,
        Box::new(Gathering::new()) as Box<dyn DodaAlgorithm>,
    ] {
        let mut trap = AdaptiveTrap::new();
        let (name, terminated) = run_once(&mut trap, algo, AdaptiveTrap::SINK, horizon);
        table.push_row([
            "adaptive trap (Thm 1)".to_string(),
            name,
            terminated.to_string(),
        ]);
    }

    // Theorem 2 — oblivious star + ring trap.
    let oblivious = ObliviousTrap::for_greedy_algorithms(16);
    for algo in [
        Box::new(Waiting::new()) as Box<dyn DodaAlgorithm>,
        Box::new(Gathering::new()) as Box<dyn DodaAlgorithm>,
    ] {
        let mut adversary = oblivious.adversary();
        let (name, terminated) = run_once(&mut adversary, algo, ObliviousTrap::SINK, horizon);
        table.push_row([
            "oblivious trap (Thm 2)".to_string(),
            name,
            terminated.to_string(),
        ]);
    }

    // Theorem 3 — 4-cycle adaptive trap vs the underlying-graph algorithm.
    let underlying = CycleTrap::underlying_graph();
    let spanning = SpanningTreeAggregation::from_underlying_graph(&underlying, CycleTrap::SINK)
        .expect("the 4-cycle is connected");
    for algo in [
        Box::new(spanning) as Box<dyn DodaAlgorithm>,
        Box::new(Gathering::new()) as Box<dyn DodaAlgorithm>,
    ] {
        let mut trap = CycleTrap::new();
        let (name, terminated) = run_once(&mut trap, algo, CycleTrap::SINK, horizon);
        table.push_row([
            "4-cycle trap (Thm 3)".to_string(),
            name,
            terminated.to_string(),
        ]);
    }

    println!("Adversarial constructions, horizon = {horizon} interactions\n");
    println!("{}", table.to_markdown());

    // The traps are not vacuous: convergecasts keep existing on what they play.
    let seq = ObliviousTrap::for_greedy_algorithms(16).materialize(10_000);
    let possible = convergecast::successive_convergecast_times(&seq, ObliviousTrap::SINK, 100);
    println!(
        "\nOn the first 10,000 interactions of the Theorem 2 trap, {} successive optimal",
        possible.len()
    );
    println!("convergecasts fit — the algorithms above fail although aggregation stays possible,");
    println!("which is exactly the paper's notion of unbounded cost.");
}
