//! Adversarial showdown: the impossibility constructions of Theorems 1–3,
//! plus the sweepable adversaries of the unified scenario registry.
//!
//! Runs the knowledge-free algorithms (and the spanning-tree algorithm,
//! where applicable) against the paper's adversarial constructions and
//! shows that none of them can finish, even though an offline optimal
//! schedule keeps existing (unbounded cost). All adversaries are streamed:
//! the engine pulls one interaction at a time, and the adaptive ones react
//! to the ownership state the algorithm leaves behind.
//!
//! ```text
//! cargo run --release --example adversarial_showdown
//! ```

use doda::adversary::{AdaptiveTrap, CycleTrap};
use doda::core::convergecast;
use doda::graph::NodeId;
use doda::prelude::*;
use doda::sim::table::Table;

fn run_once<S: InteractionSource + ?Sized>(
    source: &mut S,
    mut algorithm: Box<dyn DodaAlgorithm>,
    sink: NodeId,
    horizon: u64,
) -> (String, bool) {
    let outcome = engine::run_with_id_sets(
        algorithm.as_mut(),
        source,
        sink,
        EngineConfig::sweep(horizon),
    )
    .expect("valid decisions");
    (algorithm.name().to_string(), outcome.terminated())
}

fn main() {
    let horizon = 50_000;
    let mut table = Table::new([
        "adversary (theorem)",
        "algorithm",
        "terminated within horizon",
    ]);

    // Theorem 1 — 3-node adaptive trap, defeats every algorithm.
    for algo in [
        Box::new(Waiting::new()) as Box<dyn DodaAlgorithm>,
        Box::new(Gathering::new()) as Box<dyn DodaAlgorithm>,
    ] {
        let mut trap = AdaptiveTrap::new();
        let (name, terminated) = run_once(&mut trap, algo, AdaptiveTrap::SINK, horizon);
        table.push_row([
            "adaptive trap (Thm 1)".to_string(),
            name,
            terminated.to_string(),
        ]);
    }

    // Theorem 2 — oblivious star + ring trap, from the scenario registry.
    for algo in [
        Box::new(Waiting::new()) as Box<dyn DodaAlgorithm>,
        Box::new(Gathering::new()) as Box<dyn DodaAlgorithm>,
    ] {
        let mut adversary = Scenario::ObliviousTrap.source(16, 0);
        let (name, terminated) = run_once(adversary.as_mut(), algo, NodeId(0), horizon);
        table.push_row([
            "oblivious trap (Thm 2)".to_string(),
            name,
            terminated.to_string(),
        ]);
    }

    // Theorem 3 — 4-cycle adaptive trap vs the underlying-graph algorithm.
    let underlying = CycleTrap::underlying_graph();
    let spanning = SpanningTreeAggregation::from_underlying_graph(&underlying, CycleTrap::SINK)
        .expect("the 4-cycle is connected");
    for algo in [
        Box::new(spanning) as Box<dyn DodaAlgorithm>,
        Box::new(Gathering::new()) as Box<dyn DodaAlgorithm>,
    ] {
        let mut trap = CycleTrap::new();
        let (name, terminated) = run_once(&mut trap, algo, CycleTrap::SINK, horizon);
        table.push_row([
            "4-cycle trap (Thm 3)".to_string(),
            name,
            terminated.to_string(),
        ]);
    }

    // The sweepable adaptive isolator (any n): starves Waiting forever,
    // but lets an aggregating strategy push through.
    for algo in [
        Box::new(Waiting::new()) as Box<dyn DodaAlgorithm>,
        Box::new(Gathering::new()) as Box<dyn DodaAlgorithm>,
    ] {
        let mut adversary = Scenario::AdaptiveIsolator.source(16, 0);
        let (name, terminated) = run_once(adversary.as_mut(), algo, NodeId(0), horizon);
        table.push_row([
            "adaptive isolator (sweepable)".to_string(),
            name,
            terminated.to_string(),
        ]);
    }

    println!("Adversarial constructions, horizon = {horizon} interactions\n");
    println!("{}", table.to_markdown());

    // Adaptive adversaries are first-class sweep scenarios: Monte-Carlo
    // batches run streamed through the sharded runner.
    let batch = BatchConfig {
        n: 64,
        trials: 16,
        horizon: Some(100_000),
        seed: 7,
        parallel: true,
    };
    let raw = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::AdaptiveIsolator)
        .config(&batch)
        .run();
    let completed = raw.iter().filter(|r| r.terminated()).count();
    println!(
        "\nSweeping the adaptive isolator (n = {}, {} trials, sharded + streamed):",
        batch.n, batch.trials
    );
    println!(
        "Gathering completed {completed}/{} trials, each with exactly n-1 = {} transmissions.",
        batch.trials,
        raw.first().map(|r| r.transmissions).unwrap_or(0),
    );

    // The traps are not vacuous: convergecasts keep existing on what they play.
    let seq = Scenario::ObliviousTrap
        .materialize(16, 10_000, 0)
        .expect("oblivious scenarios materialise");
    let possible = convergecast::successive_convergecast_times(&seq, NodeId(0), 100);
    println!(
        "\nOn the first 10,000 interactions of the Theorem 2 trap, {} successive optimal",
        possible.len()
    );
    println!("convergecasts fit — the algorithms above fail although aggregation stays possible,");
    println!("which is exactly the paper's notion of unbounded cost.");
}
