//! Body-area sensor network scenario (the paper's first motivating example:
//! "sensors deployed on a human body").
//!
//! A hub (the sink) is contacted periodically by each sensor; sensors also
//! meet each other occasionally. Every sensor holds one temperature reading
//! and the hub must aggregate the *maximum* reading while each sensor
//! transmits at most once. The example compares Waiting, Gathering and
//! Waiting Greedy on the same contact trace.
//!
//! ```text
//! cargo run --release --example body_sensor_network
//! ```

use doda::core::data::MaxData;
use doda::core::knowledge::MeetTimeOracle;
use doda::graph::NodeId;
use doda::prelude::*;
use doda::sim::table::Table;
use doda::stats::harmonic;
use doda::workloads::BodyAreaWorkload;

fn main() {
    let sensors = 15;
    let n = sensors + 1; // + the hub
    let sink = BodyAreaWorkload::HUB;
    let seed = 7;
    let workload = BodyAreaWorkload::new(n);
    let trace = workload.generate(6 * n * n, seed);
    println!("Body-area network: {sensors} sensors reporting to a hub (node {sink})");
    println!("contact trace of {} pairwise interactions\n", trace.len());

    // Synthetic readings: sensor i measured 36.0 + i/10 degrees.
    let reading = |v: NodeId| MaxData(36.0 + v.index() as f64 / 10.0);
    let expected_max = 36.0 + (n - 1) as f64 / 10.0;

    let tau = harmonic::waiting_greedy_tau(n);
    let algorithms: Vec<(String, Box<dyn DodaAlgorithm>)> = vec![
        ("Waiting".to_string(), Box::new(Waiting::new())),
        ("Gathering".to_string(), Box::new(Gathering::new())),
        (
            format!("WaitingGreedy(τ={tau})"),
            Box::new(WaitingGreedy::new(tau, MeetTimeOracle::new(&trace, sink))),
        ),
    ];

    let mut table = Table::new([
        "algorithm",
        "terminated",
        "interactions",
        "max reading at hub",
    ]);
    for (label, mut algorithm) in algorithms {
        let outcome = engine::run(
            algorithm.as_mut(),
            &mut trace.source(false),
            sink,
            reading,
            EngineConfig::default(),
        )
        .expect("valid decisions");
        table.push_row([
            label,
            outcome.terminated().to_string(),
            outcome
                .termination_time
                .map(|t| (t + 1).to_string())
                .unwrap_or_else(|| "-".to_string()),
            outcome
                .sink_data
                .map(|d| format!("{:.1}°C", d.0))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("(every terminating run must report the true maximum, {expected_max:.1}°C)");
}
