//! Quickstart: run every algorithm of the paper on the uniform randomized
//! adversary and print how long each took, together with the paper's cost
//! measure.
//!
//! Streaming is the default execution path: knowledge-free algorithms pull
//! interactions straight from the seeded scenario source (`O(n)` memory at
//! any horizon). Only the knowledge-based algorithms materialise the
//! adversary's sequence — their oracles (`meetTime`, underlying graph,
//! futures, full sequence) are functions of the future.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use doda::core::cost::cost_of_duration;
use doda::graph::NodeId;
use doda::prelude::*;
use doda::sim::table::Table;
use doda::sim::Scenario;

fn main() {
    let n = 32;
    let sink = NodeId(0);
    let seed = 2016; // ICDCS 2016
    let horizon = 8 * n * n;
    let scenario = Scenario::Uniform;
    println!("Distributed online data aggregation over a random dynamic graph");
    println!("n = {n} nodes, sink = {sink}, scenario = {scenario}, seed = {seed}\n");

    // The bridge for the knowledge-based algorithms: commit the adversary
    // to a finite sequence so their oracles can be built. The streamed
    // path below replays the *same* stream without this buffer.
    let sequence = scenario
        .materialize(n, horizon, seed)
        .expect("the uniform scenario is not adaptive");

    let mut table = Table::new([
        "algorithm",
        "knowledge",
        "mode",
        "terminated",
        "interactions",
        "cost (successive convergecasts)",
    ]);

    for spec in AlgorithmSpec::all() {
        let (mode, outcome) = if let Some(mut algorithm) = spec.instantiate_online() {
            // Knowledge-free: stream straight off the adversary.
            let outcome = engine::run_with_id_sets(
                algorithm.as_mut(),
                scenario.source(n, seed).as_mut(),
                sink,
                EngineConfig::with_max_interactions(horizon as u64),
            )
            .expect("algorithms only emit valid decisions");
            ("streamed", outcome)
        } else {
            // Knowledge-based: build the oracles from the committed sequence.
            let Some(mut algorithm) = spec.instantiate(&sequence, sink) else {
                continue;
            };
            let outcome = engine::run_with_id_sets(
                algorithm.as_mut(),
                &mut sequence.stream(false),
                sink,
                EngineConfig::default(),
            )
            .expect("algorithms only emit valid decisions");
            ("materialized", outcome)
        };
        let cost = cost_of_duration(&sequence, sink, outcome.termination_time, 256);
        table.push_row([
            spec.to_string(),
            spec.knowledge().to_string(),
            mode.to_string(),
            outcome.terminated().to_string(),
            outcome
                .termination_time
                .map(|t| (t + 1).to_string())
                .unwrap_or_else(|| "-".to_string()),
            cost.to_string(),
        ]);
    }

    println!("{}", table.to_markdown());
    println!("The offline optimum always has cost 1; online algorithms pay more, and the");
    println!(
        "paper's theorems predict the ordering offline < WaitingGreedy < Gathering < Waiting."
    );
}
