//! Quickstart: run every algorithm of the paper on one random dynamic graph
//! and print how long each took, together with the paper's cost measure.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use doda::core::cost::cost_of_duration;
use doda::graph::NodeId;
use doda::prelude::*;
use doda::sim::table::Table;
use doda::workloads::UniformWorkload;

fn main() {
    let n = 32;
    let sink = NodeId(0);
    let seed = 2016; // ICDCS 2016
    println!("Distributed online data aggregation over a random dynamic graph");
    println!("n = {n} nodes, sink = {sink}, uniform randomized adversary, seed = {seed}\n");

    // The adversary commits to a (long enough) sequence of pairwise
    // interactions; knowledge-based algorithms derive their oracles from it.
    let sequence = UniformWorkload::new(n).generate(8 * n * n, seed);

    let mut table = Table::new([
        "algorithm",
        "knowledge",
        "terminated",
        "interactions",
        "cost (successive convergecasts)",
    ]);

    for spec in AlgorithmSpec::all() {
        let Some(mut algorithm) = spec.instantiate(&sequence, sink) else {
            continue;
        };
        let outcome = engine::run_with_id_sets(
            algorithm.as_mut(),
            &mut sequence.source(false),
            sink,
            EngineConfig::default(),
        )
        .expect("algorithms only emit valid decisions");
        let cost = cost_of_duration(&sequence, sink, outcome.termination_time, 256);
        table.push_row([
            spec.to_string(),
            spec.knowledge().to_string(),
            outcome.terminated().to_string(),
            outcome
                .termination_time
                .map(|t| (t + 1).to_string())
                .unwrap_or_else(|| "-".to_string()),
            cost.to_string(),
        ]);
    }

    println!("{}", table.to_markdown());
    println!("The offline optimum always has cost 1; online algorithms pay more, and the");
    println!(
        "paper's theorems predict the ordering offline < WaitingGreedy < Gathering < Waiting."
    );
}
