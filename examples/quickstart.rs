//! Quickstart: sweep every algorithm of the paper over the uniform
//! randomized adversary with one [`Sweep`] call each, and print what
//! happened — including which execution tier each sweep resolved to.
//!
//! [`Sweep`] is the one entry point for running trials. It picks the
//! fastest admissible engine path per algorithm/scenario pair:
//!
//! - **lanes** — knowledge-free, fault-free trials stepped in lockstep
//!   through `[u64]` bit-lane state, up to 64 per batch;
//! - **rounds** — native matching-per-round execution for round scenarios;
//! - **streamed** — the scalar per-trial path, one interaction per step
//!   (`O(n)` memory at any horizon), required once faults are in play;
//! - **materialized** — knowledge-based algorithms only: the adversary
//!   commits to a finite sequence so oracles over the future can be built.
//!
//! Tiers are interchangeable where they overlap — per-trial results are
//! byte-identical — so the resolver is free to chase throughput.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use doda::prelude::*;
use doda::sim::table::Table;

fn main() {
    let n = 32;
    let trials = 8;
    let seed = 2016; // ICDCS 2016
    let scenario = Scenario::Uniform;
    println!("Distributed online data aggregation over a random dynamic graph");
    println!("n = {n} nodes, scenario = {scenario}, {trials} trials, seed = {seed}\n");

    let mut table = Table::new([
        "algorithm",
        "knowledge",
        "tier",
        "terminated",
        "mean interactions",
    ]);

    for spec in AlgorithmSpec::all() {
        if !scenario.supports(spec) {
            continue;
        }
        let sweep = Sweep::scenario(spec, scenario)
            .n(n)
            .trials(trials)
            .seed(seed);
        let tier = sweep.path_label();
        let results = sweep.run();
        let terminated = results.iter().filter(|r| r.terminated()).count();
        let mean = results
            .iter()
            .map(|r| r.interactions_processed)
            .sum::<u64>() as f64
            / trials as f64;
        table.push_row([
            spec.to_string(),
            spec.knowledge().to_string(),
            tier.to_string(),
            format!("{terminated}/{trials}"),
            format!("{mean:.0}"),
        ]);
    }

    println!("{}", table.to_markdown());
    println!("The paper's theorems predict the ordering offline < WaitingGreedy < Gathering");
    println!("< Waiting on expected termination time under the randomized adversary.\n");

    // The tier contract, demonstrated: forcing the lane tier and the scalar
    // reference produces the same trials, byte for byte.
    let forced = |tier| {
        Sweep::scenario(AlgorithmSpec::Gathering, scenario)
            .n(n)
            .trials(trials)
            .seed(seed)
            .tier(tier)
            .run()
    };
    assert_eq!(forced(ExecutionTier::Lanes), forced(ExecutionTier::Scalar));
    println!("lane tier == scalar reference on all {trials} Gathering trials, byte for byte");
}
