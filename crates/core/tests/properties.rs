//! Property-based tests of the core model.
//!
//! The heavyweight check here is the brute-force verification of the
//! optimal-convergecast computation: on small instances we enumerate *every*
//! admissible behaviour of the model (at each interaction: nobody transmits,
//! or one of the two data-owning nodes transmits) and confirm that the
//! earliest completion time found by exhaustive search equals the completion
//! time computed by `optimal_convergecast` via the reverse-broadcast duality.

use doda_core::convergecast::{optimal_convergecast, validate_schedule};
use doda_core::knowledge::{MeetTime, MeetTimeOracle};
use doda_core::prelude::*;
use doda_graph::NodeId;
use proptest::prelude::*;

const SINK: NodeId = NodeId(0);

fn sequence_strategy(n: usize, max_len: usize) -> impl Strategy<Value = InteractionSequence> {
    prop::collection::vec((0..n, 0..n), 1..max_len).prop_map(move |pairs| {
        let mut filtered: Vec<(usize, usize)> = pairs.into_iter().filter(|(a, b)| a != b).collect();
        if filtered.is_empty() {
            filtered.push((0, 1));
        }
        InteractionSequence::from_pairs(n, filtered)
    })
}

/// Exhaustive search of the earliest completion time of any data
/// aggregation schedule on `seq` (owners encoded as a bitmask).
fn brute_force_opt(seq: &InteractionSequence, sink: NodeId) -> Option<u64> {
    fn recurse(
        seq: &InteractionSequence,
        sink: NodeId,
        t: u64,
        owners: u32,
        best: &mut Option<u64>,
    ) {
        let n = seq.node_count() as u32;
        let full_done = owners == 1 << sink.index();
        if full_done {
            // Completed strictly before t; the completion time is the time of
            // the last transmission, which the caller recorded.
            return;
        }
        if let Some(current_best) = *best {
            if t >= current_best {
                return;
            }
        }
        let Some(interaction) = seq.get(t) else {
            return;
        };
        let _ = n;
        let (a, b) = interaction.pair();
        let a_owns = owners & (1 << a.index()) != 0;
        let b_owns = owners & (1 << b.index()) != 0;
        // Option 1: nobody transmits.
        recurse(seq, sink, t + 1, owners, best);
        // Option 2/3: one of the two transmits (if both own data and the
        // sender is not the sink).
        if a_owns && b_owns {
            for (sender, _receiver) in [(a, b), (b, a)] {
                if sender == sink {
                    continue;
                }
                let new_owners = owners & !(1 << sender.index());
                if new_owners == 1 << sink.index() {
                    let candidate = t;
                    if best.map(|b| candidate < b).unwrap_or(true) {
                        *best = Some(candidate);
                    }
                } else {
                    recurse(seq, sink, t + 1, new_owners, best);
                }
            }
        }
    }

    let n = seq.node_count();
    if n <= 1 {
        return Some(0);
    }
    let all_owners = (1u32 << n) - 1;
    let mut best = None;
    recurse(seq, sink, 0, all_owners, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reverse-broadcast convergecast computation is exactly optimal:
    /// it agrees with exhaustive search on every small instance.
    #[test]
    fn convergecast_matches_brute_force(seq in sequence_strategy(4, 9)) {
        let fast = optimal_convergecast(&seq, SINK, 0);
        let brute = brute_force_opt(&seq, SINK);
        match (fast, brute) {
            (None, None) => {}
            (Some(schedule), Some(best)) => {
                prop_assert_eq!(schedule.completion, best);
                prop_assert!(validate_schedule(&seq, SINK, &schedule).is_ok());
            }
            (fast, brute) => {
                return Err(TestCaseError::fail(format!(
                    "feasibility disagreement: duality says {:?}, brute force says {:?}",
                    fast.map(|s| s.completion),
                    brute
                )));
            }
        }
    }

    /// The meetTime oracle agrees with a naive linear scan of the sequence.
    #[test]
    fn meet_time_oracle_matches_naive_scan(
        seq in sequence_strategy(5, 40),
        node in 0usize..5,
        t in 0u64..45,
    ) {
        let oracle = MeetTimeOracle::new(&seq, SINK);
        let node = NodeId(node);
        let expected = if node == SINK {
            MeetTime::At(t)
        } else {
            seq.iter()
                .find(|ti| {
                    ti.time > t && ti.interaction.involves(node) && ti.interaction.involves(SINK)
                })
                .map(|ti| MeetTime::At(ti.time))
                .unwrap_or(MeetTime::Never)
        };
        prop_assert_eq!(oracle.meet_time(node, t), expected);
    }

    /// Every algorithm, on every sequence, respects the one-transmission
    /// rule: the number of ignored decisions plus applied transmissions never
    /// exceeds the number of interactions, and transmissions ≤ n − 1.
    #[test]
    fn transmissions_are_bounded(seq in sequence_strategy(6, 80)) {
        for spec in [AlgorithmSpec::Waiting, AlgorithmSpec::Gathering] {
            let mut algo: Box<dyn DodaAlgorithm> = match spec {
                AlgorithmSpec::Waiting => Box::new(Waiting::new()),
                _ => Box::new(Gathering::new()),
            };
            let outcome = engine::run_with_id_sets(
                algo.as_mut(),
                &mut seq.source(false),
                SINK,
                EngineConfig::default(),
            ).unwrap();
            let transmissions = 6 - outcome.remaining_owners();
            prop_assert!(transmissions <= 5);
            prop_assert!(outcome.interactions_processed as usize <= seq.len());
        }
    }

    /// The Gathering algorithm dominates Waiting on identical sequences:
    /// whenever Waiting terminates, Gathering has terminated no later.
    #[test]
    fn gathering_never_slower_than_waiting(seq in sequence_strategy(6, 120)) {
        let mut waiting = Waiting::new();
        let w = engine::run_with_id_sets(
            &mut waiting, &mut seq.source(false), SINK, EngineConfig::default()).unwrap();
        let mut gathering = Gathering::new();
        let g = engine::run_with_id_sets(
            &mut gathering, &mut seq.source(false), SINK, EngineConfig::default()).unwrap();
        if let Some(wt) = w.termination_time {
            prop_assert!(g.terminated());
            prop_assert!(g.termination_time.unwrap() <= wt);
        }
    }
}

/// An enum mirror of the specs used above, local to this test file (the sim
/// crate is not a dependency of doda-core's dev-dependencies).
#[derive(Clone, Copy)]
enum AlgorithmSpec {
    Waiting,
    Gathering,
}
