//! Data and aggregation functions.
//!
//! Each node initially owns a datum; when a node transmits, the receiver
//! applies an *aggregation function* that combines two data into one whose
//! size is that of a single input ("such functions include min, max,
//! etc."). The [`Aggregate`] trait — defined in [`crate::algebra`], where
//! the full commutative-monoid contract is documented — captures that
//! operation; this module provides the fixed-size implementations covering
//! the functions mentioned by the paper plus two that make testing
//! invariants easy:
//!
//! * [`Count`] — number of original data aggregated so far;
//! * [`SumData`] / [`MinData`] / [`MaxData`] — numeric folds (min/max in
//!   [`f64::total_cmp`] order, so the contract holds even on NaN);
//! * [`IdSet`] — the set of origin nodes (constant size is waived for the
//!   benefit of exact data-conservation checks in tests).
//!
//! The constant-size *sketch* aggregates ([`crate::algebra::DistinctSketch`]
//! and [`crate::algebra::QuantileSketch`]) live in [`crate::algebra`].

use std::collections::BTreeSet;

use doda_graph::NodeId;

use crate::algebra::{total_max, total_min};

pub use crate::algebra::Aggregate;

/// Counts how many original data have been aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Count(pub u64);

impl Count {
    /// The initial datum of a single node.
    pub fn unit() -> Self {
        Count(1)
    }

    /// `true` when exactly `n` original data have been counted — the
    /// count-family analogue of [`IdSet::covers_all`].
    pub fn covers_exactly(&self, n: usize) -> bool {
        self.0 == n as u64
    }
}

impl Aggregate for Count {
    const EXACT_CONSERVATION: bool = true;

    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

/// Sum of numeric readings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumData(pub f64);

impl Aggregate for SumData {
    const EXACT_CONSERVATION: bool = true;

    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

/// Minimum of numeric readings, in [`f64::total_cmp`] order.
///
/// Total-order semantics (rather than [`f64::min`]) keep `merge`
/// commutative and idempotent even when a reading is NaN: NaN sorts above
/// every number in the total order, so `min(NaN, x) == min(x, NaN) == x`
/// bit-for-bit, whereas `f64::min` returns the non-NaN operand and made
/// the result depend on argument order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinData(pub f64);

impl Aggregate for MinData {
    const IDEMPOTENT: bool = true;
    const DUPLICATE_INSENSITIVE: bool = true;

    fn merge(&mut self, other: Self) {
        self.0 = total_min(self.0, other.0);
    }
}

/// Maximum of numeric readings, in [`f64::total_cmp`] order; see
/// [`MinData`] for why total order rather than [`f64::max`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxData(pub f64);

impl Aggregate for MaxData {
    const IDEMPOTENT: bool = true;
    const DUPLICATE_INSENSITIVE: bool = true;

    fn merge(&mut self, other: Self) {
        self.0 = total_max(self.0, other.0);
    }
}

/// The set of origin nodes whose data has been aggregated into this value.
///
/// Unlike the other aggregates this one grows with the number of inputs;
/// it exists so tests can verify *exact* data conservation: at termination
/// the sink's `IdSet` must equal `{0, …, n−1}`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IdSet(pub BTreeSet<NodeId>);

impl IdSet {
    /// The initial datum of node `v`: the singleton `{v}`.
    pub fn singleton(v: NodeId) -> Self {
        let mut s = BTreeSet::new();
        s.insert(v);
        IdSet(s)
    }

    /// Number of origins aggregated.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if no origins are present (never the case for node data).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns `true` if this set is exactly `{0, …, n−1}`.
    pub fn covers_all(&self, n: usize) -> bool {
        self.0.len() == n && self.0.iter().enumerate().all(|(i, v)| v.index() == i)
    }
}

impl Aggregate for IdSet {
    const IDEMPOTENT: bool = true;
    const DUPLICATE_INSENSITIVE: bool = true;
    const EXACT_CONSERVATION: bool = true;

    fn merge(&mut self, other: Self) {
        self.0.extend(other.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_merges_additively() {
        let mut a = Count::unit();
        a.merge(Count(3));
        assert_eq!(a, Count(4));
    }

    #[test]
    fn numeric_aggregates() {
        let mut s = SumData(1.5);
        s.merge(SumData(2.5));
        assert_eq!(s.0, 4.0);

        let mut m = MinData(3.0);
        m.merge(MinData(1.0));
        m.merge(MinData(5.0));
        assert_eq!(m.0, 1.0);

        let mut x = MaxData(3.0);
        x.merge(MaxData(7.0));
        x.merge(MaxData(2.0));
        assert_eq!(x.0, 7.0);
    }

    #[test]
    fn idset_union_and_coverage() {
        let mut a = IdSet::singleton(NodeId(0));
        a.merge(IdSet::singleton(NodeId(2)));
        a.merge(IdSet::singleton(NodeId(1)));
        assert_eq!(a.len(), 3);
        assert!(a.covers_all(3));
        assert!(!a.covers_all(4));
        assert!(!IdSet::default().covers_all(0) || IdSet::default().is_empty());
    }

    #[test]
    fn idset_merge_is_idempotent() {
        let mut a = IdSet::singleton(NodeId(1));
        a.merge(IdSet::singleton(NodeId(1)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn min_max_merge_is_commutative_on_nan() {
        // With f64::min/max these four merges all discarded the NaN and
        // the result depended on operand order; total order is symmetric.
        let mut a = MinData(f64::NAN);
        a.merge(MinData(1.0));
        let mut b = MinData(1.0);
        b.merge(MinData(f64::NAN));
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.0, 1.0);

        let mut a = MaxData(f64::NAN);
        a.merge(MaxData(1.0));
        let mut b = MaxData(1.0);
        b.merge(MaxData(f64::NAN));
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert!(a.0.is_nan(), "NaN sorts above every number in total order");
    }

    #[test]
    fn count_covers_exactly() {
        let mut c = Count::unit();
        c.merge(Count(2));
        assert!(c.covers_exactly(3));
        assert!(!c.covers_exactly(4));
    }

    #[test]
    fn merge_commutativity_spot_check() {
        let mut ab = IdSet::singleton(NodeId(0));
        ab.merge(IdSet::singleton(NodeId(5)));
        let mut ba = IdSet::singleton(NodeId(5));
        ba.merge(IdSet::singleton(NodeId(0)));
        assert_eq!(ab, ba);
    }
}
