//! Pairwise interactions.
//!
//! The paper models a dynamic graph as a couple `(V, I)` where `I =
//! (I_t)_{t∈ℕ}` is a sequence of *pairwise interactions*: at each time step
//! exactly one unordered pair of distinct nodes interacts. The index of an
//! interaction in the sequence is its time of occurrence.

use std::fmt;

use doda_graph::{Edge, NodeId};

/// Discrete time: the index of an interaction in the sequence.
pub type Time = u64;

/// An unordered pair of distinct interacting nodes, stored in canonical
/// `(min, max)` order.
///
/// # Example
///
/// ```
/// use doda_core::Interaction;
/// use doda_graph::NodeId;
///
/// let i = Interaction::new(NodeId(4), NodeId(1));
/// assert_eq!(i.min(), NodeId(1));
/// assert_eq!(i.max(), NodeId(4));
/// assert!(i.involves(NodeId(4)));
/// assert_eq!(i.partner_of(NodeId(1)), Some(NodeId(4)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interaction {
    min: NodeId,
    max: NodeId,
}

impl Interaction {
    /// Creates an interaction between two distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`: the model only allows interactions between
    /// distinct nodes.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert!(
            u != v,
            "an interaction requires two distinct nodes, got {u} twice"
        );
        if u < v {
            Interaction { min: u, max: v }
        } else {
            Interaction { min: v, max: u }
        }
    }

    /// The smaller-id endpoint.
    ///
    /// Takes `self` by value (the type is `Copy`) so that this inherent
    /// method is preferred over `Ord::min` during method resolution.
    pub fn min(self) -> NodeId {
        self.min
    }

    /// The larger-id endpoint.
    ///
    /// Takes `self` by value (the type is `Copy`) so that this inherent
    /// method is preferred over `Ord::max` during method resolution.
    pub fn max(self) -> NodeId {
        self.max
    }

    /// Both endpoints, ordered by id (the paper's convention: "the nodes
    /// that interact are given as input ordered by their identifiers").
    pub fn pair(&self) -> (NodeId, NodeId) {
        (self.min, self.max)
    }

    /// Returns `true` if `x` is one of the endpoints.
    pub fn involves(&self, x: NodeId) -> bool {
        x == self.min || x == self.max
    }

    /// The endpoint opposite to `x`, or `None` if `x` is not involved.
    pub fn partner_of(&self, x: NodeId) -> Option<NodeId> {
        if x == self.min {
            Some(self.max)
        } else if x == self.max {
            Some(self.min)
        } else {
            None
        }
    }

    /// Converts to the canonical undirected edge of the underlying graph.
    pub fn to_edge(self) -> Edge {
        Edge::new(self.min, self.max)
    }
}

impl fmt::Display for Interaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.min, self.max)
    }
}

impl From<(NodeId, NodeId)> for Interaction {
    fn from((u, v): (NodeId, NodeId)) -> Self {
        Interaction::new(u, v)
    }
}

impl From<Interaction> for Edge {
    fn from(i: Interaction) -> Self {
        i.to_edge()
    }
}

/// An interaction together with its time of occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimedInteraction {
    /// Time of occurrence (index in the sequence).
    pub time: Time,
    /// The interacting pair.
    pub interaction: Interaction,
}

impl TimedInteraction {
    /// Creates a timed interaction.
    pub fn new(time: Time, interaction: Interaction) -> Self {
        TimedInteraction { time, interaction }
    }
}

impl fmt::Display for TimedInteraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}: {}", self.time, self.interaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order() {
        let a = Interaction::new(NodeId(5), NodeId(2));
        let b = Interaction::new(NodeId(2), NodeId(5));
        assert_eq!(a, b);
        assert_eq!(a.pair(), (NodeId(2), NodeId(5)));
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn rejects_self_interaction() {
        let _ = Interaction::new(NodeId(1), NodeId(1));
    }

    #[test]
    fn involvement_and_partner() {
        let i = Interaction::new(NodeId(0), NodeId(3));
        assert!(i.involves(NodeId(0)));
        assert!(i.involves(NodeId(3)));
        assert!(!i.involves(NodeId(1)));
        assert_eq!(i.partner_of(NodeId(0)), Some(NodeId(3)));
        assert_eq!(i.partner_of(NodeId(3)), Some(NodeId(0)));
        assert_eq!(i.partner_of(NodeId(7)), None);
    }

    #[test]
    fn edge_conversion() {
        let i = Interaction::new(NodeId(4), NodeId(1));
        let e: Edge = i.into();
        assert_eq!(e, Edge::new(NodeId(1), NodeId(4)));
    }

    #[test]
    fn display_formats() {
        let t = TimedInteraction::new(9, Interaction::new(NodeId(2), NodeId(0)));
        assert_eq!(t.to_string(), "t=9: {v0, v2}");
    }

    #[test]
    fn from_tuple() {
        let i: Interaction = (NodeId(8), NodeId(3)).into();
        assert_eq!(i.min(), NodeId(3));
    }
}
