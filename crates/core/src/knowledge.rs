//! Knowledge oracles.
//!
//! A DODA algorithm "may use additional functions associated with different
//! knowledge" (Section 2.1). This module provides the knowledge functions
//! the paper studies:
//!
//! * [`MeetTimeOracle`] — `u.meetTime(t)`: the time of `u`'s next
//!   interaction with the sink after `t` (Waiting Greedy, Theorem 10/11);
//! * [`OwnFuture`] — `u.future`: the sequence of `u`'s own future
//!   interactions (Theorem 6);
//! * [`FullKnowledge`] — the entire interaction sequence (Theorem 8);
//! * the underlying graph `G̅` (Theorems 3–5) is simply
//!   [`crate::InteractionSequence::underlying_graph`].
//!
//! All oracles are derived from a finite [`InteractionSequence`]: the
//! adversary commits to (or has generated) the future, and the oracle
//! exposes only the slice of it that the corresponding knowledge model
//! grants to nodes.

use doda_graph::NodeId;

use crate::interaction::Time;
use crate::sequence::InteractionSequence;

/// The time of a node's next meeting with the sink; `Never` behaves as
/// `+∞` in comparisons, matching the convention needed by Waiting Greedy
/// (a node that will never meet the sink again should prefer to transmit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeetTime {
    /// Next meeting with the sink occurs at this time.
    At(Time),
    /// The node never meets the sink after the queried time.
    Never,
}

impl MeetTime {
    /// Returns the meeting time as a number, mapping `Never` to `u64::MAX`.
    pub fn as_u64(self) -> u64 {
        match self {
            MeetTime::At(t) => t,
            MeetTime::Never => u64::MAX,
        }
    }

    /// Returns `true` if this meet time is strictly greater than `bound`
    /// (`Never` is greater than everything).
    pub fn exceeds(self, bound: Time) -> bool {
        self.as_u64() > bound
    }
}

impl PartialOrd for MeetTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MeetTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_u64().cmp(&other.as_u64())
    }
}

/// Oracle answering `u.meetTime(t)` queries: the smallest `t' > t` such
/// that `I_{t'} = {u, s}`.
///
/// For the sink itself the paper defines `s.meetTime` as the identity
/// `t ↦ t`.
///
/// # Example
///
/// ```
/// use doda_core::{InteractionSequence, knowledge::{MeetTime, MeetTimeOracle}};
/// use doda_graph::NodeId;
///
/// let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (0, 2), (0, 1)]);
/// let oracle = MeetTimeOracle::new(&seq, NodeId(0));
/// assert_eq!(oracle.meet_time(NodeId(2), 0), MeetTime::At(1));
/// assert_eq!(oracle.meet_time(NodeId(2), 1), MeetTime::Never);
/// assert_eq!(oracle.meet_time(NodeId(0), 5), MeetTime::At(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeetTimeOracle {
    sink: NodeId,
    /// Flat arena of meeting times: node `u`'s sorted meeting times with
    /// the sink live at `times[offsets[u] .. offsets[u + 1]]`. Two
    /// allocations total, independent of `n` — the naive
    /// Vec-of-Vecs layout did one heap allocation per node, which at
    /// n = 10^6 dominated oracle construction.
    offsets: Vec<usize>,
    times: Vec<Time>,
}

impl MeetTimeOracle {
    /// Builds the oracle for `sink` from the full interaction sequence.
    ///
    /// Two passes over the sequence: count each node's sink meetings,
    /// prefix-sum the counts into offsets, then scatter the times. The
    /// sequence is time-ordered, so per-node times land sorted.
    pub fn new(seq: &InteractionSequence, sink: NodeId) -> Self {
        let n = seq.node_count();
        let mut offsets = vec![0usize; n + 1];
        for ti in seq.iter() {
            if let Some(partner) = ti.interaction.partner_of(sink) {
                offsets[partner.index() + 1] += 1;
            }
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let mut times = vec![0; offsets[n]];
        let mut cursor = offsets.clone();
        for ti in seq.iter() {
            if let Some(partner) = ti.interaction.partner_of(sink) {
                times[cursor[partner.index()]] = ti.time;
                cursor[partner.index()] += 1;
            }
        }
        MeetTimeOracle {
            sink,
            offsets,
            times,
        }
    }

    /// The sink this oracle was built for.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// `u.meetTime(t)`: the smallest `t' > t` with `I_{t'} = {u, sink}`.
    ///
    /// For `u == sink`, returns `MeetTime::At(t)` (the identity, per the
    /// paper). For out-of-range nodes, returns `Never`.
    pub fn meet_time(&self, u: NodeId, t: Time) -> MeetTime {
        if u == self.sink {
            return MeetTime::At(t);
        }
        let times = self.all_meetings(u);
        let idx = times.partition_point(|&x| x <= t);
        match times.get(idx) {
            Some(&t2) => MeetTime::At(t2),
            None => MeetTime::Never,
        }
    }

    /// All meeting times of `u` with the sink (sorted, full horizon).
    pub fn all_meetings(&self, u: NodeId) -> &[Time] {
        let Some(&start) = self.offsets.get(u.index()) else {
            return &[];
        };
        &self.times[start..self.offsets[u.index() + 1]]
    }
}

/// A node's own future: its interactions (time and partner), in order.
///
/// This is the knowledge `u.future` of Theorem 6; the union of all nodes'
/// futures is the entire sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnFuture {
    /// The node this future belongs to.
    pub node: NodeId,
    /// `(time, partner)` pairs in increasing time order.
    pub interactions: Vec<(Time, NodeId)>,
}

impl OwnFuture {
    /// Extracts the future of `node` from the full sequence.
    pub fn of(seq: &InteractionSequence, node: NodeId) -> Self {
        OwnFuture {
            node,
            interactions: seq.future_of(node),
        }
    }

    /// The partner of this node's interaction at exactly time `t`, if any.
    pub fn partner_at(&self, t: Time) -> Option<NodeId> {
        self.interactions
            .binary_search_by_key(&t, |&(time, _)| time)
            .ok()
            .map(|idx| self.interactions[idx].1)
    }
}

/// Full knowledge of the sequence of interactions (Theorem 8 / Corollary 1).
///
/// A thin wrapper that exists mostly for type-level clarity in algorithm
/// constructors: an algorithm taking `FullKnowledge` advertises the
/// strongest knowledge model of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullKnowledge {
    sequence: InteractionSequence,
}

impl FullKnowledge {
    /// Wraps the full interaction sequence.
    pub fn new(sequence: InteractionSequence) -> Self {
        FullKnowledge { sequence }
    }

    /// The full interaction sequence.
    pub fn sequence(&self) -> &InteractionSequence {
        &self.sequence
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> InteractionSequence {
        // s = 0
        InteractionSequence::from_pairs(4, vec![(1, 2), (0, 2), (1, 3), (0, 2), (0, 3)])
    }

    #[test]
    fn meet_time_basic_queries() {
        let oracle = MeetTimeOracle::new(&seq(), NodeId(0));
        assert_eq!(oracle.sink(), NodeId(0));
        // Node 2 meets the sink at times 1 and 3.
        assert_eq!(oracle.meet_time(NodeId(2), 0), MeetTime::At(1));
        assert_eq!(oracle.meet_time(NodeId(2), 1), MeetTime::At(3));
        assert_eq!(oracle.meet_time(NodeId(2), 3), MeetTime::Never);
        // Node 1 never meets the sink.
        assert_eq!(oracle.meet_time(NodeId(1), 0), MeetTime::Never);
        // Node 3 meets the sink at time 4.
        assert_eq!(oracle.meet_time(NodeId(3), 0), MeetTime::At(4));
        assert_eq!(oracle.all_meetings(NodeId(2)), &[1, 3]);
        assert_eq!(oracle.all_meetings(NodeId(9)), &[] as &[Time]);
    }

    #[test]
    fn meet_time_query_is_strictly_after_t() {
        let oracle = MeetTimeOracle::new(&seq(), NodeId(0));
        // Querying exactly at a meeting time returns the *next* one.
        assert_eq!(oracle.meet_time(NodeId(2), 1), MeetTime::At(3));
    }

    #[test]
    fn sink_meet_time_is_identity() {
        let oracle = MeetTimeOracle::new(&seq(), NodeId(0));
        assert_eq!(oracle.meet_time(NodeId(0), 7), MeetTime::At(7));
    }

    #[test]
    fn meet_time_ordering_and_exceeds() {
        assert!(MeetTime::Never > MeetTime::At(1_000_000));
        assert!(MeetTime::At(3) < MeetTime::At(5));
        assert!(MeetTime::Never.exceeds(u64::MAX - 1));
        assert!(MeetTime::At(10).exceeds(9));
        assert!(!MeetTime::At(10).exceeds(10));
    }

    #[test]
    fn own_future_extraction() {
        let f = OwnFuture::of(&seq(), NodeId(2));
        assert_eq!(
            f.interactions,
            vec![(0, NodeId(1)), (1, NodeId(0)), (3, NodeId(0))]
        );
        assert_eq!(f.partner_at(1), Some(NodeId(0)));
        assert_eq!(f.partner_at(2), None);
    }

    #[test]
    fn full_knowledge_roundtrip() {
        let s = seq();
        let fk = FullKnowledge::new(s.clone());
        assert_eq!(fk.sequence(), &s);
    }
}
