//! Network state: per-node data ownership and the one-transmission rule.
//!
//! The central constraint of the model is that **a node may transmit its
//! data at most once**, and that a node that has transmitted no longer owns
//! data and can never receive again. [`NetworkState`] owns that bookkeeping
//! and refuses invalid transfers, so no algorithm or adversary can violate
//! the model even by accident.

use doda_graph::NodeId;

use crate::data::Aggregate;
use crate::error::TransmissionError;

/// The state of a single node during an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState<A> {
    /// The data currently owned, if any.
    pub data: Option<A>,
    /// Whether this node has already used its single transmission.
    pub has_transmitted: bool,
}

/// The global state of an execution: one [`NodeState`] per node, plus the
/// identity of the sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkState<A> {
    nodes: Vec<NodeState<A>>,
    sink: NodeId,
    /// Aggregate of every datum destroyed by a crash or departure — the
    /// accounting bin that makes data conservation checkable under faults
    /// (sink data ⊎ lost ⊎ recovered ⊎ live owners = everything
    /// introduced).
    lost: Option<A>,
    /// Aggregate of every datum salvaged from a recoverable crash.
    recovered: Option<A>,
    /// Aggregate of every datum a Byzantine sender withheld from the
    /// protocol ([`NetworkState::transmit_voided`] /
    /// [`NetworkState::transmit_equivocated`]). Deliberately **not**
    /// part of the conservation identity: a corrupting transfer is
    /// supposed to break `data_conserved` visibly.
    voided: Option<A>,
}

impl<A: Aggregate> NetworkState<A> {
    /// Creates the initial state: every node owns the datum produced by
    /// `initial_data(v)` and nobody has transmitted.
    ///
    /// # Panics
    ///
    /// Panics if `sink.index() >= n` or `n == 0`.
    pub fn new<F>(n: usize, sink: NodeId, initial_data: F) -> Self
    where
        F: FnMut(NodeId) -> A,
    {
        let mut state = NetworkState::empty();
        state.reset(n, sink, initial_data);
        state
    }

    /// An empty placeholder state owning no nodes; it must be [`reset`]
    /// before use. Used by the engine as reusable scratch so that a single
    /// allocation serves many executions.
    ///
    /// [`reset`]: NetworkState::reset
    pub(crate) fn empty() -> Self {
        NetworkState {
            nodes: Vec::new(),
            sink: NodeId(0),
            lost: None,
            recovered: None,
            voided: None,
        }
    }

    /// Re-initialises the state for a fresh execution over `n` nodes,
    /// reusing the node-vector allocation: every node owns the datum
    /// produced by `initial_data(v)` and nobody has transmitted.
    ///
    /// # Panics
    ///
    /// Panics if `sink.index() >= n` or `n == 0`.
    pub fn reset<F>(&mut self, n: usize, sink: NodeId, mut initial_data: F)
    where
        F: FnMut(NodeId) -> A,
    {
        assert!(n > 0, "a dynamic graph needs at least one node");
        assert!(sink.index() < n, "sink {sink} out of range for {n} nodes");
        self.nodes.clear();
        self.nodes.extend((0..n).map(|i| NodeState {
            data: Some(initial_data(NodeId(i))),
            has_transmitted: false,
        }));
        self.sink = sink;
        self.lost = None;
        self.recovered = None;
        self.voided = None;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The sink node.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Returns `true` if node `v` currently owns data.
    pub fn owns_data(&self, v: NodeId) -> bool {
        self.nodes.get(v.index()).is_some_and(|s| s.data.is_some())
    }

    /// Returns `true` if node `v` has already transmitted.
    pub fn has_transmitted(&self, v: NodeId) -> bool {
        self.nodes.get(v.index()).is_some_and(|s| s.has_transmitted)
    }

    /// A reference to the data currently owned by `v`, if any.
    pub fn data_of(&self, v: NodeId) -> Option<&A> {
        self.nodes.get(v.index()).and_then(|s| s.data.as_ref())
    }

    /// Number of nodes currently owning data.
    pub fn owner_count(&self) -> usize {
        self.nodes.iter().filter(|s| s.data.is_some()).count()
    }

    /// Ids of the nodes currently owning data, in increasing order.
    pub fn owners(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.data.is_some())
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// Ownership bitmap, indexed by node id (used to build the
    /// [`crate::sequence::AdversaryView`]).
    pub fn ownership_bitmap(&self) -> Vec<bool> {
        self.nodes.iter().map(|s| s.data.is_some()).collect()
    }

    /// Returns `true` if the aggregation is complete: the sink is the only
    /// node that owns data.
    pub fn is_complete(&self) -> bool {
        self.owner_count() == 1 && self.owns_data(self.sink)
    }

    /// Performs the transmission `sender → receiver`: the receiver
    /// aggregates the sender's data with its own, the sender loses its data
    /// and is marked as having transmitted.
    ///
    /// # Errors
    ///
    /// Returns an error (leaving the state untouched) if the transfer would
    /// violate the model: sender and receiver are the same node, the sink
    /// would transmit, either node is out of range, either node does not
    /// own data, or the sender already transmitted.
    pub fn transmit(&mut self, sender: NodeId, receiver: NodeId) -> Result<(), TransmissionError> {
        self.check_transfer(sender, receiver)?;
        let sent = self.take_sent(sender);
        self.deliver(receiver, sent);
        Ok(())
    }

    /// A [`transmit`](NetworkState::transmit) where the (Byzantine)
    /// sender first merges `forged` — a datum that was never introduced
    /// into the population — into its carried aggregate.
    ///
    /// # Errors
    ///
    /// Exactly as [`transmit`](NetworkState::transmit): the corruption
    /// changes the payload, never the model rules.
    pub fn transmit_forged(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
        forged: A,
    ) -> Result<(), TransmissionError> {
        self.check_transfer(sender, receiver)?;
        let mut sent = self.take_sent(sender);
        sent.merge(forged);
        self.deliver(receiver, sent);
        Ok(())
    }

    /// A [`transmit`](NetworkState::transmit) where the (Byzantine)
    /// sender delivers its carried aggregate **twice** — the receiver
    /// merges the same payload two times, which double-counts it for
    /// every duplicate-sensitive aggregate.
    ///
    /// # Errors
    ///
    /// Exactly as [`transmit`](NetworkState::transmit).
    pub fn transmit_duplicated(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
    ) -> Result<(), TransmissionError> {
        self.check_transfer(sender, receiver)?;
        let sent = self.take_sent(sender);
        self.deliver(receiver, sent.clone());
        self.deliver(receiver, sent);
        Ok(())
    }

    /// A [`transmit`](NetworkState::transmit) where the (Byzantine)
    /// sender delivers **nothing**: it is marked as having transmitted,
    /// but its carried aggregate moves to the [`voided`] accounting bin
    /// instead of reaching the receiver.
    ///
    /// [`voided`]: NetworkState::voided_data
    ///
    /// # Errors
    ///
    /// Exactly as [`transmit`](NetworkState::transmit).
    pub fn transmit_voided(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
    ) -> Result<(), TransmissionError> {
        self.check_transfer(sender, receiver)?;
        let sent = self.take_sent(sender);
        merge_into(&mut self.voided, sent);
        Ok(())
    }

    /// A [`transmit`](NetworkState::transmit) where the (Byzantine)
    /// sender sheds everything it aggregated — the carried aggregate
    /// moves to the [`voided`] bin — and delivers `fresh` (a fresh
    /// self-datum) in its place.
    ///
    /// [`voided`]: NetworkState::voided_data
    ///
    /// # Errors
    ///
    /// Exactly as [`transmit`](NetworkState::transmit).
    pub fn transmit_equivocated(
        &mut self,
        sender: NodeId,
        receiver: NodeId,
        fresh: A,
    ) -> Result<(), TransmissionError> {
        self.check_transfer(sender, receiver)?;
        let sent = self.take_sent(sender);
        merge_into(&mut self.voided, sent);
        self.deliver(receiver, fresh);
        Ok(())
    }

    /// The shared transfer validation: every transmit variant refuses
    /// the same invalid transfers in the same order, leaving the state
    /// untouched on error.
    fn check_transfer(&self, sender: NodeId, receiver: NodeId) -> Result<(), TransmissionError> {
        if sender == receiver {
            return Err(TransmissionError::SelfTransmission { node: sender });
        }
        if sender == self.sink {
            return Err(TransmissionError::SinkMustNotTransmit);
        }
        let n = self.nodes.len();
        if sender.index() >= n || receiver.index() >= n {
            return Err(TransmissionError::UnknownNode {
                node: if sender.index() >= n {
                    sender
                } else {
                    receiver
                },
            });
        }
        if self.nodes[sender.index()].has_transmitted {
            return Err(TransmissionError::AlreadyTransmitted { node: sender });
        }
        if self.nodes[sender.index()].data.is_none() {
            return Err(TransmissionError::NoData { node: sender });
        }
        if self.nodes[receiver.index()].data.is_none() {
            return Err(TransmissionError::NoData { node: receiver });
        }
        Ok(())
    }

    /// Takes the validated sender's datum and spends its transmission.
    fn take_sent(&mut self, sender: NodeId) -> A {
        self.nodes[sender.index()].has_transmitted = true;
        self.nodes[sender.index()]
            .data
            .take()
            .expect("validated by check_transfer")
    }

    /// Merges a payload into the validated receiver's datum.
    fn deliver(&mut self, receiver: NodeId, payload: A) {
        self.nodes[receiver.index()]
            .data
            .as_mut()
            .expect("validated by check_transfer")
            .merge(payload);
    }

    /// Destroys the datum of `v` (a crash with [`CrashPolicy::DatumLost`]
    /// or a departure), merging it into the **lost** accounting bin. The
    /// node keeps its transmission history but no longer owns data.
    ///
    /// [`CrashPolicy::DatumLost`]: crate::fault::CrashPolicy::DatumLost
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or does not own data; the engine
    /// validates fault events (returning a typed
    /// [`crate::error::FaultError`]) before calling this.
    pub fn fault_lose(&mut self, v: NodeId) {
        let datum = self.take_datum(v);
        merge_into(&mut self.lost, datum);
    }

    /// Salvages the datum of `v` (a crash with
    /// [`CrashPolicy::DatumRecoverable`]), merging it into the
    /// **recovered** accounting bin.
    ///
    /// [`CrashPolicy::DatumRecoverable`]: crate::fault::CrashPolicy::DatumRecoverable
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or does not own data (see
    /// [`NetworkState::fault_lose`]).
    pub fn fault_recover(&mut self, v: NodeId) {
        let datum = self.take_datum(v);
        merge_into(&mut self.recovered, datum);
    }

    /// Re-seats `v` with a fresh datum (a churn arrival). The arrival is
    /// a new incarnation of the slot: its single-transmission allowance
    /// starts over.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or currently owns data; the engine
    /// validates arrivals (returning a typed [`crate::error::FaultError`])
    /// before calling this.
    pub fn revive(&mut self, v: NodeId, datum: A) {
        let node = self
            .nodes
            .get_mut(v.index())
            .unwrap_or_else(|| panic!("revive of unknown node {v}"));
        assert!(node.data.is_none(), "revive of node {v}, which owns data");
        node.data = Some(datum);
        node.has_transmitted = false;
    }

    /// The aggregate of every datum destroyed by faults, if any.
    pub fn lost_data(&self) -> Option<&A> {
        self.lost.as_ref()
    }

    /// The aggregate of every datum salvaged from recoverable crashes.
    pub fn recovered_data(&self) -> Option<&A> {
        self.recovered.as_ref()
    }

    /// The aggregate of every datum a Byzantine sender withheld
    /// ([`NetworkState::transmit_voided`] /
    /// [`NetworkState::transmit_equivocated`]), if any. Not part of the
    /// conservation identity: withheld data is *supposed* to show up as
    /// a conservation violation.
    pub fn voided_data(&self) -> Option<&A> {
        self.voided.as_ref()
    }

    fn take_datum(&mut self, v: NodeId) -> A {
        self.nodes
            .get_mut(v.index())
            .unwrap_or_else(|| panic!("fault on unknown node {v}"))
            .data
            .take()
            .unwrap_or_else(|| panic!("fault takes the datum of {v}, which owns none"))
    }
}

fn merge_into<A: Aggregate>(bin: &mut Option<A>, datum: A) {
    match bin {
        Some(acc) => acc.merge(datum),
        None => *bin = Some(datum),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Count, IdSet};

    fn fresh(n: usize) -> NetworkState<IdSet> {
        NetworkState::new(n, NodeId(0), IdSet::singleton)
    }

    #[test]
    fn initial_state_everyone_owns() {
        let st = fresh(4);
        assert_eq!(st.node_count(), 4);
        assert_eq!(st.owner_count(), 4);
        assert!(!st.is_complete());
        assert!(st.owns_data(NodeId(3)));
        assert!(!st.has_transmitted(NodeId(3)));
        assert_eq!(
            st.owners(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn single_node_graph_is_immediately_complete() {
        let st: NetworkState<Count> = NetworkState::new(1, NodeId(0), |_| Count::unit());
        assert!(st.is_complete());
    }

    #[test]
    fn valid_transmission_moves_and_aggregates_data() {
        let mut st = fresh(3);
        st.transmit(NodeId(1), NodeId(0)).unwrap();
        assert!(!st.owns_data(NodeId(1)));
        assert!(st.has_transmitted(NodeId(1)));
        assert_eq!(st.data_of(NodeId(0)).unwrap().len(), 2);
        assert_eq!(st.owner_count(), 2);
        st.transmit(NodeId(2), NodeId(0)).unwrap();
        assert!(st.is_complete());
        assert!(st.data_of(NodeId(0)).unwrap().covers_all(3));
    }

    #[test]
    fn sink_never_transmits() {
        let mut st = fresh(3);
        let err = st.transmit(NodeId(0), NodeId(1)).unwrap_err();
        assert_eq!(err, TransmissionError::SinkMustNotTransmit);
    }

    #[test]
    fn double_transmission_is_rejected() {
        let mut st = fresh(3);
        st.transmit(NodeId(1), NodeId(0)).unwrap();
        let err = st.transmit(NodeId(1), NodeId(2)).unwrap_err();
        // The node no longer owns data *and* has transmitted; the
        // has-transmitted check fires first.
        assert_eq!(
            err,
            TransmissionError::AlreadyTransmitted { node: NodeId(1) }
        );
    }

    #[test]
    fn receiver_without_data_is_rejected() {
        let mut st = fresh(4);
        st.transmit(NodeId(1), NodeId(0)).unwrap();
        // Node 1 no longer owns data, so it cannot receive from node 2.
        let err = st.transmit(NodeId(2), NodeId(1)).unwrap_err();
        assert_eq!(err, TransmissionError::NoData { node: NodeId(1) });
        // State unchanged: node 2 still owns data.
        assert!(st.owns_data(NodeId(2)));
        assert!(!st.has_transmitted(NodeId(2)));
    }

    #[test]
    fn self_and_unknown_nodes_are_rejected() {
        let mut st = fresh(3);
        assert_eq!(
            st.transmit(NodeId(2), NodeId(2)).unwrap_err(),
            TransmissionError::SelfTransmission { node: NodeId(2) }
        );
        assert_eq!(
            st.transmit(NodeId(5), NodeId(0)).unwrap_err(),
            TransmissionError::UnknownNode { node: NodeId(5) }
        );
        assert_eq!(
            st.transmit(NodeId(1), NodeId(7)).unwrap_err(),
            TransmissionError::UnknownNode { node: NodeId(7) }
        );
    }

    #[test]
    fn ownership_bitmap_reflects_state() {
        let mut st = fresh(3);
        st.transmit(NodeId(2), NodeId(1)).unwrap();
        assert_eq!(st.ownership_bitmap(), vec![true, true, false]);
    }

    #[test]
    fn reset_reuses_the_state_for_a_fresh_execution() {
        let mut st = fresh(4);
        st.transmit(NodeId(1), NodeId(0)).unwrap();
        st.transmit(NodeId(2), NodeId(0)).unwrap();
        // Reset to a different shape: everything is fresh again.
        st.reset(3, NodeId(2), IdSet::singleton);
        assert_eq!(st.node_count(), 3);
        assert_eq!(st.sink(), NodeId(2));
        assert_eq!(st.owner_count(), 3);
        assert!(!st.has_transmitted(NodeId(1)));
        // The reset state enforces the model exactly like a new one.
        assert_eq!(
            st.transmit(NodeId(2), NodeId(1)).unwrap_err(),
            TransmissionError::SinkMustNotTransmit
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reset_rejects_out_of_range_sink() {
        let mut st = fresh(4);
        st.reset(2, NodeId(3), IdSet::singleton);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _: NetworkState<Count> = NetworkState::new(0, NodeId(0), |_| Count::unit());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sink_out_of_range_rejected() {
        let _: NetworkState<Count> = NetworkState::new(2, NodeId(5), |_| Count::unit());
    }

    #[test]
    fn fault_bins_account_for_lost_and_recovered_data() {
        let mut st = fresh(4);
        assert!(st.lost_data().is_none());
        st.fault_lose(NodeId(1));
        st.fault_recover(NodeId(2));
        assert!(!st.owns_data(NodeId(1)));
        assert!(!st.owns_data(NodeId(2)));
        assert_eq!(st.lost_data().unwrap(), &IdSet::singleton(NodeId(1)));
        assert_eq!(st.recovered_data().unwrap(), &IdSet::singleton(NodeId(2)));
        assert_eq!(st.owner_count(), 2);
        // A second loss merges into the same bin.
        st.fault_lose(NodeId(3));
        assert_eq!(st.lost_data().unwrap().len(), 2);
        // Reset empties both bins.
        st.reset(3, NodeId(0), IdSet::singleton);
        assert!(st.lost_data().is_none());
        assert!(st.recovered_data().is_none());
    }

    #[test]
    fn revive_reseats_a_fresh_incarnation() {
        let mut st = fresh(3);
        st.transmit(NodeId(1), NodeId(0)).unwrap();
        assert!(st.has_transmitted(NodeId(1)));
        st.revive(NodeId(1), IdSet::singleton(NodeId(1)));
        assert!(st.owns_data(NodeId(1)));
        // The new incarnation may transmit again.
        assert!(!st.has_transmitted(NodeId(1)));
        st.transmit(NodeId(1), NodeId(0)).unwrap();
    }

    #[test]
    #[should_panic(expected = "owns data")]
    fn revive_of_a_live_owner_is_rejected() {
        let mut st = fresh(3);
        st.revive(NodeId(1), IdSet::singleton(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "owns none")]
    fn fault_lose_requires_a_datum() {
        let mut st = fresh(3);
        st.transmit(NodeId(1), NodeId(0)).unwrap();
        st.fault_lose(NodeId(1));
    }

    #[test]
    fn forged_transfer_delivers_an_extra_origin() {
        let mut st = fresh(4);
        st.transmit_forged(NodeId(1), NodeId(0), IdSet::singleton(NodeId(3)))
            .unwrap();
        assert!(st.has_transmitted(NodeId(1)));
        assert_eq!(st.data_of(NodeId(0)).unwrap().len(), 3);
        assert!(st.voided_data().is_none());
    }

    #[test]
    fn duplicated_transfer_double_counts_for_sensitive_aggregates() {
        let mut st: NetworkState<Count> = NetworkState::new(3, NodeId(0), |_| Count::unit());
        st.transmit(NodeId(2), NodeId(1)).unwrap();
        st.transmit_duplicated(NodeId(1), NodeId(0)).unwrap();
        // The sink's own unit plus the carried pair delivered twice.
        assert_eq!(st.data_of(NodeId(0)).unwrap(), &Count(5));
        // Idempotent aggregates absorb the same replay.
        let mut ids = fresh(3);
        ids.transmit_duplicated(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(ids.data_of(NodeId(0)).unwrap().len(), 2);
    }

    #[test]
    fn voided_transfer_withholds_the_payload() {
        let mut st = fresh(3);
        st.transmit_voided(NodeId(1), NodeId(0)).unwrap();
        assert!(st.has_transmitted(NodeId(1)));
        assert!(!st.owns_data(NodeId(1)));
        assert_eq!(st.data_of(NodeId(0)).unwrap().len(), 1, "nothing arrived");
        assert_eq!(st.voided_data().unwrap(), &IdSet::singleton(NodeId(1)));
        // Reset empties the voided bin like the other accounting bins.
        st.reset(3, NodeId(0), IdSet::singleton);
        assert!(st.voided_data().is_none());
    }

    #[test]
    fn equivocated_transfer_sheds_the_carried_aggregate() {
        let mut st = fresh(4);
        st.transmit(NodeId(2), NodeId(1)).unwrap();
        st.transmit_equivocated(NodeId(1), NodeId(0), IdSet::singleton(NodeId(1)))
            .unwrap();
        // The sink sees only the liar's fresh self-datum; the merged
        // contribution of node 2 was shed into the voided bin.
        assert_eq!(st.data_of(NodeId(0)).unwrap().len(), 2);
        assert_eq!(st.voided_data().unwrap().len(), 2);
    }

    #[test]
    fn corrupting_transfers_refuse_what_transmit_refuses() {
        let mut st = fresh(3);
        assert_eq!(
            st.transmit_duplicated(NodeId(0), NodeId(1)).unwrap_err(),
            TransmissionError::SinkMustNotTransmit
        );
        assert_eq!(
            st.transmit_voided(NodeId(2), NodeId(2)).unwrap_err(),
            TransmissionError::SelfTransmission { node: NodeId(2) }
        );
        st.transmit(NodeId(1), NodeId(0)).unwrap();
        assert_eq!(
            st.transmit_forged(NodeId(1), NodeId(0), IdSet::singleton(NodeId(2)))
                .unwrap_err(),
            TransmissionError::AlreadyTransmitted { node: NodeId(1) }
        );
        assert_eq!(
            st.transmit_equivocated(NodeId(2), NodeId(1), IdSet::singleton(NodeId(2)))
                .unwrap_err(),
            TransmissionError::NoData { node: NodeId(1) }
        );
    }
}
