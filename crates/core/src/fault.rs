//! The fault model: crash faults, node churn, and lossy interactions.
//!
//! The paper's model fixes the population at `n` nodes and assumes every
//! scheduled interaction succeeds. Real deployments of in-network
//! aggregation face none of those guarantees, so this module layers a
//! **deterministic, seeded fault plan** over any streaming
//! [`InteractionSource`]:
//!
//! * **crash faults** — a node permanently stops participating; its datum
//!   is destroyed or recovered out-of-band per [`CrashPolicy`];
//! * **node churn** — live nodes depart (their datum leaves the system)
//!   and departed nodes later re-arrive with a *fresh* datum;
//! * **lossy interactions** — a scheduled interaction fails and is never
//!   observed by the algorithm.
//!
//! The composition point is [`FaultedSource`]: it wraps any inner source
//! (workload, adversary, or a replayed [`crate::InteractionSequence`]) and
//! overrides [`InteractionSource::next_event`] to interleave fault events
//! with the inner stream. The execution engine consumes events, so every
//! workload and every adversary gains the fault axis without knowing it
//! exists. Faults are drawn from a dedicated ChaCha stream seeded
//! independently of the inner source, which keeps the combined stream
//! reproducible bit-for-bit from `(inner seed, fault seed)`.
//!
//! # Alignment of streamed and materialised execution
//!
//! The adapter keeps its own *inner clock*: the inner source is pulled
//! exactly once per interaction step (fault events consume an engine step
//! without pulling), and the pull index — not the engine time — is the
//! time passed to the inner source. Replaying a materialised prefix of
//! the inner stream through the same fault plan therefore produces the
//! exact event sequence of the live composition, which is what makes
//! faulted streamed and faulted materialised trials byte-identical (see
//! `tests/fault_model_properties.rs`).

use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

use crate::interaction::{Interaction, Time};
use crate::sequence::{AdversaryView, InteractionSource, StepEvent};

/// What happens to a crashed node's datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPolicy {
    /// The datum is destroyed with the node (counted in
    /// [`FaultTally::data_lost`]).
    ///
    /// [`FaultTally::data_lost`]: crate::outcome::FaultTally::data_lost
    #[default]
    DatumLost,
    /// The datum is salvaged out-of-band (think: flash storage recovered
    /// from a dead sensor). It never reaches the sink through the
    /// protocol, but it is accounted as recovered rather than lost
    /// (counted in [`FaultTally::data_recovered`]).
    ///
    /// [`FaultTally::data_recovered`]: crate::outcome::FaultTally::data_recovered
    DatumRecoverable,
}

/// An invalid fault-plan configuration, rejected before execution.
///
/// The interesting variant is [`FaultConfigError::MinLiveTooSmall`]: a
/// plan whose churn may drop the live population below two nodes could
/// leave the adversary with no valid pair to schedule, turning a sweep
/// into a silent hang — so such plans are a typed error, never a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultConfigError {
    /// A probability field is outside `[0, 1]` (or not finite).
    InvalidProbability {
        /// Name of the offending field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `min_live < 2`: the plan could strand the execution with fewer
    /// than two live nodes (no pair can interact — a guaranteed hang).
    MinLiveTooSmall {
        /// The configured floor.
        min_live: usize,
    },
    /// `min_live > n`: the floor can never be satisfied over `n` nodes.
    MinLiveExceedsNodes {
        /// The configured floor.
        min_live: usize,
        /// The node count the plan was instantiated for.
        n: usize,
    },
    /// `crash + departure + arrival > 1`: the per-step event kinds are
    /// drawn from disjoint bands of one uniform roll, so rates summing
    /// past 1 would silently truncate (the overflowing band could never
    /// fire at its configured rate).
    RatesExceedUnity {
        /// The sum of the three per-step event rates.
        sum: f64,
    },
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::InvalidProbability { field, value } => {
                write!(f, "fault probability '{field}' = {value} is outside [0, 1]")
            }
            FaultConfigError::MinLiveTooSmall { min_live } => write!(
                f,
                "min_live = {min_live} would allow fewer than 2 live nodes — \
                 no pair could interact and the execution would hang"
            ),
            FaultConfigError::MinLiveExceedsNodes { min_live, n } => {
                write!(f, "min_live = {min_live} exceeds the node count {n}")
            }
            FaultConfigError::RatesExceedUnity { sum } => write!(
                f,
                "crash + departure + arrival = {sum} exceeds 1: the per-step event \
                 rates share one uniform roll and cannot sum past certainty"
            ),
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// A seeded, deterministic fault plan: per-step crash / churn
/// probabilities, per-interaction loss, the crash policy, and the live
/// floor below which the plan stops removing nodes.
///
/// The profile is pure configuration (`Copy`, comparable, serialisable by
/// label); the stateful injector built from it is [`FaultedSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Per-step probability that a uniformly chosen live non-sink node
    /// crashes permanently.
    pub crash: f64,
    /// Per-step probability that a uniformly chosen live non-sink node
    /// departs (churn); its datum leaves the system.
    pub departure: f64,
    /// Per-step probability that a departed (non-crashed) node re-arrives
    /// with a fresh datum.
    pub arrival: f64,
    /// Per-interaction probability that the scheduled interaction is lost
    /// before the algorithm observes it.
    pub loss: f64,
    /// What happens to a crashed node's datum.
    pub crash_policy: CrashPolicy,
    /// The plan never lets the live population drop below this floor
    /// (crashes and departures are suppressed at the floor). Must be at
    /// least 2 — see [`FaultConfigError::MinLiveTooSmall`].
    pub min_live: usize,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

impl FaultProfile {
    /// The neutral profile: no faults of any kind. Wrapping a source with
    /// it reproduces the inner stream exactly.
    pub fn none() -> Self {
        FaultProfile {
            crash: 0.0,
            departure: 0.0,
            arrival: 0.0,
            loss: 0.0,
            crash_policy: CrashPolicy::DatumLost,
            min_live: 2,
        }
    }

    /// Crash faults only, datum lost, at per-step probability `p`.
    pub fn crash(p: f64) -> Self {
        FaultProfile {
            crash: p,
            ..FaultProfile::none()
        }
    }

    /// Crash faults only, datum recoverable, at per-step probability `p`.
    pub fn crash_recoverable(p: f64) -> Self {
        FaultProfile {
            crash: p,
            crash_policy: CrashPolicy::DatumRecoverable,
            ..FaultProfile::none()
        }
    }

    /// Node churn: departures at per-step probability `departure`,
    /// re-arrivals (with fresh data) at per-step probability `arrival`.
    pub fn churn(departure: f64, arrival: f64) -> Self {
        FaultProfile {
            departure,
            arrival,
            ..FaultProfile::none()
        }
    }

    /// Lossy interactions only, at per-interaction probability `p`.
    pub fn lossy(p: f64) -> Self {
        FaultProfile {
            loss: p,
            ..FaultProfile::none()
        }
    }

    /// `true` iff the profile injects no faults at all.
    pub fn is_none(&self) -> bool {
        self.crash == 0.0 && self.departure == 0.0 && self.arrival == 0.0 && self.loss == 0.0
    }

    /// A stable, human-readable label for registries, reports and
    /// `BENCH_*.json`: `"none"`, or `+`-joined active components such as
    /// `"crash(0.002)"`, `"churn(0.001,0.004)"`, `"loss(0.2)"`.
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.crash > 0.0 {
            match self.crash_policy {
                CrashPolicy::DatumLost => parts.push(format!("crash({})", self.crash)),
                CrashPolicy::DatumRecoverable => {
                    parts.push(format!("crash-recover({})", self.crash))
                }
            }
        }
        if self.departure > 0.0 || self.arrival > 0.0 {
            parts.push(format!("churn({},{})", self.departure, self.arrival));
        }
        if self.loss > 0.0 {
            parts.push(format!("loss({})", self.loss));
        }
        parts.join("+")
    }

    /// Validates the profile for an execution over `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultConfigError`] if a probability is outside
    /// `[0, 1]`, if `min_live < 2` (the plan could strand the execution
    /// with no interacting pair), or if `min_live > n`.
    pub fn validate(&self, n: usize) -> Result<(), FaultConfigError> {
        for (field, value) in [
            ("crash", self.crash),
            ("departure", self.departure),
            ("arrival", self.arrival),
            ("loss", self.loss),
        ] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(FaultConfigError::InvalidProbability { field, value });
            }
        }
        let rate_sum = self.crash + self.departure + self.arrival;
        if rate_sum > 1.0 {
            return Err(FaultConfigError::RatesExceedUnity { sum: rate_sum });
        }
        if self.min_live < 2 {
            return Err(FaultConfigError::MinLiveTooSmall {
                min_live: self.min_live,
            });
        }
        if self.min_live > n {
            return Err(FaultConfigError::MinLiveExceedsNodes {
                min_live: self.min_live,
                n,
            });
        }
        Ok(())
    }
}

/// The composable fault layer: wraps any [`InteractionSource`] and
/// interleaves deterministic, seeded fault events with its stream.
///
/// The adapter owns the fault state (liveness, crashed set, the fault
/// RNG) so the engine and the inner source both stay fault-agnostic:
///
/// * a step that draws a crash / departure / arrival emits that event and
///   does **not** pull the inner source;
/// * an interaction step pulls the inner source once (on the adapter's
///   own pull clock, so replaying a materialised inner stream stays
///   aligned) and emits [`StepEvent::Interaction`], downgraded to
///   [`StepEvent::Lost`] when a participant is dead or the per-interaction
///   loss probability fires;
/// * the sink (read from the [`AdversaryView`]) is never crashed or
///   departed, and the live population never drops below
///   [`FaultProfile::min_live`].
///
/// Like the adaptive adversaries, the adapter resets itself at `t = 0`,
/// so one instance can be reused across executions deterministically.
#[derive(Debug, Clone)]
pub struct FaultedSource<S> {
    inner: S,
    profile: FaultProfile,
    seed: u64,
    rng: DodaRng,
    live: Vec<bool>,
    live_count: usize,
    crashed: Vec<bool>,
    pulls: Time,
}

impl<S: InteractionSource> FaultedSource<S> {
    /// Wraps `inner` with the given profile, drawing fault events from a
    /// dedicated stream seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultConfigError`] if the profile is invalid for the
    /// inner source's node count (see [`FaultProfile::validate`]).
    pub fn new(inner: S, profile: FaultProfile, seed: u64) -> Result<Self, FaultConfigError> {
        let n = inner.node_count();
        profile.validate(n)?;
        Ok(FaultedSource {
            inner,
            profile,
            seed,
            rng: seeded_rng(seed),
            live: vec![true; n],
            live_count: n,
            crashed: vec![false; n],
            pulls: 0,
        })
    }

    /// The wrapped inner source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The fault profile in force.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Number of currently live nodes (initially all of them).
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    fn reset_run(&mut self) {
        self.rng = seeded_rng(self.seed);
        self.live.iter_mut().for_each(|l| *l = true);
        self.crashed.iter_mut().for_each(|c| *c = false);
        self.live_count = self.live.len();
        self.pulls = 0;
    }

    /// A uniformly chosen live non-sink node, or `None` when removing one
    /// would drop the population below the floor (or no candidate exists).
    fn pick_victim(&mut self, sink: NodeId) -> Option<NodeId> {
        if self.live_count <= self.profile.min_live {
            return None;
        }
        let candidates = self.live_count - usize::from(self.live(sink));
        if candidates == 0 {
            return None;
        }
        let k = self.rng.gen_range(0..candidates);
        self.kth(k, |this, v| this.live[v.index()] && v != sink)
    }

    /// A uniformly chosen departed (non-crashed) node, or `None`.
    fn pick_returnee(&mut self) -> Option<NodeId> {
        let candidates = self
            .live
            .iter()
            .zip(&self.crashed)
            .filter(|(live, crashed)| !**live && !**crashed)
            .count();
        if candidates == 0 {
            return None;
        }
        let k = self.rng.gen_range(0..candidates);
        self.kth(k, |this, v| {
            !this.live[v.index()] && !this.crashed[v.index()]
        })
    }

    fn kth(&self, k: usize, accept: impl Fn(&Self, NodeId) -> bool) -> Option<NodeId> {
        let mut seen = 0;
        for i in 0..self.live.len() {
            let v = NodeId(i);
            if accept(self, v) {
                if seen == k {
                    return Some(v);
                }
                seen += 1;
            }
        }
        None
    }

    fn live(&self, v: NodeId) -> bool {
        self.live.get(v.index()).copied().unwrap_or(false)
    }
}

impl<S: InteractionSource> InteractionSource for FaultedSource<S> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// A `FaultedSource` is event-native: fault events cannot be expressed
    /// as interactions, so this always panics. Drive it through
    /// [`InteractionSource::next_event`] (the engine does).
    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        panic!(
            "FaultedSource produces fault events that have no interaction \
             representation; drive it via next_event"
        );
    }

    fn next_event(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<StepEvent> {
        if t == 0 {
            // A fresh execution: fault state from a previous run must not
            // leak into this one.
            self.reset_run();
        }
        let profile = self.profile;
        let roll: f64 = self.rng.gen();
        let fault = if roll < profile.crash {
            self.pick_victim(view.sink).map(|node| {
                self.live[node.index()] = false;
                self.crashed[node.index()] = true;
                self.live_count -= 1;
                StepEvent::Crash {
                    node,
                    policy: profile.crash_policy,
                }
            })
        } else if roll < profile.crash + profile.departure {
            self.pick_victim(view.sink).map(|node| {
                self.live[node.index()] = false;
                self.live_count -= 1;
                StepEvent::Departure(node)
            })
        } else if roll < profile.crash + profile.departure + profile.arrival {
            self.pick_returnee().map(|node| {
                self.live[node.index()] = true;
                self.live_count += 1;
                StepEvent::Arrival(node)
            })
        } else {
            None
        };
        if let Some(event) = fault {
            return Some(event);
        }
        // Interaction step: pull the inner source on the adapter's own
        // clock so materialised replays of the inner stream stay aligned.
        let interaction = self.inner.next_interaction(self.pulls, view)?;
        self.pulls += 1;
        if !self.live(interaction.min()) || !self.live(interaction.max()) {
            // A dead node cannot participate: the contact never happens.
            return Some(StepEvent::Lost(interaction));
        }
        if profile.loss > 0.0 && self.rng.gen::<f64>() < profile.loss {
            return Some(StepEvent::Lost(interaction));
        }
        Some(StepEvent::Interaction(interaction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::InteractionSequence;

    fn view<'a>(owns: &'a [bool], sink: NodeId) -> AdversaryView<'a> {
        AdversaryView {
            owns_data: owns,
            sink,
        }
    }

    fn drain<S: InteractionSource>(source: &mut S, steps: u64, n: usize) -> Vec<StepEvent> {
        let owns = vec![true; n];
        let v = view(&owns, NodeId(0));
        (0..steps).map_while(|t| source.next_event(t, &v)).collect()
    }

    #[test]
    fn neutral_profile_reproduces_the_inner_stream() {
        let seq = InteractionSequence::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]);
        let mut faulted =
            FaultedSource::new(seq.stream(true), FaultProfile::none(), 7).expect("valid");
        let events = drain(&mut faulted, 9, 4);
        assert_eq!(events.len(), 9);
        for (t, event) in events.iter().enumerate() {
            assert_eq!(
                *event,
                StepEvent::Interaction(seq.get((t % 3) as Time).unwrap())
            );
        }
    }

    #[test]
    fn fault_stream_is_deterministic_per_seed_and_varies_with_it() {
        let profile = FaultProfile {
            crash: 0.05,
            departure: 0.05,
            arrival: 0.1,
            loss: 0.2,
            ..FaultProfile::none()
        };
        let seq = InteractionSequence::from_pairs(6, vec![(1, 2), (3, 4), (2, 5), (0, 1)]);
        let a = drain(
            &mut FaultedSource::new(seq.stream(true), profile, 11).unwrap(),
            400,
            6,
        );
        let b = drain(
            &mut FaultedSource::new(seq.stream(true), profile, 11).unwrap(),
            400,
            6,
        );
        let c = drain(
            &mut FaultedSource::new(seq.stream(true), profile, 12).unwrap(),
            400,
            6,
        );
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sink_is_never_crashed_or_departed_and_floor_holds() {
        let profile = FaultProfile {
            crash: 0.3,
            departure: 0.3,
            min_live: 3,
            ..FaultProfile::none()
        };
        let seq = InteractionSequence::from_pairs(8, vec![(1, 2)]);
        let mut faulted = FaultedSource::new(seq.stream(true), profile, 3).unwrap();
        let events = drain(&mut faulted, 2_000, 8);
        for event in &events {
            if let StepEvent::Crash { node, .. } | StepEvent::Departure(node) = event {
                assert_ne!(*node, NodeId(0), "the sink must never be removed");
            }
        }
        assert!(faulted.live_count() >= 3, "floor violated");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, StepEvent::Crash { .. } | StepEvent::Departure(_))),
            "with p = 0.3 over 2000 steps faults must fire"
        );
    }

    #[test]
    fn churn_revives_departed_nodes_but_never_crashed_ones() {
        let profile = FaultProfile {
            crash: 0.02,
            departure: 0.1,
            arrival: 0.2,
            ..FaultProfile::none()
        };
        let seq = InteractionSequence::from_pairs(6, vec![(1, 2)]);
        let mut faulted = FaultedSource::new(seq.stream(true), profile, 5).unwrap();
        let events = drain(&mut faulted, 3_000, 6);
        let mut crashed = [false; 6];
        let mut live = [true; 6];
        let mut arrivals = 0;
        for event in &events {
            match event {
                StepEvent::Crash { node, .. } => {
                    assert!(live[node.index()], "crash of a dead node");
                    live[node.index()] = false;
                    crashed[node.index()] = true;
                }
                StepEvent::Departure(node) => {
                    assert!(live[node.index()], "departure of a dead node");
                    live[node.index()] = false;
                }
                StepEvent::Arrival(node) => {
                    assert!(!live[node.index()], "arrival of a live node");
                    assert!(!crashed[node.index()], "a crashed node came back");
                    live[node.index()] = true;
                    arrivals += 1;
                }
                StepEvent::Interaction(_) | StepEvent::Lost(_) => {}
            }
        }
        assert!(arrivals > 0, "churn must produce arrivals at these rates");
    }

    #[test]
    fn interactions_touching_dead_nodes_are_lost() {
        // Departure probability 1 with floor 2 kills every non-sink node
        // except one in the first steps; the inner stream only offers the
        // pair (1, 2), so once either is dead the contact is lost.
        let profile = FaultProfile {
            departure: 0.4,
            min_live: 2,
            ..FaultProfile::none()
        };
        let seq = InteractionSequence::from_pairs(4, vec![(1, 2)]);
        let mut faulted = FaultedSource::new(seq.stream(true), profile, 1).unwrap();
        let events = drain(&mut faulted, 500, 4);
        let saw_lost = events.iter().any(|e| matches!(e, StepEvent::Lost(_)));
        assert!(saw_lost, "contacts with departed nodes must be lost");
    }

    #[test]
    fn reuse_resets_the_fault_state_at_t_zero() {
        let profile = FaultProfile::crash(0.1);
        let seq = InteractionSequence::from_pairs(5, vec![(1, 2), (3, 4)]);
        let mut faulted = FaultedSource::new(seq.stream(true), profile, 9).unwrap();
        let first = drain(&mut faulted, 300, 5);
        let second = drain(&mut faulted, 300, 5);
        assert_eq!(first, second, "t = 0 must reset the fault plan");
    }

    #[test]
    fn finite_inner_source_exhausts_the_faulted_stream() {
        let seq = InteractionSequence::from_pairs(3, vec![(0, 1), (1, 2)]);
        let mut faulted =
            FaultedSource::new(seq.stream(false), FaultProfile::lossy(0.5), 2).unwrap();
        let events = drain(&mut faulted, 50, 3);
        assert_eq!(events.len(), 2);
    }

    #[test]
    #[should_panic(expected = "drive it via next_event")]
    fn next_interaction_is_rejected() {
        let seq = InteractionSequence::from_pairs(3, vec![(0, 1)]);
        let mut faulted =
            FaultedSource::new(seq.stream(true), FaultProfile::crash(0.5), 0).unwrap();
        let owns = vec![true; 3];
        let v = view(&owns, NodeId(0));
        let _ = faulted.next_interaction(0, &v);
    }

    #[test]
    fn profile_validation_rejects_bad_plans() {
        assert!(FaultProfile::none().validate(2).is_ok());
        assert_eq!(
            FaultProfile::crash(1.5).validate(8),
            Err(FaultConfigError::InvalidProbability {
                field: "crash",
                value: 1.5
            })
        );
        let starving = FaultProfile {
            min_live: 1,
            ..FaultProfile::crash(0.1)
        };
        assert_eq!(
            starving.validate(8),
            Err(FaultConfigError::MinLiveTooSmall { min_live: 1 })
        );
        let oversized = FaultProfile {
            min_live: 9,
            ..FaultProfile::none()
        };
        assert_eq!(
            oversized.validate(8),
            Err(FaultConfigError::MinLiveExceedsNodes { min_live: 9, n: 8 })
        );
        // Per-step event rates share one uniform roll; sums past 1 would
        // silently truncate, so they are rejected.
        let oversubscribed = FaultProfile {
            departure: 0.5,
            arrival: 0.3,
            ..FaultProfile::crash(0.7)
        };
        let err = oversubscribed.validate(8).unwrap_err();
        assert!(
            matches!(err, FaultConfigError::RatesExceedUnity { sum } if sum > 1.0),
            "{err:?}"
        );
        assert!(err.to_string().contains("cannot sum past certainty"));
        // The error messages are human-readable.
        assert!(starving
            .validate(8)
            .unwrap_err()
            .to_string()
            .contains("hang"));
    }

    #[test]
    fn profile_labels_are_stable() {
        assert_eq!(FaultProfile::none().label(), "none");
        assert_eq!(FaultProfile::crash(0.002).label(), "crash(0.002)");
        assert_eq!(
            FaultProfile::crash_recoverable(0.01).label(),
            "crash-recover(0.01)"
        );
        assert_eq!(
            FaultProfile::churn(0.001, 0.004).label(),
            "churn(0.001,0.004)"
        );
        assert_eq!(FaultProfile::lossy(0.25).label(), "loss(0.25)");
        let combo = FaultProfile {
            loss: 0.1,
            ..FaultProfile::crash(0.002)
        };
        assert_eq!(combo.label(), "crash(0.002)+loss(0.1)");
    }
}
