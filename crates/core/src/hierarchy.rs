//! Hierarchical aggregation: seeded aggregator election and cluster plans.
//!
//! Flat aggregation runs one execution over all `n` nodes; with the
//! uniform adversary that takes `Θ(n²)` interactions, which is infeasible
//! at `n = 10^6`. The in-network aggregation literature (Kennedy et al.)
//! and cluster/spanner decompositions of dynamic graphs (Zhu et al.)
//! suggest the classic fix: **elect local aggregators**, aggregate each
//! cluster toward its aggregator, then aggregate the aggregators toward
//! the sink. With `m ≈ n/k` clusters of size `k ≈ √n`, the work drops to
//! `O(m·k² + m²) = O(n^{3/2})` interactions while memory stays `O(n)`.
//!
//! [`ClusterPlan`] is the election: a seeded partition of the non-sink
//! nodes into clusters, each led by the aggregator in its first slot. The
//! plan is pure data — the intra-cluster and aggregator-phase executions
//! run on the ordinary engine paths (the sim crate's hierarchical tier
//! drives them), so every model rule (one transmission per node, sink
//! never transmits) holds within each phase unchanged.
//!
//! ```
//! use doda_core::hierarchy::ClusterPlan;
//! use doda_graph::NodeId;
//!
//! let plan = ClusterPlan::elect(10, NodeId(0), 3, 42);
//! assert_eq!(plan.node_count(), 10);
//! // Every non-sink node is in exactly one cluster.
//! let mut seen: Vec<_> = (0..plan.cluster_count())
//!     .flat_map(|c| plan.cluster(c).iter().copied())
//!     .collect();
//! seen.sort();
//! assert_eq!(seen, (1..10).map(NodeId).collect::<Vec<_>>());
//! ```

use doda_graph::NodeId;
use doda_stats::rng::seeded_rng;
use rand::Rng;

/// A seeded partition of the non-sink nodes into aggregation clusters.
///
/// Clusters are stored as one flat arena (`members` + `offsets`), so a
/// plan over `n` nodes costs exactly two allocations and `O(n)` memory —
/// the same budget as the engine state it feeds. The first member of each
/// cluster is its **aggregator**: the node the cluster aggregates toward
/// in phase one, and the cluster's representative in the final
/// aggregator-only phase. The sink belongs to no cluster; it only joins
/// the final phase, where it plays its usual role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterPlan {
    n: usize,
    sink: NodeId,
    /// Concatenated cluster membership; cluster `c` occupies
    /// `members[offsets[c] .. offsets[c + 1]]`, aggregator first.
    members: Vec<NodeId>,
    offsets: Vec<usize>,
}

impl ClusterPlan {
    /// Elects aggregators and partitions the `n − 1` non-sink nodes into
    /// clusters of roughly `target_cluster_size` nodes each.
    ///
    /// The election is a seeded Fisher–Yates shuffle of the non-sink
    /// nodes, chopped into `max(1, (n − 1) / target_cluster_size)`
    /// clusters of near-equal size (sizes differ by at most one). The
    /// same `(n, sink, target_cluster_size, seed)` always yields the same
    /// plan.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `sink.index() >= n`, or
    /// `target_cluster_size == 0`.
    pub fn elect(n: usize, sink: NodeId, target_cluster_size: usize, seed: u64) -> Self {
        assert!(n >= 2, "a hierarchy needs at least 2 nodes, got {n}");
        assert!(sink.index() < n, "sink {sink} out of range for {n} nodes");
        assert!(target_cluster_size > 0, "cluster size must be positive");
        let mut members: Vec<NodeId> = (0..n).map(NodeId).filter(|&v| v != sink).collect();
        let mut rng = seeded_rng(seed);
        for i in (1..members.len()).rev() {
            let j = rng.gen_range(0..=i);
            members.swap(i, j);
        }
        let pool = members.len();
        let clusters = (pool / target_cluster_size).max(1);
        // Near-equal split: the first `pool % clusters` clusters take one
        // extra node, so sizes are ⌈pool/clusters⌉ or ⌊pool/clusters⌋.
        let (base, extra) = (pool / clusters, pool % clusters);
        let mut offsets = Vec::with_capacity(clusters + 1);
        let mut cursor = 0;
        offsets.push(0);
        for c in 0..clusters {
            cursor += base + usize::from(c < extra);
            offsets.push(cursor);
        }
        ClusterPlan {
            n,
            sink,
            members,
            offsets,
        }
    }

    /// Total number of nodes the plan covers (including the sink).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The sink — a member of no cluster, the root of the final phase.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The members of cluster `c`, aggregator first.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cluster_count()`.
    pub fn cluster(&self, c: usize) -> &[NodeId] {
        &self.members[self.offsets[c]..self.offsets[c + 1]]
    }

    /// The aggregator of cluster `c` (its first member).
    pub fn aggregator(&self, c: usize) -> NodeId {
        self.cluster(c)[0]
    }

    /// The smallest cluster size in the plan.
    pub fn min_cluster_size(&self) -> usize {
        (0..self.cluster_count())
            .map(|c| self.cluster(c).len())
            .min()
            .expect("a plan has at least one cluster")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_non_sink_node_lands_in_exactly_one_cluster() {
        for (n, k, sink) in [(2, 1, 0), (10, 3, 0), (33, 4, 7), (100, 10, 99)] {
            let plan = ClusterPlan::elect(n, NodeId(sink), k, 0xD0DA);
            let mut seen: Vec<NodeId> = (0..plan.cluster_count())
                .flat_map(|c| plan.cluster(c).iter().copied())
                .collect();
            seen.sort();
            let expected: Vec<NodeId> = (0..n).map(NodeId).filter(|v| v.index() != sink).collect();
            assert_eq!(seen, expected, "n={n} k={k} sink={sink}");
        }
    }

    #[test]
    fn cluster_sizes_are_near_equal_and_match_the_target() {
        let plan = ClusterPlan::elect(101, NodeId(0), 10, 1);
        assert_eq!(plan.cluster_count(), 10);
        let sizes: Vec<usize> = (0..10).map(|c| plan.cluster(c).len()).collect();
        assert!(sizes.iter().all(|&s| s == 10));
        assert_eq!(plan.min_cluster_size(), 10);

        // Ragged pool: sizes differ by at most one.
        let plan = ClusterPlan::elect(24, NodeId(0), 5, 1);
        let sizes: Vec<usize> = (0..plan.cluster_count())
            .map(|c| plan.cluster(c).len())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 23);
        assert!(sizes
            .iter()
            .all(|&s| s.abs_diff(plan.min_cluster_size()) <= 1));
    }

    #[test]
    fn election_is_deterministic_and_seed_sensitive() {
        let a = ClusterPlan::elect(50, NodeId(0), 7, 3);
        let b = ClusterPlan::elect(50, NodeId(0), 7, 3);
        assert_eq!(a, b);
        let c = ClusterPlan::elect(50, NodeId(0), 7, 4);
        assert_ne!(a, c, "a different seed should elect differently");
    }

    #[test]
    fn aggregators_lead_their_clusters_and_exclude_the_sink() {
        let plan = ClusterPlan::elect(40, NodeId(5), 6, 9);
        for c in 0..plan.cluster_count() {
            assert_eq!(plan.aggregator(c), plan.cluster(c)[0]);
            assert!(plan.cluster(c).iter().all(|&v| v != NodeId(5)));
        }
    }

    #[test]
    fn oversized_target_degenerates_to_one_cluster() {
        let plan = ClusterPlan::elect(8, NodeId(0), 100, 2);
        assert_eq!(plan.cluster_count(), 1);
        assert_eq!(plan.cluster(0).len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn degenerate_plans_are_rejected() {
        let _ = ClusterPlan::elect(1, NodeId(0), 1, 0);
    }
}
