//! The paper's cost function (Section 2.3).
//!
//! The cost of an algorithm `A` on a sequence `I` is
//! `cost_A(I) = min { i | duration(A, I) ≤ T(i) }`, where `T(i)` is the
//! ending time of `i` back-to-back optimal convergecasts on `I`. It is an
//! upper bound on the number of successive convergecasts an offline
//! optimal algorithm could have performed during `A`'s execution; an
//! algorithm is optimal on `I` iff its cost is 1.
//!
//! When `duration(A, I) = ∞` (the algorithm never terminates), the cost is
//! still finite whenever `T` itself becomes infinite at some index
//! `i_max = min { i | T(i) = ∞ }`; only when convergecasts remain possible
//! forever is the cost infinite — this is exactly how the impossibility
//! results (Theorems 1–3) are stated.

use doda_graph::NodeId;

use crate::convergecast::opt;
use crate::interaction::Time;
use crate::sequence::InteractionSequence;

/// The cost of an algorithm on a sequence, per the paper's definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cost {
    /// `cost_A(I) = i`: the execution fits within `i` successive optimal
    /// convergecasts (or the `i`-th convergecast is already impossible).
    Finite(u64),
    /// Convergecasts remain possible beyond the evaluation horizon while
    /// the algorithm still has not terminated.
    ///
    /// On a *finite* sequence a true `∞` can only be approximated: the
    /// variant also reports the number of convergecasts checked, so callers
    /// can state "cost exceeds `checked`".
    ExceedsHorizon {
        /// Number of successive convergecasts that completed before the
        /// evaluation stopped.
        checked: u64,
    },
}

impl Cost {
    /// Returns the finite value, if any.
    pub fn as_finite(&self) -> Option<u64> {
        match self {
            Cost::Finite(i) => Some(*i),
            Cost::ExceedsHorizon { .. } => None,
        }
    }

    /// Returns `true` if the cost is exactly 1, i.e. the algorithm is
    /// optimal on this sequence.
    pub fn is_optimal(&self) -> bool {
        matches!(self, Cost::Finite(1))
    }
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cost::Finite(i) => write!(f, "{i}"),
            Cost::ExceedsHorizon { checked } => write!(f, "> {checked}"),
        }
    }
}

/// Computes `cost_A(I)` given the algorithm's termination time (`None`
/// means the algorithm did not terminate on `I`).
///
/// `max_convergecasts` bounds the number of successive convergecasts that
/// are computed; if the bound is hit before the cost is determined, the
/// result is [`Cost::ExceedsHorizon`].
pub fn cost_of_duration(
    seq: &InteractionSequence,
    sink: NodeId,
    duration: Option<Time>,
    max_convergecasts: u64,
) -> Cost {
    let mut start: Time = 0;
    let mut i: u64 = 0;
    while i < max_convergecasts {
        i += 1;
        match opt(seq, sink, start) {
            None => {
                // T(i) = ∞: any duration (finite or not) is ≤ ∞.
                return Cost::Finite(i);
            }
            Some(end) => {
                if let Some(d) = duration {
                    if d <= end {
                        return Cost::Finite(i);
                    }
                }
                start = end + 1;
            }
        }
    }
    Cost::ExceedsHorizon {
        checked: max_convergecasts,
    }
}

/// Convenience wrapper: computes the cost of an execution outcome.
pub fn cost_of_outcome<A>(
    seq: &InteractionSequence,
    outcome: &crate::outcome::ExecutionOutcome<A>,
    max_convergecasts: u64,
) -> Cost {
    cost_of_duration(seq, outcome.sink, outcome.duration(), max_convergecasts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three back-to-back convergecasts of the 4-node chain (s = 0).
    fn chain3() -> InteractionSequence {
        InteractionSequence::from_pairs(4, vec![(2, 3), (1, 2), (0, 1)]).repeat(3)
    }

    #[test]
    fn optimal_duration_has_cost_one() {
        let seq = chain3();
        assert_eq!(
            cost_of_duration(&seq, NodeId(0), Some(2), 10),
            Cost::Finite(1)
        );
        assert!(cost_of_duration(&seq, NodeId(0), Some(0), 10).is_optimal());
    }

    #[test]
    fn slower_durations_cost_more() {
        let seq = chain3();
        assert_eq!(
            cost_of_duration(&seq, NodeId(0), Some(3), 10),
            Cost::Finite(2)
        );
        assert_eq!(
            cost_of_duration(&seq, NodeId(0), Some(5), 10),
            Cost::Finite(2)
        );
        assert_eq!(
            cost_of_duration(&seq, NodeId(0), Some(8), 10),
            Cost::Finite(3)
        );
    }

    #[test]
    fn non_termination_on_finite_sequence_costs_first_infinite_index() {
        let seq = chain3();
        // T(1..3) are finite, T(4) = ∞, so a non-terminating algorithm costs 4.
        assert_eq!(cost_of_duration(&seq, NodeId(0), None, 10), Cost::Finite(4));
    }

    #[test]
    fn horizon_is_respected() {
        let seq = chain3();
        let c = cost_of_duration(&seq, NodeId(0), None, 2);
        assert_eq!(c, Cost::ExceedsHorizon { checked: 2 });
        assert_eq!(c.as_finite(), None);
        assert_eq!(c.to_string(), "> 2");
        assert!(!c.is_optimal());
    }

    #[test]
    fn duration_beyond_all_finite_convergecasts() {
        let seq = chain3();
        // Terminating at time 100 (after the sequence): the first i with
        // duration <= T(i) is the first infinite T, i.e. 4.
        assert_eq!(
            cost_of_duration(&seq, NodeId(0), Some(100), 10),
            Cost::Finite(4)
        );
    }

    #[test]
    fn sequence_with_no_convergecast_costs_one_even_without_termination() {
        // The sink never interacts: opt(0) = ∞, so T(1) = ∞ and the cost of
        // any algorithm is 1 (the paper's definition degenerates gracefully).
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (1, 2)]);
        assert_eq!(cost_of_duration(&seq, NodeId(0), None, 10), Cost::Finite(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cost::Finite(3).to_string(), "3");
    }
}
