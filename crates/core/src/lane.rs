//! Lane-batched lockstep execution.
//!
//! A Monte-Carlo sweep runs thousands of *independent* trials of the same
//! knowledge-free algorithm; the scalar engine steps them one at a time,
//! paying per interaction for an aggregate-carrying [`NetworkState`], two
//! virtual calls (source and boxed algorithm) and branchy decision
//! plumbing — none of which affects the *counters* a sweep actually keeps.
//!
//! [`LaneEngine`] restructures that state as a structure-of-arrays batch:
//! ownership is a `[u64]` bitset column per node, with **bit `l` holding
//! trial lane `l`** (up to [`MAX_LANES`] = 64 lanes per batch), plus
//! per-lane interaction clocks, owner counters and completion slots. Every
//! lane pulls its own interaction schedule (same scenario, per-trial
//! seeds) and [`LaneEngine::run_lanes`] applies each interaction with
//! branchless bitset operations, retiring a lane the moment its owner
//! count hits one. The whole ownership state of 64 concurrent `n = 512`
//! trials is 4 KiB — resident in L1 for the entire batch.
//!
//! The tier is **restricted by construction** to what makes it exact:
//! fault-free streams (sources must only emit
//! [`StepEvent::Interaction`]) and the
//! knowledge-free algorithms with a registered branchless kernel
//! ([`LaneAlgorithm`]). Everything else — oracles, fault plans, cost
//! accounting — stays on the scalar path. Within that envelope the lane
//! path is **byte-identical per trial** to [`Engine::run`]: same
//! termination time, interaction count and transmission count for the
//! same per-trial source (pinned by `tests/lane_equivalence.rs`).
//!
//! Oblivious sources ([`InteractionSource::is_oblivious`]) are pulled in
//! batches through [`InteractionSource::next_interaction_batch`], which
//! amortises the virtual source call over [`PULL_BATCH`] interactions and
//! lets the source's own generator loop devirtualise; adaptive adversaries
//! are pulled one step at a time against a per-lane ownership view that is
//! maintained exactly like the scalar engine's, so even they run on lanes
//! without a semantic difference.
//!
//! [`Engine::run`]: crate::engine::Engine::run
//! [`NetworkState`]: crate::state::NetworkState

use doda_graph::NodeId;

use crate::interaction::{Interaction, Time};
use crate::sequence::{AdversaryView, InteractionSource, StepEvent};

/// Maximum number of trial lanes per batch: one bit-lane per trial in the
/// `u64` ownership columns.
pub const MAX_LANES: usize = 64;

/// Number of interactions pulled per [`InteractionSource::next_interaction_batch`]
/// call on the oblivious fast path.
///
/// Large enough that the per-burst costs (one virtual call, buffer reuse,
/// loop setup) vanish against the per-interaction kernel; small enough
/// that a retiring lane wastes a negligible slice of generated schedule
/// (a lane consumes its whole final burst only up to the interaction that
/// completed it).
pub const PULL_BATCH: usize = 256;

/// A knowledge-free algorithm with a branchless lane kernel.
///
/// The kernels mirror the scalar decision rules of
/// [`crate::algorithms::Waiting`] and [`crate::algorithms::Gathering`]
/// exactly: both transmit only when the two endpoints own data; `Waiting`
/// additionally requires the sink to be involved; the receiver is the sink
/// when it is involved and the smaller id otherwise, the sender the other
/// endpoint. Neither algorithm ever emits an ignorable decision, so the
/// lane path needs no `ignored_decisions` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneAlgorithm {
    /// [`crate::algorithms::Waiting`]: transmit to the sink, and only to
    /// the sink.
    Waiting,
    /// [`crate::algorithms::Gathering`]: always aggregate when possible.
    Gathering,
}

impl LaneAlgorithm {
    /// The scalar algorithm's label (identical to
    /// [`crate::DodaAlgorithm::name`]).
    pub fn label(self) -> &'static str {
        match self {
            LaneAlgorithm::Waiting => "Waiting",
            LaneAlgorithm::Gathering => "Gathering",
        }
    }
}

/// The counters of one retired lane — the lane-path subset of
/// [`crate::engine::RunStats`].
///
/// The missing scalar counters are constants on this tier:
/// `ignored_decisions` is always zero (see [`LaneAlgorithm`]), faults
/// cannot occur, and `remaining_owners` is `node_count − transmissions`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRunStats {
    /// Number of nodes in the dynamic graph.
    pub node_count: usize,
    /// The sink node.
    pub sink: NodeId,
    /// `Some(t)` if the lane's aggregation completed at interaction index
    /// `t` (`Some(0)` for the degenerate single-node graph).
    pub termination_time: Option<Time>,
    /// Number of interactions pulled from the lane's source.
    pub interactions_processed: u64,
    /// Number of transmissions applied on this lane.
    pub transmissions: u64,
}

impl LaneRunStats {
    /// Returns `true` if the aggregation completed (sink is the sole
    /// owner).
    pub fn terminated(&self) -> bool {
        self.termination_time.is_some()
    }

    /// Number of nodes still owning data when the lane retired.
    pub fn remaining_owners(&self) -> usize {
        self.node_count - self.transmissions as usize
    }
}

/// The reusable lane-batched stepping core: structure-of-arrays scratch
/// for up to [`MAX_LANES`] concurrent trials, sized on first use and
/// reused across batches (the sharded sweep runner keeps one per worker).
#[derive(Debug, Default)]
pub struct LaneEngine {
    /// `ownership[v]` bit `l`: lane `l`'s node `v` still owns data.
    ownership: Vec<u64>,
    /// Lane-major boolean mirror of `ownership` (`views[l·n + v]`), the
    /// truthful per-lane [`AdversaryView`] handed to sources — updated in
    /// `O(1)` per transmission on the stepped path, so even adaptive
    /// adversaries see exactly what the scalar engine would show them.
    /// Lanes on the batched path leave their mirror stale: an oblivious
    /// source never reads it.
    views: Vec<bool>,
    /// Per-lane count of nodes still owning data.
    owners: Vec<u32>,
    /// Per-lane interaction clock (number of interactions pulled).
    clock: Vec<u64>,
    /// Per-lane transmission count.
    transmissions: Vec<u64>,
    /// Per-lane completion slot.
    termination: Vec<Option<Time>>,
    /// Per-lane interaction buffer for the oblivious batched-pull path.
    pull: Vec<Interaction>,
}

impl LaneEngine {
    /// Creates an engine with empty scratch; the first
    /// [`LaneEngine::run_lanes`] sizes it to the batch shape.
    pub fn new() -> Self {
        LaneEngine::default()
    }

    /// Runs one batch: lane `l` executes `algorithm` against
    /// `sources[l]` — one independent trial per lane, all advancing in
    /// lockstep through the bitset state — and returns one
    /// [`LaneRunStats`] per lane, in lane order.
    ///
    /// Semantics per lane are exactly [`Engine::run`] restricted to the
    /// fault-free knowledge-free envelope: the lane pulls one interaction
    /// per step (up to `max_interactions`), transmissions follow the
    /// [`LaneAlgorithm`] kernel, and the lane retires at termination (sink
    /// sole owner), source exhaustion, or budget exhaustion.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or longer than [`MAX_LANES`], if the
    /// sources disagree on the node count, if `sink` is out of range (or
    /// the node count is zero), or if a source emits a fault event — the
    /// lane tier is fault-free by contract; route faulted trials through
    /// the scalar path.
    ///
    /// [`Engine::run`]: crate::engine::Engine::run
    pub fn run_lanes<S>(
        &mut self,
        algorithm: LaneAlgorithm,
        sources: &mut [S],
        sink: NodeId,
        max_interactions: u64,
    ) -> Vec<LaneRunStats>
    where
        S: InteractionSource,
    {
        let k = sources.len();
        assert!(
            (1..=MAX_LANES).contains(&k),
            "a lane batch holds 1..={MAX_LANES} trials, got {k}"
        );
        let n = sources[0].node_count();
        assert!(n > 0, "cannot run lanes over an empty graph");
        for (lane, source) in sources.iter().enumerate() {
            assert_eq!(
                source.node_count(),
                n,
                "lane {lane} is over {} nodes but lane 0 is over {n}: \
                 a batch shares one node count",
                source.node_count()
            );
        }
        assert!(
            sink.index() < n,
            "sink {sink} is out of range for {n} nodes"
        );

        let full: u64 = if k == MAX_LANES { !0 } else { (1u64 << k) - 1 };
        self.ownership.clear();
        self.ownership.resize(n, full);
        self.views.clear();
        self.views.resize(k * n, true);
        self.owners.clear();
        self.owners.resize(k, n as u32);
        self.clock.clear();
        self.clock.resize(k, 0);
        self.transmissions.clear();
        self.transmissions.resize(k, 0);
        self.termination.clear();
        self.termination.resize(k, None);

        let mut live = full;
        if n == 1 {
            // Degenerate single-node graph: complete at time 0, like the
            // scalar engine, before any interaction is pulled.
            self.termination.iter_mut().for_each(|t| *t = Some(0));
            live = 0;
        }

        // Lockstep over bursts: each pass gives every live lane up to
        // PULL_BATCH steps, so the batch's bitset columns stay hot while
        // lanes advance together; a lane clears its live bit the moment it
        // terminates or runs out of schedule or budget.
        while live != 0 {
            let mut pending = live;
            while pending != 0 {
                let lane = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                if !self.burst(
                    algorithm,
                    &mut sources[lane],
                    lane,
                    n,
                    sink,
                    max_interactions,
                ) {
                    live &= !(1u64 << lane);
                }
            }
        }

        (0..k)
            .map(|lane| LaneRunStats {
                node_count: n,
                sink,
                termination_time: self.termination[lane],
                interactions_processed: self.clock[lane],
                transmissions: self.transmissions[lane],
            })
            .collect()
    }

    /// Advances one lane by up to [`PULL_BATCH`] interactions; returns
    /// `false` once the lane retired (terminated, exhausted source, or
    /// spent budget).
    fn burst<S>(
        &mut self,
        algorithm: LaneAlgorithm,
        source: &mut S,
        lane: usize,
        n: usize,
        sink: NodeId,
        max_interactions: u64,
    ) -> bool
    where
        S: InteractionSource + ?Sized,
    {
        if source.is_oblivious() {
            self.burst_batched(algorithm, source, lane, n, sink, max_interactions)
        } else {
            self.burst_stepped(algorithm, source, lane, n, sink, max_interactions)
        }
    }

    /// Oblivious fast path: one virtual call pulls a whole batch of
    /// interactions (devirtualising the source's generator loop), then the
    /// branchless kernel drains it.
    fn burst_batched<S>(
        &mut self,
        algorithm: LaneAlgorithm,
        source: &mut S,
        lane: usize,
        n: usize,
        sink: NodeId,
        max_interactions: u64,
    ) -> bool
    where
        S: InteractionSource + ?Sized,
    {
        let t0 = self.clock[lane];
        let want = PULL_BATCH.min(max_interactions.saturating_sub(t0) as usize);
        if want == 0 {
            return false;
        }
        let mut pull = std::mem::take(&mut self.pull);
        pull.clear();
        {
            let view = AdversaryView {
                owns_data: &self.views[lane * n..(lane + 1) * n],
                sink,
            };
            source.next_interaction_batch(t0, &view, &mut pull, want);
        }
        let got = pull.len();
        // A short batch means the source is exhausted: the lane retires
        // after applying what it got, like the scalar engine does on the
        // first `None`.
        let mut alive = got == want;
        let mut consumed = got as u64;
        // The drain loop is the sweep's innermost hot path: per-lane
        // counters live in registers for the whole burst, and the boolean
        // view mirror is not maintained — obliviousness (the admission
        // ticket to this path) means no source will ever read it, and the
        // bitset column alone is ground truth for a batched lane.
        let bit = 1u64 << lane;
        let mut owners = self.owners[lane];
        let mut transmissions = self.transmissions[lane];
        let ownership = &mut self.ownership[..n];
        let is_waiting = matches!(algorithm, LaneAlgorithm::Waiting);
        for (offset, &interaction) in pull.iter().enumerate() {
            let a = interaction.min();
            let b = interaction.max();
            // Out-of-range endpoints read as non-owners, mirroring the
            // scalar engine's `owns()`.
            let own_a = ownership.get(a.index()).copied().unwrap_or(0);
            let own_b = ownership.get(b.index()).copied().unwrap_or(0);
            let gate = !is_waiting || a == sink || b == sink;
            let sender = if b == sink { a } else { b };
            let fire = own_a & own_b & bit & (gate as u64).wrapping_neg();
            // Clamped index: when `fire` is 0 the write is a no-op, so a
            // structurally out-of-range sender (which can never fire)
            // needs no branch — and the clamp also elides the bounds check.
            let s = sender.index().min(n - 1);
            ownership[s] &= !fire;
            let fired = (fire >> lane) as u32;
            owners -= fired;
            transmissions += u64::from(fired);
            if owners == 1 {
                self.termination[lane] = Some(t0 + offset as u64);
                consumed = offset as u64 + 1;
                alive = false;
                break;
            }
        }
        self.owners[lane] = owners;
        self.transmissions[lane] = transmissions;
        self.clock[lane] = t0 + consumed;
        self.pull = pull;
        alive
    }

    /// General path (adaptive adversaries): one virtual pull per step, the
    /// per-lane ownership view refreshed between steps exactly as the
    /// scalar engine refreshes its own.
    fn burst_stepped<S>(
        &mut self,
        algorithm: LaneAlgorithm,
        source: &mut S,
        lane: usize,
        n: usize,
        sink: NodeId,
        max_interactions: u64,
    ) -> bool
    where
        S: InteractionSource + ?Sized,
    {
        for _ in 0..PULL_BATCH {
            let t = self.clock[lane];
            if t >= max_interactions {
                return false;
            }
            let event = {
                let view = AdversaryView {
                    owns_data: &self.views[lane * n..(lane + 1) * n],
                    sink,
                };
                source.next_event(t, &view)
            };
            match event {
                None => return false,
                Some(StepEvent::Interaction(interaction)) => {
                    self.clock[lane] = t + 1;
                    if self.apply(algorithm, interaction, sink, lane, n) {
                        self.termination[lane] = Some(t);
                        return false;
                    }
                }
                Some(event) => panic!(
                    "the lane tier is fault-free by contract, but lane {lane}'s \
                     source emitted {event:?} at t = {t}; route faulted trials \
                     through the scalar path"
                ),
            }
        }
        true
    }

    /// Applies one interaction to one lane, branchlessly, maintaining the
    /// boolean view mirror (the stepped path's slow-but-faithful twin of
    /// the batched drain loop); returns `true` when the lane's aggregation
    /// completed (owner count hit one — the sink never transmits, so the
    /// last owner is the sink).
    #[inline]
    fn apply(
        &mut self,
        algorithm: LaneAlgorithm,
        interaction: Interaction,
        sink: NodeId,
        lane: usize,
        n: usize,
    ) -> bool {
        let a = interaction.min();
        let b = interaction.max();
        let bit = 1u64 << lane;
        // Out-of-range endpoints read as non-owners, mirroring the scalar
        // engine's `owns()`.
        let own_a = self.ownership.get(a.index()).copied().unwrap_or(0);
        let own_b = self.ownership.get(b.index()).copied().unwrap_or(0);
        let gate = match algorithm {
            LaneAlgorithm::Gathering => true,
            LaneAlgorithm::Waiting => a == sink || b == sink,
        };
        // Receiver = sink when involved, else the smaller id; sender = the
        // other endpoint (the scalar algorithms' exact rule).
        let sender = if b == sink { a } else { b };
        // 0 or `bit`: transmit iff both endpoints own data on this lane
        // and the algorithm's gate holds.
        let fire = own_a & own_b & bit & (gate as u64).wrapping_neg();
        let fired = (fire >> lane) as u32;
        // Clamped index: when `fire` is 0 both writes are no-ops, so a
        // structurally out-of-range sender (which can never fire) needs no
        // branch.
        let s = sender.index().min(n - 1);
        self.ownership[s] &= !fire;
        self.views[lane * n + s] &= fire == 0;
        self.owners[lane] -= fired;
        self.transmissions[lane] += u64::from(fired);
        self.owners[lane] == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Gathering, Waiting};
    use crate::data::IdSet;
    use crate::engine::{DiscardTransmissions, Engine, EngineConfig};
    use crate::sequence::InteractionSequence;
    use crate::DodaAlgorithm;

    fn star_sequence(n: usize, rounds: usize) -> InteractionSequence {
        let mut seq = InteractionSequence::new(n);
        for _ in 0..rounds {
            for i in 1..n {
                seq.push(Interaction::new(NodeId(0), NodeId(i)));
            }
        }
        seq
    }

    fn scalar_reference(
        algorithm: LaneAlgorithm,
        seq: &InteractionSequence,
        budget: u64,
    ) -> crate::engine::RunStats {
        let mut engine: Engine<IdSet> = Engine::new();
        let mut waiting = Waiting::new();
        let mut gathering = Gathering::new();
        let algo: &mut dyn DodaAlgorithm = match algorithm {
            LaneAlgorithm::Waiting => &mut waiting,
            LaneAlgorithm::Gathering => &mut gathering,
        };
        engine
            .run(
                algo,
                &mut seq.stream(false),
                NodeId(0),
                IdSet::singleton,
                EngineConfig::sweep(budget),
                &mut DiscardTransmissions,
            )
            .unwrap()
    }

    fn assert_matches_scalar(algorithm: LaneAlgorithm, seqs: &[InteractionSequence], budget: u64) {
        let mut engine = LaneEngine::new();
        let mut sources: Vec<_> = seqs.iter().map(|s| s.stream(false)).collect();
        let stats = engine.run_lanes(algorithm, &mut sources, NodeId(0), budget);
        assert_eq!(stats.len(), seqs.len());
        for (lane, (seq, lane_stats)) in seqs.iter().zip(&stats).enumerate() {
            let scalar = scalar_reference(algorithm, seq, budget);
            assert_eq!(
                lane_stats.termination_time, scalar.termination_time,
                "lane {lane} termination"
            );
            assert_eq!(
                lane_stats.interactions_processed, scalar.interactions_processed,
                "lane {lane} interactions"
            );
            assert_eq!(
                lane_stats.transmissions, scalar.transmissions,
                "lane {lane} transmissions"
            );
            assert_eq!(
                lane_stats.remaining_owners(),
                scalar.remaining_owners,
                "lane {lane} owners"
            );
            assert_eq!(scalar.ignored_decisions, 0, "lane {lane}");
        }
    }

    #[test]
    fn lanes_match_the_scalar_engine_on_star_streams() {
        let seqs: Vec<_> = (0..5).map(|i| star_sequence(6 + i, 2)).collect();
        // Mixed node counts are rejected; batch per node count instead.
        for seq in &seqs {
            assert_matches_scalar(LaneAlgorithm::Waiting, std::slice::from_ref(seq), 1_000);
            assert_matches_scalar(LaneAlgorithm::Gathering, std::slice::from_ref(seq), 1_000);
        }
    }

    #[test]
    fn a_full_width_batch_runs_all_64_lanes() {
        use doda_stats::rng::SeedSequence;
        use rand::Rng;

        let n = 9;
        let seeds = SeedSequence::new(7);
        let seqs: Vec<_> = (0..MAX_LANES as u64)
            .map(|i| {
                let mut rng = seeds.rng(i);
                InteractionSequence::from_interactions(
                    n,
                    (0..600).map(|_| {
                        let a = rng.gen_range(0..n);
                        let mut b = rng.gen_range(0..n - 1);
                        if b >= a {
                            b += 1;
                        }
                        Interaction::new(NodeId(a), NodeId(b))
                    }),
                )
            })
            .collect();
        assert_matches_scalar(LaneAlgorithm::Gathering, &seqs, 600);
        assert_matches_scalar(LaneAlgorithm::Waiting, &seqs, 600);
    }

    #[test]
    fn budget_and_exhaustion_retire_lanes_like_the_scalar_engine() {
        // A stream that never involves the sink starves Waiting: the lane
        // must retire at the budget with no termination.
        let starving = InteractionSequence::from_pairs(4, vec![(1, 2), (2, 3), (1, 3)]);
        for budget in [1u64, 2, 3, 7] {
            assert_matches_scalar(
                LaneAlgorithm::Waiting,
                std::slice::from_ref(&starving),
                budget,
            );
        }
        // Exhaustion: a 3-interaction stream under a generous budget.
        assert_matches_scalar(LaneAlgorithm::Waiting, &[starving], 10_000);
    }

    #[test]
    fn single_node_batches_terminate_immediately() {
        let seqs = [InteractionSequence::new(1), InteractionSequence::new(1)];
        let mut engine = LaneEngine::new();
        let mut sources: Vec<_> = seqs.iter().map(|s| s.stream(false)).collect();
        let stats = engine.run_lanes(LaneAlgorithm::Gathering, &mut sources, NodeId(0), 100);
        for s in stats {
            assert_eq!(s.termination_time, Some(0));
            assert_eq!(s.interactions_processed, 0);
            assert_eq!(s.transmissions, 0);
            assert!(s.terminated());
        }
    }

    #[test]
    fn reused_engine_matches_fresh_runs_across_shapes() {
        let mut engine = LaneEngine::new();
        for &(n, rounds) in &[(5usize, 1usize), (3, 2), (8, 1), (2, 1)] {
            let seq = star_sequence(n, rounds);
            let mut sources = vec![seq.stream(false)];
            let reused = engine.run_lanes(LaneAlgorithm::Waiting, &mut sources, NodeId(0), 1_000);
            let mut fresh_engine = LaneEngine::new();
            let mut sources = vec![seq.stream(false)];
            let fresh =
                fresh_engine.run_lanes(LaneAlgorithm::Waiting, &mut sources, NodeId(0), 1_000);
            assert_eq!(reused, fresh, "n = {n}");
        }
    }

    #[test]
    fn non_sink_zero_sinks_are_respected() {
        // Sink 2: Waiting on a {0,1},{1,2},{0,2} cycle must route data to
        // node 2 only.
        let seq = InteractionSequence::from_pairs(3, vec![(0, 1), (1, 2), (0, 2)]);
        let mut engine = LaneEngine::new();
        let mut sources = vec![seq.stream(false)];
        let lanes = engine.run_lanes(LaneAlgorithm::Waiting, &mut sources, NodeId(2), 100);

        let mut scalar: Engine<IdSet> = Engine::new();
        let stats = scalar
            .run(
                &mut Waiting::new(),
                &mut seq.stream(false),
                NodeId(2),
                IdSet::singleton,
                EngineConfig::sweep(100),
                &mut DiscardTransmissions,
            )
            .unwrap();
        assert_eq!(lanes[0].termination_time, stats.termination_time);
        assert_eq!(lanes[0].transmissions, stats.transmissions);
        assert_eq!(
            lanes[0].interactions_processed,
            stats.interactions_processed
        );
    }

    #[test]
    fn lane_labels_match_scalar_names() {
        assert_eq!(LaneAlgorithm::Waiting.label(), Waiting::new().name());
        assert_eq!(LaneAlgorithm::Gathering.label(), Gathering::new().name());
    }

    #[test]
    #[should_panic(expected = "lane batch holds")]
    fn oversized_batches_are_rejected() {
        let seqs: Vec<_> = (0..65).map(|_| star_sequence(4, 1)).collect();
        let mut sources: Vec<_> = seqs.iter().map(|s| s.stream(false)).collect();
        let _ = LaneEngine::new().run_lanes(LaneAlgorithm::Gathering, &mut sources, NodeId(0), 100);
    }

    #[test]
    #[should_panic(expected = "shares one node count")]
    fn mixed_node_counts_are_rejected() {
        let a = star_sequence(4, 1);
        let b = star_sequence(5, 1);
        let mut sources = vec![a.stream(false), b.stream(false)];
        let _ = LaneEngine::new().run_lanes(LaneAlgorithm::Gathering, &mut sources, NodeId(0), 100);
    }

    #[test]
    #[should_panic(expected = "fault-free by contract")]
    fn fault_events_panic_instead_of_corrupting_lanes() {
        use crate::fault::{FaultProfile, FaultedSource};

        let seq = star_sequence(6, 50);
        // Loss-heavy plan: a Lost event fires quickly.
        let mut sources =
            vec![FaultedSource::new(seq.stream(true), FaultProfile::lossy(0.9), 3).unwrap()];
        let _ =
            LaneEngine::new().run_lanes(LaneAlgorithm::Waiting, &mut sources, NodeId(0), 10_000);
    }
}
