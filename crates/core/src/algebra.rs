//! The aggregation algebra: the commutative-monoid contract behind every
//! datum, plus constant-size sketch aggregates.
//!
//! The paper aggregates two data into one "whose size is that of a single
//! input". This module captures what that requires algebraically and what
//! it buys operationally:
//!
//! * [`Aggregate`] is the contract — `merge` must be **commutative** and
//!   **associative**, so the value at the sink is independent of the
//!   aggregation order the adversary's schedule induces. Two marker
//!   consts refine the contract: [`Aggregate::IDEMPOTENT`]
//!   (`merge(a, a) == a`) and [`Aggregate::DUPLICATE_INSENSITIVE`]
//!   (re-aggregating the same *origin's* datum twice cannot change the
//!   result — the property that makes gossip-style dissemination safe).
//! * The fixed-size impls live in [`crate::data`]: [`crate::data::Count`],
//!   [`crate::data::SumData`], total-order [`crate::data::MinData`] /
//!   [`crate::data::MaxData`], and the deliberately growing
//!   [`crate::data::IdSet`] used for exact conservation checks.
//! * Two **sketches** are implemented here, giving constant-size per-node
//!   state where the exact answer would need `O(n)` bytes:
//!   [`DistinctSketch`] (register-based distinct counting, merge by
//!   register-wise max — idempotent *and* duplicate-insensitive) and
//!   [`QuantileSketch`] (a fixed-bin histogram whose counts add — lawful
//!   but duplicate-sensitive, like a sum).
//!
//! Both sketches keep a **sparse one-item representation** until their
//! first real merge: a node that never receives anything carries no heap
//! allocation at all, which is what keeps a sketch-backed `n = 10^5`
//! sweep's peak heap strictly below the `IdSet` equivalent (asserted by
//! `doda-bench --algebra-guard`).
//!
//! Lawfulness is not aspirational: `tests/algebra_laws.rs` pins
//! commutativity, associativity and the claimed marker properties for
//! every implementation with property-based tests, including NaN inputs
//! (the total-order `MinData`/`MaxData` semantics exist because
//! `f64::min`/`max` silently violate commutativity when one operand is
//! NaN).

use std::cmp::Ordering;

use doda_stats::rng::SeedSequence;

/// An aggregation function together with the aggregated value it carries.
///
/// # Contract
///
/// `merge` must be **commutative** (`merge(a, b) == merge(b, a)`) and
/// **associative** (`merge(merge(a, b), c) == merge(a, merge(b, c))`), so
/// that the final value at the sink does not depend on the aggregation
/// order. Floating-point impls satisfy associativity up to rounding
/// ([`crate::data::SumData`]); everything else is exact. The marker
/// consts declare the two optional strengthenings; `tests/algebra_laws.rs`
/// checks every claim property-based.
pub trait Aggregate: Clone + std::fmt::Debug {
    /// `true` when `merge(a, a) == a` for every value `a` — merging a
    /// value into itself is a no-op (min, max, set union, register max).
    const IDEMPOTENT: bool = false;

    /// `true` when aggregating the same *origin's* datum more than once
    /// cannot change the result. This is what makes an aggregate safe
    /// under at-least-once delivery (gossip, retransmission): duplicates
    /// are absorbed instead of double-counted.
    const DUPLICATE_INSENSITIVE: bool = false;

    /// `true` when the aggregate is **exactly conserved**: the sink's
    /// final value is a lossless function of exactly which original data
    /// reached it, so reconciling it against a transfer ledger exposes
    /// any forged, duplicated or dropped contribution. This is what lets
    /// the Byzantine audit ([`crate::byzantine::Tally`]) *detect*
    /// corruption instead of merely tolerating or missing it. True for
    /// [`crate::data::Count`], [`crate::data::SumData`] and
    /// [`crate::data::IdSet`]; deliberately `false` for
    /// [`QuantileSketch`] — its histogram counts add like a sum, but the
    /// binning already loses the per-contribution resolution a ledger
    /// reconciliation needs.
    const EXACT_CONSERVATION: bool = false;

    /// Merges another aggregated value into this one.
    fn merge(&mut self, other: Self);
}

/// The total-order minimum of two floats ([`f64::total_cmp`] semantics):
/// commutative, associative and idempotent even when NaN is involved,
/// unlike [`f64::min`], which returns the non-NaN operand and therefore
/// depends on argument order.
pub fn total_min(a: f64, b: f64) -> f64 {
    if b.total_cmp(&a) == Ordering::Less {
        b
    } else {
        a
    }
}

/// The total-order maximum of two floats; see [`total_min`].
pub fn total_max(a: f64, b: f64) -> f64 {
    if b.total_cmp(&a) == Ordering::Greater {
        b
    } else {
        a
    }
}

// ---------------------------------------------------------------------
// Distinct-count sketch
// ---------------------------------------------------------------------

/// Register-address bits of [`DistinctSketch`]: `2^8 = 256` one-byte
/// registers, a ~6.5% standard error on the distinct-count estimate —
/// and at most 256 bytes of heap per *merged-into* node (un-merged nodes
/// stay heap-free in the sparse representation).
pub const DISTINCT_REGISTER_BITS: u32 = 8;

const DISTINCT_REGISTERS: usize = 1 << DISTINCT_REGISTER_BITS;

/// A register-based distinct-count sketch (HyperLogLog-style) over `u64`
/// items, hashed with a seeded SplitMix64 mix via
/// [`doda_stats::rng::SeedSequence`].
///
/// The state is a pure function of the *set* of items inserted — never of
/// the merge order — which makes `merge` exactly commutative,
/// associative, idempotent and duplicate-insensitive:
///
/// * one distinct item → the sparse [`One`](self) representation (just
///   the item's hash, no heap);
/// * two or more → 256 one-byte registers, each holding the maximum
///   "leading-zero rank" of the hashes routed to it; merging is
///   register-wise max.
///
/// Two sketches may only be merged when they share a hash seed (the
/// registers of differently-seeded hashes are unrelated); merging across
/// seeds is a logic error caught by a debug assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSketch {
    seed: u64,
    state: DistinctState,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum DistinctState {
    /// Exactly one distinct item has been inserted: its hash.
    One(u64),
    /// Two or more distinct items: the dense register file.
    Dense(Box<[u8]>),
}

impl DistinctSketch {
    /// The sketch of a single item under the given hash seed — the
    /// initial datum of a node whose identity (or reading id) is `item`.
    /// Allocation-free: the dense registers appear only on first merge
    /// with a different item.
    pub fn singleton(seed: u64, item: u64) -> Self {
        DistinctSketch {
            seed,
            state: DistinctState::One(hash_item(seed, item)),
        }
    }

    /// The estimated number of distinct items inserted (over all merged
    /// sketches). Exactly `1.0` in the sparse one-item state; the
    /// standard estimator with small-range (linear counting) correction
    /// once dense.
    pub fn estimate(&self) -> f64 {
        match &self.state {
            DistinctState::One(_) => 1.0,
            DistinctState::Dense(regs) => {
                let m = DISTINCT_REGISTERS as f64;
                let alpha = 0.7213 / (1.0 + 1.079 / m);
                let mut inverse_sum = 0.0f64;
                let mut zeros = 0usize;
                for &r in regs.iter() {
                    inverse_sum += (-(f64::from(r))).exp2();
                    if r == 0 {
                        zeros += 1;
                    }
                }
                let raw = alpha * m * m / inverse_sum;
                if raw <= 2.5 * m && zeros > 0 {
                    // Linear counting is the better estimator while most
                    // registers are still empty.
                    m * (m / zeros as f64).ln()
                } else {
                    raw
                }
            }
        }
    }

    /// The hash seed this sketch was built with; only sketches sharing a
    /// seed are mergeable.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` while the sketch still holds exactly one distinct item and
    /// therefore no heap allocation.
    pub fn is_sparse(&self) -> bool {
        matches!(self.state, DistinctState::One(_))
    }
}

/// Routes one item hash into a register file: register index from the top
/// address bits, rank = leading zeros of the remaining bits + 1.
fn insert_hash(regs: &mut [u8], h: u64) {
    let idx = (h >> (64 - DISTINCT_REGISTER_BITS)) as usize;
    let tail = h << DISTINCT_REGISTER_BITS;
    let rank = (tail.leading_zeros() + 1).min(64 - DISTINCT_REGISTER_BITS + 1) as u8;
    if rank > regs[idx] {
        regs[idx] = rank;
    }
}

/// Seeded item hash: the SplitMix64 output mix [`SeedSequence`] uses for
/// sub-seed derivation doubles as a well-spread 64-bit hash.
fn hash_item(seed: u64, item: u64) -> u64 {
    SeedSequence::new(seed).seed(item)
}

impl Aggregate for DistinctSketch {
    const IDEMPOTENT: bool = true;
    const DUPLICATE_INSENSITIVE: bool = true;

    fn merge(&mut self, other: Self) {
        debug_assert_eq!(
            self.seed, other.seed,
            "distinct sketches are only mergeable under one hash seed"
        );
        match (&mut self.state, other.state) {
            (DistinctState::One(a), DistinctState::One(b)) => {
                if *a != b {
                    let mut regs = vec![0u8; DISTINCT_REGISTERS].into_boxed_slice();
                    insert_hash(&mut regs, *a);
                    insert_hash(&mut regs, b);
                    self.state = DistinctState::Dense(regs);
                }
            }
            (DistinctState::One(a), DistinctState::Dense(mut regs)) => {
                insert_hash(&mut regs, *a);
                self.state = DistinctState::Dense(regs);
            }
            (DistinctState::Dense(regs), DistinctState::One(b)) => {
                insert_hash(regs, b);
            }
            (DistinctState::Dense(regs), DistinctState::Dense(other_regs)) => {
                for (r, o) in regs.iter_mut().zip(other_regs.iter()) {
                    if *o > *r {
                        *r = *o;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Quantile sketch
// ---------------------------------------------------------------------

/// Bin count of [`QuantileSketch`]: 64 equi-width bins over the sketch's
/// value range, i.e. at most 512 bytes of heap per merged-into node and a
/// worst-case quantile error of one bin width.
pub const QUANTILE_BINS: usize = 64;

/// A fixed-size quantile sketch: an equi-width histogram over a value
/// range fixed at construction, with exact count/min/max tracking.
///
/// Merging adds bin counts — **exactly** commutative and associative
/// (bin counts are integers; no floating-point rounding is involved in
/// `merge`), but *not* idempotent or duplicate-insensitive: like a sum,
/// merging the same readings twice counts them twice. The state is a
/// pure function of the multiset of inserted readings, never of the
/// merge order, and stays sparse (one reading, no heap) until the first
/// merge.
///
/// Only sketches built over the same `[lo, hi)` range are mergeable;
/// mixing ranges is a logic error caught by a debug assertion. Readings
/// outside the range clamp into the edge bins (min/max remain exact, in
/// [`f64::total_cmp`] order, so NaN readings cannot re-order a merge).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    state: QuantileState,
}

#[derive(Debug, Clone, PartialEq)]
enum QuantileState {
    /// Exactly one reading inserted.
    One(f64),
    /// Two or more readings: the dense histogram.
    Hist {
        count: u64,
        min: f64,
        max: f64,
        bins: Box<[u64]>,
    },
}

impl QuantileSketch {
    /// The sketch of a single reading over the value range `[lo, hi)` —
    /// the initial datum of a node whose sensor reads `value`.
    /// Allocation-free until the first merge.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite (the bin geometry
    /// would be meaningless otherwise).
    pub fn singleton(lo: f64, hi: f64, value: f64) -> Self {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "quantile sketch needs a finite, non-empty value range"
        );
        QuantileSketch {
            lo,
            hi,
            state: QuantileState::One(value),
        }
    }

    /// Number of readings aggregated so far (exact).
    pub fn count(&self) -> u64 {
        match &self.state {
            QuantileState::One(_) => 1,
            QuantileState::Hist { count, .. } => *count,
        }
    }

    /// The exact minimum reading, in total order.
    pub fn min(&self) -> f64 {
        match &self.state {
            QuantileState::One(v) => *v,
            QuantileState::Hist { min, .. } => *min,
        }
    }

    /// The exact maximum reading, in total order.
    pub fn max(&self) -> f64 {
        match &self.state {
            QuantileState::One(v) => *v,
            QuantileState::Hist { max, .. } => *max,
        }
    }

    /// `true` while the sketch still holds exactly one reading and
    /// therefore no heap allocation.
    pub fn is_sparse(&self) -> bool {
        matches!(self.state, QuantileState::One(_))
    }

    /// The estimated `q`-quantile (`q` clamped into `[0, 1]`) of the
    /// aggregated readings: linear interpolation inside the histogram bin
    /// holding the target rank, clamped to the exact `[min, max]`.
    /// Error is bounded by one bin width.
    pub fn quantile(&self, q: f64) -> f64 {
        match &self.state {
            QuantileState::One(v) => *v,
            QuantileState::Hist {
                count,
                min,
                max,
                bins,
            } => {
                let q = q.clamp(0.0, 1.0);
                let target = q * (*count as f64 - 1.0);
                let width = (self.hi - self.lo) / QUANTILE_BINS as f64;
                let mut cum = 0u64;
                for (i, &c) in bins.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let first_rank = cum as f64;
                    cum += c;
                    if target < cum as f64 {
                        let within = if c > 1 {
                            ((target - first_rank) / (c as f64 - 1.0)).clamp(0.0, 1.0)
                        } else {
                            0.5
                        };
                        let est = self.lo + (i as f64 + within) * width;
                        return total_min(total_max(est, *min), *max);
                    }
                }
                *max
            }
        }
    }

    /// The histogram bin a reading falls into; out-of-range and NaN
    /// readings clamp into the edge bins (0 for NaN/below-range — the
    /// float-to-int cast saturates — and the last bin for above-range).
    fn bin_of(&self, value: f64) -> usize {
        let frac = (value - self.lo) / (self.hi - self.lo);
        let idx = (frac * QUANTILE_BINS as f64) as usize;
        idx.min(QUANTILE_BINS - 1)
    }

    fn insert(&self, bins: &mut [u64], value: f64) {
        bins[self.bin_of(value)] += 1;
    }
}

impl Aggregate for QuantileSketch {
    fn merge(&mut self, other: Self) {
        debug_assert!(
            self.lo == other.lo && self.hi == other.hi,
            "quantile sketches are only mergeable over one value range"
        );
        match (&self.state, other.state) {
            (&QuantileState::One(a), QuantileState::One(b)) => {
                let mut bins = vec![0u64; QUANTILE_BINS].into_boxed_slice();
                self.insert(&mut bins, a);
                self.insert(&mut bins, b);
                self.state = QuantileState::Hist {
                    count: 2,
                    min: total_min(a, b),
                    max: total_max(a, b),
                    bins,
                };
            }
            (
                &QuantileState::One(a),
                QuantileState::Hist {
                    count,
                    min,
                    max,
                    mut bins,
                },
            ) => {
                self.insert(&mut bins, a);
                self.state = QuantileState::Hist {
                    count: count + 1,
                    min: total_min(min, a),
                    max: total_max(max, a),
                    bins,
                };
            }
            (QuantileState::Hist { .. }, QuantileState::One(b)) => {
                let bin = self.bin_of(b);
                if let QuantileState::Hist {
                    count,
                    min,
                    max,
                    bins,
                } = &mut self.state
                {
                    *count += 1;
                    *min = total_min(*min, b);
                    *max = total_max(*max, b);
                    bins[bin] += 1;
                }
            }
            (
                QuantileState::Hist { .. },
                QuantileState::Hist {
                    count: oc,
                    min: omin,
                    max: omax,
                    bins: obins,
                },
            ) => {
                if let QuantileState::Hist {
                    count,
                    min,
                    max,
                    bins,
                } = &mut self.state
                {
                    *count += oc;
                    *min = total_min(*min, omin);
                    *max = total_max(*max, omax);
                    for (b, o) in bins.iter_mut().zip(obins.iter()) {
                        *b += o;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------

/// The constant-size summary a trial reports of the sink's final
/// aggregate — the figure of merit of a sweep that runs a real
/// aggregation function instead of the exact-conservation `IdSet`.
/// Carried on `TrialResult` and over the service wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggregateSummary {
    /// The sink's [`crate::data::Count`].
    Count {
        /// Number of original data aggregated at the sink.
        value: u64,
    },
    /// The sink's [`crate::data::SumData`].
    Sum {
        /// Sum of the aggregated readings.
        value: f64,
    },
    /// The sink's [`crate::data::MinData`].
    Min {
        /// Minimum aggregated reading (total order).
        value: f64,
    },
    /// The sink's [`crate::data::MaxData`].
    Max {
        /// Maximum aggregated reading (total order).
        value: f64,
    },
    /// The sink's [`DistinctSketch`].
    Distinct {
        /// Estimated number of distinct origins aggregated.
        estimate: f64,
    },
    /// The sink's [`QuantileSketch`].
    Quantile {
        /// Exact number of readings aggregated.
        count: u64,
        /// Estimated median reading.
        median: f64,
        /// Estimated 95th-percentile reading.
        p95: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_sketch_stays_sparse_until_a_real_merge() {
        let a = DistinctSketch::singleton(7, 1);
        assert!(a.is_sparse());
        assert_eq!(a.estimate(), 1.0);

        // Merging the same item keeps the sparse state (idempotent).
        let mut same = a.clone();
        same.merge(DistinctSketch::singleton(7, 1));
        assert!(same.is_sparse());
        assert_eq!(same, a);

        // A different item densifies.
        let mut two = a.clone();
        two.merge(DistinctSketch::singleton(7, 2));
        assert!(!two.is_sparse());
        assert!(two.estimate() > 1.0);
    }

    #[test]
    fn distinct_estimate_tracks_the_true_cardinality() {
        for &n in &[10u64, 100, 1_000, 10_000] {
            let mut sketch = DistinctSketch::singleton(42, 0);
            for item in 1..n {
                sketch.merge(DistinctSketch::singleton(42, item));
            }
            let estimate = sketch.estimate();
            let error = (estimate - n as f64).abs() / n as f64;
            // 256 registers give ~6.5% standard error; 25% is a loose,
            // deterministic-seed-safe bound.
            assert!(
                error < 0.25,
                "n = {n}: estimate {estimate:.1} is off by {:.1}%",
                error * 100.0
            );
        }
    }

    #[test]
    fn distinct_merge_is_duplicate_insensitive() {
        let mut once = DistinctSketch::singleton(3, 10);
        for item in 11..60 {
            once.merge(DistinctSketch::singleton(3, item));
        }
        let mut twice = once.clone();
        for item in 10..60 {
            twice.merge(DistinctSketch::singleton(3, item));
        }
        assert_eq!(once, twice);
    }

    #[test]
    fn quantile_sketch_estimates_quantiles_within_a_bin() {
        let mut sketch = QuantileSketch::singleton(0.0, 1.0, 0.0);
        for k in 1..1_000u32 {
            sketch.merge(QuantileSketch::singleton(0.0, 1.0, f64::from(k) / 1_000.0));
        }
        assert_eq!(sketch.count(), 1_000);
        assert_eq!(sketch.min(), 0.0);
        let bin_width = 1.0 / QUANTILE_BINS as f64;
        for &(q, truth) in &[(0.5, 0.4995), (0.95, 0.9495), (0.0, 0.0), (1.0, 0.999)] {
            let est = sketch.quantile(q);
            assert!(
                (est - truth).abs() <= bin_width,
                "q = {q}: estimate {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn quantile_merge_handles_out_of_range_and_nan_readings() {
        let mut sketch = QuantileSketch::singleton(0.0, 1.0, -5.0);
        sketch.merge(QuantileSketch::singleton(0.0, 1.0, 7.0));
        sketch.merge(QuantileSketch::singleton(0.0, 1.0, f64::NAN));
        assert_eq!(sketch.count(), 3);
        assert_eq!(sketch.min(), -5.0);
        // Total order puts the (positive) NaN above every number.
        assert!(sketch.max().is_nan());
        // Quantile estimates stay clamped inside [min, max].
        let median = sketch.quantile(0.5);
        assert!((-5.0..=1.0).contains(&median), "median {median}");
    }

    #[test]
    fn total_order_min_max_are_commutative_on_nan() {
        let nan = f64::NAN;
        assert_eq!(total_min(nan, 1.0).to_bits(), total_min(1.0, nan).to_bits());
        assert_eq!(total_max(nan, 1.0).to_bits(), total_max(1.0, nan).to_bits());
        // f64::min — what MinData used before — is not: it returns the
        // non-NaN operand, so the merge result depended on order.
        assert!(f64::min(nan, 1.0) == 1.0 && f64::min(1.0, nan) == 1.0);
    }
}
