//! Error types.

use doda_graph::NodeId;

use crate::interaction::{Interaction, Time};

/// A transmission requested by an algorithm (or test) that would violate
/// the DODA model, rejected by [`crate::state::NetworkState::transmit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmissionError {
    /// Sender and receiver are the same node.
    SelfTransmission {
        /// The offending node.
        node: NodeId,
    },
    /// The sink was asked to transmit; the sink only ever receives.
    SinkMustNotTransmit,
    /// A node id outside the graph was referenced.
    UnknownNode {
        /// The offending node.
        node: NodeId,
    },
    /// The node does not currently own data (it either already transmitted
    /// or the id refers to a node that never had data).
    NoData {
        /// The offending node.
        node: NodeId,
    },
    /// The node already used its single allowed transmission.
    AlreadyTransmitted {
        /// The offending node.
        node: NodeId,
    },
}

impl std::fmt::Display for TransmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransmissionError::SelfTransmission { node } => {
                write!(f, "node {node} cannot transmit to itself")
            }
            TransmissionError::SinkMustNotTransmit => {
                write!(f, "the sink must not transmit its data")
            }
            TransmissionError::UnknownNode { node } => {
                write!(f, "node {node} is not part of the graph")
            }
            TransmissionError::NoData { node } => write!(f, "node {node} does not own data"),
            TransmissionError::AlreadyTransmitted { node } => {
                write!(f, "node {node} already transmitted its data")
            }
        }
    }
}

impl std::error::Error for TransmissionError {}

/// A fault event that is inconsistent with the execution's fault state,
/// rejected by the engine. A well-formed [`crate::fault::FaultedSource`]
/// never produces these; they exist so that the model invariants are
/// enforced — not assumed — against any event source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// A crash, departure or arrival targeted the sink; the sink is
    /// always live and always owns data.
    TargetsSink {
        /// The sink node.
        node: NodeId,
    },
    /// A fault event referenced a node outside the graph.
    UnknownNode {
        /// The offending node.
        node: NodeId,
    },
    /// A crash or departure targeted a node that is already dead.
    NotLive {
        /// The offending node.
        node: NodeId,
    },
    /// An arrival targeted a node that is still live.
    AlreadyLive {
        /// The offending node.
        node: NodeId,
    },
    /// An interaction was presented whose participant is dead; a dead
    /// node cannot participate, so the source must have downgraded the
    /// contact to [`crate::sequence::StepEvent::Lost`].
    DeadParticipant {
        /// The interaction presented.
        interaction: Interaction,
        /// The dead participant.
        node: NodeId,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::TargetsSink { node } => {
                write!(f, "fault event targets the sink {node}")
            }
            FaultError::UnknownNode { node } => {
                write!(f, "fault event references unknown node {node}")
            }
            FaultError::NotLive { node } => {
                write!(f, "fault event removes node {node}, which is already dead")
            }
            FaultError::AlreadyLive { node } => {
                write!(f, "arrival of node {node}, which is already live")
            }
            FaultError::DeadParticipant { interaction, node } => {
                write!(
                    f,
                    "interaction {interaction} involves dead node {node}; the source must \
                     downgrade it to a lost contact"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// An error raised by the execution engine when an algorithm's decision is
/// structurally invalid for the current interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The algorithm named a sender or receiver that is not part of the
    /// current interaction.
    DecisionOutsideInteraction {
        /// Time of the offending decision.
        time: Time,
        /// The interaction that was presented to the algorithm.
        interaction: Interaction,
        /// The sender the algorithm named.
        sender: NodeId,
        /// The receiver the algorithm named.
        receiver: NodeId,
    },
    /// A transmission that passed the structural check was rejected by the
    /// network state. Under the engine's "both own data" pre-check this
    /// indicates an internal inconsistency and is surfaced rather than
    /// silently ignored.
    InvalidTransmission {
        /// Time of the offending decision.
        time: Time,
        /// The underlying state-level error.
        cause: TransmissionError,
    },
    /// The event source emitted a fault event that is inconsistent with
    /// the execution's fault state (see [`FaultError`]).
    InvalidFault {
        /// Time of the offending event.
        time: Time,
        /// The underlying fault-model violation.
        cause: FaultError,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DecisionOutsideInteraction {
                time,
                interaction,
                sender,
                receiver,
            } => write!(
                f,
                "decision at t={time} orders {sender} -> {receiver}, which is not the interacting pair {interaction}"
            ),
            EngineError::InvalidTransmission { time, cause } => {
                write!(f, "invalid transmission at t={time}: {cause}")
            }
            EngineError::InvalidFault { time, cause } => {
                write!(f, "invalid fault event at t={time}: {cause}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::InvalidTransmission { cause, .. } => Some(cause),
            EngineError::InvalidFault { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_error_messages() {
        let e = TransmissionError::NoData { node: NodeId(3) };
        assert!(e.to_string().contains("v3"));
        let e = TransmissionError::SinkMustNotTransmit;
        assert!(e.to_string().contains("sink"));
    }

    #[test]
    fn engine_error_messages_and_source() {
        let cause = TransmissionError::AlreadyTransmitted { node: NodeId(1) };
        let e = EngineError::InvalidTransmission { time: 5, cause };
        assert!(e.to_string().contains("t=5"));
        assert!(std::error::Error::source(&e).is_some());

        let e = EngineError::DecisionOutsideInteraction {
            time: 2,
            interaction: Interaction::new(NodeId(0), NodeId(1)),
            sender: NodeId(2),
            receiver: NodeId(0),
        };
        assert!(e.to_string().contains("not the interacting pair"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn fault_error_messages_and_source() {
        let cases: Vec<(FaultError, &str)> = vec![
            (FaultError::TargetsSink { node: NodeId(0) }, "sink"),
            (FaultError::UnknownNode { node: NodeId(9) }, "unknown"),
            (FaultError::NotLive { node: NodeId(2) }, "already dead"),
            (FaultError::AlreadyLive { node: NodeId(2) }, "already live"),
            (
                FaultError::DeadParticipant {
                    interaction: Interaction::new(NodeId(1), NodeId(2)),
                    node: NodeId(2),
                },
                "dead node",
            ),
        ];
        for (cause, needle) in cases {
            assert!(cause.to_string().contains(needle), "{cause}");
            let e = EngineError::InvalidFault { time: 3, cause };
            assert!(e.to_string().contains("t=3"));
            assert!(std::error::Error::source(&e).is_some());
        }
    }
}
