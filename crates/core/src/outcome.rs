//! Execution outcomes.

use doda_graph::NodeId;

use crate::interaction::Time;

/// One applied transmission: at `time`, `sender` handed its (aggregated)
/// data to `receiver`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// Time of the interaction during which the transmission happened.
    pub time: Time,
    /// The node that transmitted (and left the protocol).
    pub sender: NodeId,
    /// The node that received and aggregated.
    pub receiver: NodeId,
}

/// How an execution ended, once faults can make data unreachable.
///
/// Without faults only [`Completion::Aggregated`] and
/// [`Completion::Starved`] occur, and `Aggregated` coincides with the
/// paper's termination. With faults the sink can become the sole live
/// owner while some data was destroyed en route — the execution
/// *terminates*, but over the survivors only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Completion {
    /// The sink aggregated **every** datum ever introduced (initial data
    /// plus churn arrivals): full termination in the paper's sense.
    Aggregated,
    /// The sink became the sole live owner, but one or more data were
    /// lost to crashes or departures first: the aggregation completed
    /// over the surviving data only.
    AggregatedSurvivors,
    /// The execution stopped (budget or source exhausted) while more than
    /// one node still owned data.
    #[default]
    Starved,
}

impl Completion {
    /// `true` for both terminating variants (the sink ended as the sole
    /// live owner).
    pub fn terminated(&self) -> bool {
        !matches!(self, Completion::Starved)
    }

    /// The label used in reports and `BENCH_*.json` documentation.
    pub fn label(&self) -> &'static str {
        match self {
            Completion::Aggregated => "aggregated",
            Completion::AggregatedSurvivors => "aggregated-survivors",
            Completion::Starved => "starved",
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters of the fault events applied during one execution. All zero
/// for fault-free sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTally {
    /// Nodes that crashed permanently.
    pub crashes: u64,
    /// Nodes that departed (churn).
    pub departures: u64,
    /// Departed nodes that re-arrived with fresh data (churn).
    pub arrivals: u64,
    /// Scheduled interactions that were lost before the algorithm saw
    /// them (message loss or a dead participant).
    pub lost_interactions: u64,
    /// Data items destroyed by crashes ([`CrashPolicy::DatumLost`]) and
    /// departures. Each item may be an *aggregate* of several origins
    /// (the victim had received transmissions first); the lost bin on
    /// [`crate::state::NetworkState`] accounts for the origins exactly.
    ///
    /// [`CrashPolicy::DatumLost`]: crate::fault::CrashPolicy::DatumLost
    pub data_lost: u64,
    /// Data items salvaged from recoverable crashes (same aggregate
    /// caveat as [`FaultTally::data_lost`]).
    pub data_recovered: u64,
}

impl FaultTally {
    /// `true` iff no fault event of any kind occurred.
    pub fn is_clean(&self) -> bool {
        *self == FaultTally::default()
    }
}

/// The result of running a DODA algorithm over an interaction source.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome<A> {
    /// Number of nodes in the dynamic graph.
    pub node_count: usize,
    /// The sink node.
    pub sink: NodeId,
    /// `Some(t)` if the aggregation completed: `t` is the time of the
    /// interaction carrying the final transmission (`0` for the degenerate
    /// single-node graph that is complete from the start). `None` if the
    /// execution stopped (source exhausted or step budget reached) before
    /// completion.
    pub termination_time: Option<Time>,
    /// Number of interactions presented to the algorithm (including the
    /// terminating one).
    pub interactions_processed: u64,
    /// All applied transmissions, in time order.
    pub transmissions: Vec<Transmission>,
    /// Number of `Transmit` decisions that were ignored because the two
    /// nodes did not both own data (the paper's "output is ignored" rule).
    pub ignored_decisions: u64,
    /// The data held by the sink at the end of the execution.
    pub sink_data: Option<A>,
    /// Final ownership bitmap (`true` = node still owns data).
    pub final_ownership: Vec<bool>,
    /// How the execution ended: full aggregation, survivors-only
    /// aggregation (some data lost to faults), or starvation.
    pub completion: Completion,
    /// The fault events applied during the execution (all zero for
    /// fault-free sources).
    pub faults: FaultTally,
}

impl<A> ExecutionOutcome<A> {
    /// Returns `true` if the aggregation completed (sink is the sole owner).
    pub fn terminated(&self) -> bool {
        self.termination_time.is_some()
    }

    /// Duration of the execution in the paper's sense: the termination
    /// time, or `None` if the algorithm did not terminate on this source.
    pub fn duration(&self) -> Option<Time> {
        self.termination_time
    }

    /// Number of transmissions that occurred. For a terminating execution
    /// over `n` nodes this is always `n - 1`.
    pub fn transmission_count(&self) -> usize {
        self.transmissions.len()
    }

    /// Number of nodes that still own data at the end.
    pub fn remaining_owners(&self) -> usize {
        self.final_ownership.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Count;

    #[test]
    fn outcome_accessors() {
        let outcome = ExecutionOutcome {
            node_count: 3,
            sink: NodeId(0),
            termination_time: Some(7),
            interactions_processed: 8,
            transmissions: vec![
                Transmission {
                    time: 2,
                    sender: NodeId(1),
                    receiver: NodeId(0),
                },
                Transmission {
                    time: 7,
                    sender: NodeId(2),
                    receiver: NodeId(0),
                },
            ],
            ignored_decisions: 1,
            sink_data: Some(Count(3)),
            final_ownership: vec![true, false, false],
            completion: Completion::Aggregated,
            faults: FaultTally::default(),
        };
        assert!(outcome.terminated());
        assert_eq!(outcome.duration(), Some(7));
        assert_eq!(outcome.transmission_count(), 2);
        assert_eq!(outcome.remaining_owners(), 1);
        assert!(outcome.completion.terminated());
        assert!(outcome.faults.is_clean());
    }

    #[test]
    fn non_terminated_outcome() {
        let outcome: ExecutionOutcome<Count> = ExecutionOutcome {
            node_count: 3,
            sink: NodeId(0),
            termination_time: None,
            interactions_processed: 100,
            transmissions: Vec::new(),
            ignored_decisions: 0,
            sink_data: Some(Count(1)),
            final_ownership: vec![true, true, true],
            completion: Completion::Starved,
            faults: FaultTally::default(),
        };
        assert!(!outcome.terminated());
        assert_eq!(outcome.duration(), None);
        assert_eq!(outcome.remaining_owners(), 3);
        assert!(!outcome.completion.terminated());
    }

    #[test]
    fn completion_labels_and_default() {
        assert_eq!(Completion::Aggregated.to_string(), "aggregated");
        assert_eq!(
            Completion::AggregatedSurvivors.to_string(),
            "aggregated-survivors"
        );
        assert_eq!(Completion::Starved.to_string(), "starved");
        assert_eq!(Completion::default(), Completion::Starved);
        assert!(Completion::AggregatedSurvivors.terminated());
        let tally = FaultTally {
            crashes: 1,
            ..FaultTally::default()
        };
        assert!(!tally.is_clean());
    }
}
