//! Execution outcomes.

use doda_graph::NodeId;

use crate::interaction::Time;

/// One applied transmission: at `time`, `sender` handed its (aggregated)
/// data to `receiver`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// Time of the interaction during which the transmission happened.
    pub time: Time,
    /// The node that transmitted (and left the protocol).
    pub sender: NodeId,
    /// The node that received and aggregated.
    pub receiver: NodeId,
}

/// The result of running a DODA algorithm over an interaction source.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome<A> {
    /// Number of nodes in the dynamic graph.
    pub node_count: usize,
    /// The sink node.
    pub sink: NodeId,
    /// `Some(t)` if the aggregation completed: `t` is the time of the
    /// interaction carrying the final transmission (`0` for the degenerate
    /// single-node graph that is complete from the start). `None` if the
    /// execution stopped (source exhausted or step budget reached) before
    /// completion.
    pub termination_time: Option<Time>,
    /// Number of interactions presented to the algorithm (including the
    /// terminating one).
    pub interactions_processed: u64,
    /// All applied transmissions, in time order.
    pub transmissions: Vec<Transmission>,
    /// Number of `Transmit` decisions that were ignored because the two
    /// nodes did not both own data (the paper's "output is ignored" rule).
    pub ignored_decisions: u64,
    /// The data held by the sink at the end of the execution.
    pub sink_data: Option<A>,
    /// Final ownership bitmap (`true` = node still owns data).
    pub final_ownership: Vec<bool>,
}

impl<A> ExecutionOutcome<A> {
    /// Returns `true` if the aggregation completed (sink is the sole owner).
    pub fn terminated(&self) -> bool {
        self.termination_time.is_some()
    }

    /// Duration of the execution in the paper's sense: the termination
    /// time, or `None` if the algorithm did not terminate on this source.
    pub fn duration(&self) -> Option<Time> {
        self.termination_time
    }

    /// Number of transmissions that occurred. For a terminating execution
    /// over `n` nodes this is always `n - 1`.
    pub fn transmission_count(&self) -> usize {
        self.transmissions.len()
    }

    /// Number of nodes that still own data at the end.
    pub fn remaining_owners(&self) -> usize {
        self.final_ownership.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Count;

    #[test]
    fn outcome_accessors() {
        let outcome = ExecutionOutcome {
            node_count: 3,
            sink: NodeId(0),
            termination_time: Some(7),
            interactions_processed: 8,
            transmissions: vec![
                Transmission {
                    time: 2,
                    sender: NodeId(1),
                    receiver: NodeId(0),
                },
                Transmission {
                    time: 7,
                    sender: NodeId(2),
                    receiver: NodeId(0),
                },
            ],
            ignored_decisions: 1,
            sink_data: Some(Count(3)),
            final_ownership: vec![true, false, false],
        };
        assert!(outcome.terminated());
        assert_eq!(outcome.duration(), Some(7));
        assert_eq!(outcome.transmission_count(), 2);
        assert_eq!(outcome.remaining_owners(), 1);
    }

    #[test]
    fn non_terminated_outcome() {
        let outcome: ExecutionOutcome<Count> = ExecutionOutcome {
            node_count: 3,
            sink: NodeId(0),
            termination_time: None,
            interactions_processed: 100,
            transmissions: Vec::new(),
            ignored_decisions: 0,
            sink_data: Some(Count(1)),
            final_ownership: vec![true, true, true],
        };
        assert!(!outcome.terminated());
        assert_eq!(outcome.duration(), None);
        assert_eq!(outcome.remaining_owners(), 3);
    }
}
