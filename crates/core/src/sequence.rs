//! Interaction sequences and interaction sources.
//!
//! A finite [`InteractionSequence`] is the concrete object most experiments
//! manipulate: the oblivious adversary fixes one before execution, the
//! randomized adversary can be materialised into one, and all knowledge
//! oracles (meetTime, futures, underlying graph) are derived from one.
//!
//! The [`InteractionSource`] trait is the streaming view used by the
//! execution engine: it produces the interaction of each time step, and is
//! allowed to observe which nodes still own data — this is exactly the
//! power of the *online adaptive adversary* of the paper. Oblivious and
//! randomized adversaries simply ignore that view.

use doda_graph::{AdjacencyGraph, NodeId};

use crate::fault::CrashPolicy;
use crate::interaction::{Interaction, Time, TimedInteraction};

/// Read-only view of the execution state offered to an [`InteractionSource`].
///
/// The online adaptive adversary "can use the past execution of the
/// algorithm to construct the next interaction"; concretely it can see
/// which nodes still own data (the full observable effect of the
/// algorithm's past decisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversaryView<'a> {
    /// `owns_data[v]` is `true` iff node `v` still owns data.
    pub owns_data: &'a [bool],
    /// The sink node.
    pub sink: NodeId,
}

impl AdversaryView<'_> {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.owns_data.len()
    }

    /// Number of nodes currently owning data.
    pub fn owner_count(&self) -> usize {
        self.owns_data.iter().filter(|&&b| b).count()
    }

    /// Returns `true` if node `v` still owns data.
    pub fn owns(&self, v: NodeId) -> bool {
        self.owns_data.get(v.index()).copied().unwrap_or(false)
    }
}

/// One step of a (possibly faulted) interaction stream.
///
/// Fault-free sources only ever produce [`StepEvent::Interaction`] (the
/// default [`InteractionSource::next_event`] guarantees it); the fault
/// layer ([`crate::fault::FaultedSource`]) interleaves the other
/// variants. The engine consumes events, so faults compose over any
/// source without the source knowing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// A normal pairwise interaction, presented to the algorithm.
    Interaction(Interaction),
    /// A scheduled interaction that failed (message loss, or a dead
    /// participant): the algorithm never observes it.
    Lost(Interaction),
    /// A node crashes permanently; its datum's fate follows the policy.
    Crash {
        /// The crashed node.
        node: NodeId,
        /// Whether the datum is destroyed or recovered out-of-band.
        policy: CrashPolicy,
    },
    /// A live node departs (churn); its datum leaves the system.
    Departure(NodeId),
    /// A previously departed node re-arrives with a fresh datum.
    Arrival(NodeId),
}

/// A producer of interactions, one per time step.
///
/// Implementors include finite sequences (oblivious adversary), the
/// uniform randomized adversary, and the adaptive adversarial
/// constructions of Theorems 1 and 3.
pub trait InteractionSource {
    /// Number of nodes of the dynamic graph.
    fn node_count(&self) -> usize;

    /// Produces the interaction occurring at time `t`, or `None` if the
    /// source is exhausted (finite sequences only).
    ///
    /// The engine calls this exactly once per time step, with strictly
    /// increasing `t` starting from 0.
    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction>;

    /// Produces the event occurring at time `t` — the engine's actual
    /// entry point, called exactly once per time step with strictly
    /// increasing `t` starting from 0.
    ///
    /// The default implementation wraps [`next_interaction`] in
    /// [`StepEvent::Interaction`], so every plain source is a fault-free
    /// event stream; the fault layer ([`crate::fault::FaultedSource`])
    /// overrides this to interleave crash / churn / loss events.
    ///
    /// [`next_interaction`]: InteractionSource::next_interaction
    fn next_event(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<StepEvent> {
        self.next_interaction(t, view).map(StepEvent::Interaction)
    }

    /// `true` iff the source never reads the [`AdversaryView`] — its stream
    /// is a function of its own state and `t` alone (the paper's
    /// *oblivious* adversaries, and every synthetic workload generator).
    ///
    /// Oblivious sources may be pulled in batches
    /// ([`next_interaction_batch`]) by the lane engine's fast path, which
    /// samples the view once per batch. Adaptive adversaries and the fault
    /// layer must keep the default `false`.
    ///
    /// [`next_interaction_batch`]: InteractionSource::next_interaction_batch
    fn is_oblivious(&self) -> bool {
        false
    }

    /// Pulls up to `max` consecutive interactions starting at time `t0`,
    /// appending them to `out`; fewer than `max` means the source is
    /// exhausted. Equivalent to `max` successive [`next_event`] calls under
    /// one view snapshot, so it is only meaningful for
    /// [`is_oblivious`] sources, where the view cannot influence the
    /// stream.
    ///
    /// The default implementation loops over [`next_event`] — which, called
    /// through a trait object, runs with the concrete `Self` and therefore
    /// devirtualises the per-step pulls: batch consumers (the lane engine)
    /// pay one indirect call per batch instead of one per interaction.
    ///
    /// # Panics
    ///
    /// Panics if the source emits a fault event: batched pulls are
    /// fault-free by contract ([`crate::fault::FaultedSource`] keeps
    /// [`is_oblivious`] `false`, so batch consumers never reach it).
    ///
    /// [`next_event`]: InteractionSource::next_event
    /// [`is_oblivious`]: InteractionSource::is_oblivious
    fn next_interaction_batch(
        &mut self,
        t0: Time,
        view: &AdversaryView<'_>,
        out: &mut Vec<Interaction>,
        max: usize,
    ) {
        for offset in 0..max as u64 {
            match self.next_event(t0 + offset, view) {
                Some(StepEvent::Interaction(interaction)) => out.push(interaction),
                Some(event) => panic!(
                    "batched pulls are fault-free by contract, but the source \
                     emitted {event:?} at t = {}",
                    t0 + offset
                ),
                None => break,
            }
        }
    }
}

impl<S: InteractionSource + ?Sized> InteractionSource for &mut S {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        (**self).next_interaction(t, view)
    }

    // Must delegate explicitly: the default method would silently discard
    // the fault events of a wrapped `&mut FaultedSource`.
    fn next_event(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<StepEvent> {
        (**self).next_event(t, view)
    }

    fn is_oblivious(&self) -> bool {
        (**self).is_oblivious()
    }

    fn next_interaction_batch(
        &mut self,
        t0: Time,
        view: &AdversaryView<'_>,
        out: &mut Vec<Interaction>,
        max: usize,
    ) {
        (**self).next_interaction_batch(t0, view, out, max)
    }
}

impl<S: InteractionSource + ?Sized> InteractionSource for Box<S> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        (**self).next_interaction(t, view)
    }

    fn next_event(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<StepEvent> {
        (**self).next_event(t, view)
    }

    fn is_oblivious(&self) -> bool {
        (**self).is_oblivious()
    }

    fn next_interaction_batch(
        &mut self,
        t0: Time,
        view: &AdversaryView<'_>,
        out: &mut Vec<Interaction>,
        max: usize,
    ) {
        (**self).next_interaction_batch(t0, view, out, max)
    }
}

/// A finite sequence of interactions; the interaction at index `t` occurs
/// at time `t`.
///
/// # Example
///
/// ```
/// use doda_core::{Interaction, InteractionSequence};
/// use doda_graph::NodeId;
///
/// let seq = InteractionSequence::from_pairs(3, vec![(0, 1), (1, 2), (0, 2)]);
/// assert_eq!(seq.len(), 3);
/// assert_eq!(seq.get(1), Some(Interaction::new(NodeId(1), NodeId(2))));
/// assert!(seq.underlying_graph().is_complete());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionSequence {
    n: usize,
    interactions: Vec<Interaction>,
}

impl InteractionSequence {
    /// Creates an empty sequence over `n` nodes.
    pub fn new(n: usize) -> Self {
        InteractionSequence {
            n,
            interactions: Vec::new(),
        }
    }

    /// Builds a sequence over `n` nodes from raw index pairs.
    ///
    /// # Panics
    ///
    /// Panics if a pair has equal elements or an element `>= n`.
    pub fn from_pairs<I>(n: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut seq = InteractionSequence::new(n);
        for (a, b) in pairs {
            seq.push(Interaction::new(NodeId(a), NodeId(b)));
        }
        seq
    }

    /// Builds a sequence over `n` nodes from interactions.
    ///
    /// # Panics
    ///
    /// Panics if an interaction involves a node `>= n`.
    pub fn from_interactions<I>(n: usize, interactions: I) -> Self
    where
        I: IntoIterator<Item = Interaction>,
    {
        let mut seq = InteractionSequence::new(n);
        for i in interactions {
            seq.push(i);
        }
        seq
    }

    /// Materialises the first `len` interactions of `source` into a fresh
    /// sequence (shorter if the source is exhausted first).
    ///
    /// This is the one sanctioned bridge from the streaming world to the
    /// materialised one: knowledge oracles ([`crate::knowledge`]) need a
    /// concrete sequence, and the oblivious/randomized adversaries build
    /// theirs through this helper. The source is driven with a
    /// *materialisation view* in which every node owns data and the sink is
    /// node 0 — oblivious sources ignore the view entirely, and
    /// materialising an adaptive source captures the stream it would play
    /// against an algorithm that never transmits.
    ///
    /// # Example
    ///
    /// ```
    /// use doda_core::InteractionSequence;
    ///
    /// let committed = InteractionSequence::from_pairs(3, vec![(0, 1), (1, 2)]);
    /// let replayed = InteractionSequence::materialize(&mut committed.stream(true), 5);
    /// assert_eq!(replayed.len(), 5);
    /// assert_eq!(replayed.get(4), committed.get(0));
    /// ```
    pub fn materialize<S>(source: &mut S, len: usize) -> Self
    where
        S: InteractionSource + ?Sized,
    {
        let mut seq = InteractionSequence::new(source.node_count());
        seq.fill_from(source, len);
        seq
    }

    /// In-place counterpart of [`materialize`]: clears this sequence,
    /// re-targets it to the source's node count and fills it with up to
    /// `len` interactions, reusing the existing allocation. Sweep workers
    /// use this to refill one scratch buffer across many trials.
    ///
    /// [`materialize`]: InteractionSequence::materialize
    pub fn fill_from<S>(&mut self, source: &mut S, len: usize)
    where
        S: InteractionSource + ?Sized,
    {
        let n = source.node_count();
        self.reset(n);
        self.reserve(len);
        let owns = vec![true; n];
        let view = AdversaryView {
            owns_data: &owns,
            sink: NodeId(0),
        };
        for t in 0..len {
            match source.next_interaction(t as Time, &view) {
                Some(i) => self.push(i),
                None => break,
            }
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of interactions (time steps).
    pub fn len(&self) -> usize {
        self.interactions.len()
    }

    /// Returns `true` if the sequence has no interactions.
    pub fn is_empty(&self) -> bool {
        self.interactions.is_empty()
    }

    /// Appends an interaction at the end of the sequence.
    ///
    /// # Panics
    ///
    /// Panics if the interaction involves a node `>= node_count()`.
    pub fn push(&mut self, interaction: Interaction) {
        assert!(
            interaction.max().index() < self.n,
            "interaction {interaction} out of range for {} nodes",
            self.n
        );
        self.interactions.push(interaction);
    }

    /// The interaction at time `t`, if within the sequence.
    pub fn get(&self, t: Time) -> Option<Interaction> {
        usize::try_from(t)
            .ok()
            .and_then(|idx| self.interactions.get(idx))
            .copied()
    }

    /// Iterates over `(time, interaction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = TimedInteraction> + '_ {
        self.interactions
            .iter()
            .enumerate()
            .map(|(t, &i)| TimedInteraction::new(t as Time, i))
    }

    /// The underlying graph `G̅`: one edge per pair that interacts at least once.
    pub fn underlying_graph(&self) -> AdjacencyGraph {
        doda_graph::underlying_graph(
            self.n,
            self.interactions.iter().map(|i| (i.pair().0, i.pair().1)),
        )
    }

    /// All times at which node `u` interacts with node `v`, in increasing order.
    pub fn meeting_times(&self, u: NodeId, v: NodeId) -> Vec<Time> {
        if u == v {
            return Vec::new();
        }
        let target = Interaction::new(u, v);
        self.iter()
            .filter(|ti| ti.interaction == target)
            .map(|ti| ti.time)
            .collect()
    }

    /// All times at which node `u` is involved in an interaction, with the
    /// corresponding partner.
    pub fn future_of(&self, u: NodeId) -> Vec<(Time, NodeId)> {
        self.iter()
            .filter_map(|ti| ti.interaction.partner_of(u).map(|p| (ti.time, p)))
            .collect()
    }

    /// Returns the sub-sequence covering times `[from, to)` (clamped),
    /// re-indexed to start at time 0.
    pub fn slice(&self, from: Time, to: Time) -> InteractionSequence {
        let from = usize::try_from(from)
            .unwrap_or(usize::MAX)
            .min(self.interactions.len());
        let to = usize::try_from(to)
            .unwrap_or(usize::MAX)
            .min(self.interactions.len());
        let items = if from < to {
            self.interactions[from..to].to_vec()
        } else {
            Vec::new()
        };
        InteractionSequence {
            n: self.n,
            interactions: items,
        }
    }

    /// Concatenates another sequence (over the same node count) after this one.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn concat(&self, other: &InteractionSequence) -> InteractionSequence {
        assert_eq!(
            self.n, other.n,
            "cannot concatenate sequences over different node counts"
        );
        let mut interactions = self.interactions.clone();
        interactions.extend_from_slice(&other.interactions);
        InteractionSequence {
            n: self.n,
            interactions,
        }
    }

    /// Repeats this sequence `times` times back to back.
    pub fn repeat(&self, times: usize) -> InteractionSequence {
        let mut interactions = Vec::with_capacity(self.interactions.len() * times);
        for _ in 0..times {
            interactions.extend_from_slice(&self.interactions);
        }
        InteractionSequence {
            n: self.n,
            interactions,
        }
    }

    /// Reverses the order of the interactions (used by the convergecast /
    /// broadcast duality of Theorem 8).
    pub fn reversed(&self) -> InteractionSequence {
        let mut interactions = self.interactions.clone();
        interactions.reverse();
        InteractionSequence {
            n: self.n,
            interactions,
        }
    }

    /// Clears the sequence and re-targets it to `n` nodes, retaining the
    /// interaction allocation. Workload generators use this to refill one
    /// scratch sequence across many trials instead of allocating a fresh
    /// buffer per trial.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.interactions.clear();
    }

    /// Reserves capacity for at least `additional` more interactions.
    pub fn reserve(&mut self, additional: usize) {
        self.interactions.reserve(additional);
    }

    /// A streaming source that replays this sequence and then, optionally,
    /// keeps cycling through it forever (`cycle = true`).
    ///
    /// This clones the sequence so the source is self-contained; hot paths
    /// that replay a sequence in place should use [`stream`] instead.
    ///
    /// [`stream`]: InteractionSequence::stream
    pub fn source(&self, cycle: bool) -> SequenceSource {
        SequenceSource {
            seq: self.clone(),
            cycle,
        }
    }

    /// A borrowing streaming source over this sequence — like [`source`]
    /// but without cloning the interactions, so replaying a materialised
    /// sequence costs nothing. Used by the sweep runner's hot path.
    ///
    /// [`source`]: InteractionSequence::source
    pub fn stream(&self, cycle: bool) -> SequenceStream<'_> {
        SequenceStream { seq: self, cycle }
    }
}

impl Extend<Interaction> for InteractionSequence {
    fn extend<T: IntoIterator<Item = Interaction>>(&mut self, iter: T) {
        for i in iter {
            self.push(i);
        }
    }
}

/// Streaming source backed by a finite [`InteractionSequence`], optionally
/// cycling forever (the "repeat infinitely often" constructions of
/// Theorems 1–4 are cyclic suffixes).
#[derive(Debug, Clone)]
pub struct SequenceSource {
    seq: InteractionSequence,
    cycle: bool,
}

impl InteractionSource for SequenceSource {
    fn node_count(&self) -> usize {
        self.seq.node_count()
    }

    fn next_interaction(&mut self, t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        if self.seq.is_empty() {
            return None;
        }
        if self.cycle {
            let idx = (t as usize) % self.seq.len();
            self.seq.get(idx as Time)
        } else {
            self.seq.get(t)
        }
    }

    fn is_oblivious(&self) -> bool {
        true
    }
}

/// Borrowing counterpart of [`SequenceSource`]: replays an
/// [`InteractionSequence`] without cloning it. Created by
/// [`InteractionSequence::stream`].
#[derive(Debug, Clone)]
pub struct SequenceStream<'a> {
    seq: &'a InteractionSequence,
    cycle: bool,
}

impl InteractionSource for SequenceStream<'_> {
    fn node_count(&self) -> usize {
        self.seq.node_count()
    }

    fn next_interaction(&mut self, t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        if self.seq.is_empty() {
            return None;
        }
        if self.cycle {
            let idx = (t as usize) % self.seq.len();
            self.seq.get(idx as Time)
        } else {
            self.seq.get(t)
        }
    }

    fn is_oblivious(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq123() -> InteractionSequence {
        InteractionSequence::from_pairs(4, vec![(0, 1), (1, 2), (2, 3), (0, 1)])
    }

    #[test]
    fn construction_and_indexing() {
        let seq = seq123();
        assert_eq!(seq.node_count(), 4);
        assert_eq!(seq.len(), 4);
        assert!(!seq.is_empty());
        assert_eq!(seq.get(2), Some(Interaction::new(NodeId(2), NodeId(3))));
        assert_eq!(seq.get(99), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        let mut seq = InteractionSequence::new(2);
        seq.push(Interaction::new(NodeId(0), NodeId(2)));
    }

    #[test]
    fn underlying_graph_dedup() {
        let g = seq123().underlying_graph();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn meeting_times_and_futures() {
        let seq = seq123();
        assert_eq!(seq.meeting_times(NodeId(0), NodeId(1)), vec![0, 3]);
        assert_eq!(seq.meeting_times(NodeId(1), NodeId(0)), vec![0, 3]);
        assert_eq!(seq.meeting_times(NodeId(0), NodeId(3)), Vec::<Time>::new());
        assert_eq!(seq.meeting_times(NodeId(0), NodeId(0)), Vec::<Time>::new());
        assert_eq!(
            seq.future_of(NodeId(1)),
            vec![(0, NodeId(0)), (1, NodeId(2)), (3, NodeId(0))]
        );
    }

    #[test]
    fn slicing_and_concat() {
        let seq = seq123();
        let mid = seq.slice(1, 3);
        assert_eq!(mid.len(), 2);
        assert_eq!(mid.get(0), Some(Interaction::new(NodeId(1), NodeId(2))));
        assert_eq!(seq.slice(3, 1).len(), 0);
        assert_eq!(seq.slice(2, 100).len(), 2);

        let joined = mid.concat(&seq.slice(0, 1));
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.get(2), Some(Interaction::new(NodeId(0), NodeId(1))));
    }

    #[test]
    fn repeat_and_reverse() {
        let seq = InteractionSequence::from_pairs(3, vec![(0, 1), (1, 2)]);
        let rep = seq.repeat(3);
        assert_eq!(rep.len(), 6);
        assert_eq!(rep.get(4), Some(Interaction::new(NodeId(0), NodeId(1))));
        let rev = seq.reversed();
        assert_eq!(rev.get(0), Some(Interaction::new(NodeId(1), NodeId(2))));
    }

    #[test]
    fn sequence_source_finite_and_cyclic() {
        let seq = InteractionSequence::from_pairs(3, vec![(0, 1), (1, 2)]);
        let owns = vec![true, true, true];
        let view = AdversaryView {
            owns_data: &owns,
            sink: NodeId(0),
        };
        let mut finite = seq.source(false);
        assert_eq!(finite.node_count(), 3);
        assert!(finite.next_interaction(0, &view).is_some());
        assert!(finite.next_interaction(1, &view).is_some());
        assert!(finite.next_interaction(2, &view).is_none());

        let mut cyclic = seq.source(true);
        assert_eq!(
            cyclic.next_interaction(5, &view),
            Some(Interaction::new(NodeId(1), NodeId(2)))
        );
    }

    #[test]
    fn stream_matches_cloning_source() {
        let seq = InteractionSequence::from_pairs(3, vec![(0, 1), (1, 2)]);
        let owns = vec![true, true, true];
        let view = AdversaryView {
            owns_data: &owns,
            sink: NodeId(0),
        };
        for cycle in [false, true] {
            let mut cloning = seq.source(cycle);
            let mut borrowing = seq.stream(cycle);
            assert_eq!(borrowing.node_count(), cloning.node_count());
            for t in 0..6 {
                assert_eq!(
                    borrowing.next_interaction(t, &view),
                    cloning.next_interaction(t, &view),
                    "divergence at t={t}, cycle={cycle}"
                );
            }
        }
    }

    #[test]
    fn reset_retargets_and_clears() {
        let mut seq = InteractionSequence::from_pairs(4, vec![(0, 1), (2, 3)]);
        seq.reserve(16);
        seq.reset(2);
        assert_eq!(seq.node_count(), 2);
        assert!(seq.is_empty());
        seq.push(Interaction::new(NodeId(0), NodeId(1)));
        assert_eq!(seq.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reset_enforces_the_new_node_count() {
        let mut seq = InteractionSequence::from_pairs(4, vec![(2, 3)]);
        seq.reset(2);
        seq.push(Interaction::new(NodeId(2), NodeId(3)));
    }

    #[test]
    fn empty_cyclic_source_is_exhausted() {
        let seq = InteractionSequence::new(3);
        let owns = vec![true; 3];
        let view = AdversaryView {
            owns_data: &owns,
            sink: NodeId(0),
        };
        assert!(seq.source(true).next_interaction(0, &view).is_none());
    }

    #[test]
    fn adversary_view_helpers() {
        let owns = vec![true, false, true];
        let view = AdversaryView {
            owns_data: &owns,
            sink: NodeId(2),
        };
        assert_eq!(view.node_count(), 3);
        assert_eq!(view.owner_count(), 2);
        assert!(view.owns(NodeId(0)));
        assert!(!view.owns(NodeId(1)));
        assert!(!view.owns(NodeId(9)));
    }

    #[test]
    fn extend_appends() {
        let mut seq = InteractionSequence::new(3);
        seq.extend([Interaction::new(NodeId(0), NodeId(1))]);
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn materialize_stops_at_exhaustion() {
        let seq = seq123();
        let materialized = InteractionSequence::materialize(&mut seq.stream(false), 100);
        assert_eq!(materialized, seq);
        let cycled = InteractionSequence::materialize(&mut seq.stream(true), 10);
        assert_eq!(cycled.len(), 10);
        assert_eq!(cycled.get(4), seq.get(0));
    }

    #[test]
    fn fill_from_reuses_the_buffer_and_retargets() {
        let small = InteractionSequence::from_pairs(2, vec![(0, 1)]);
        let big = seq123();
        let mut scratch = InteractionSequence::new(8);
        scratch.fill_from(&mut big.stream(false), 3);
        assert_eq!(scratch.node_count(), 4);
        assert_eq!(scratch.len(), 3);
        scratch.fill_from(&mut small.stream(true), 5);
        assert_eq!(scratch.node_count(), 2);
        assert_eq!(scratch.len(), 5);
    }
}
