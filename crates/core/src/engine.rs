//! The execution engine.
//!
//! The engine plays the role of the "system" in the paper's model: at each
//! time step it obtains the interaction from the adversary (an
//! [`InteractionSource`]), presents it to the algorithm together with the
//! control information both nodes would exchange, applies the algorithm's
//! decision under the model's rules, and stops when the sink is the only
//! node owning data (or when a step budget / the source is exhausted).
//!
//! Two entry points are provided:
//!
//! * [`run`] (and [`run_with_id_sets`]) build a full [`ExecutionOutcome`]
//!   per call — convenient for demos, tests and one-off executions;
//! * [`Engine`] is the allocation-free stepping core behind them: its
//!   scratch state is preallocated once and reused across executions via
//!   [`NetworkState::reset`], the hot loop performs no per-step heap
//!   allocation, and transmissions are only observed through a caller-
//!   provided [`TransmissionSink`]. Monte-Carlo sweeps (see `doda-sim`)
//!   keep one `Engine` per worker thread and run thousands of trials
//!   through it.

use doda_graph::NodeId;

use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};
use crate::byzantine::{ByzantineInjector, ByzantineStrategy, Receipt, ReceiptSink};
use crate::data::Aggregate;
use crate::error::{EngineError, FaultError};
use crate::fault::CrashPolicy;
use crate::interaction::{Interaction, Time};
use crate::outcome::{Completion, ExecutionOutcome, FaultTally, Transmission};
use crate::round::{Matching, RoundSource, MAX_CONSECUTIVE_EMPTY_ROUNDS};
use crate::sequence::{AdversaryView, InteractionSource, StepEvent};
use crate::state::NetworkState;

/// Configuration of a single execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of interactions to process before giving up.
    ///
    /// Adversarial constructions (Theorems 1–3) never let some algorithms
    /// terminate, so an execution horizon is required to make experiments
    /// finite.
    pub max_interactions: u64,
    /// Whether [`run`] records every transmission in the outcome. Useful
    /// for small demos and tests; parameter sweeps must disable it (or use
    /// [`Engine::run`] with [`DiscardTransmissions`], which ignores this
    /// flag entirely and is driven by the sink argument instead).
    pub record_transmissions: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_interactions: 10_000_000,
            record_transmissions: true,
        }
    }
}

impl EngineConfig {
    /// Configuration with an explicit interaction budget.
    pub fn with_max_interactions(max_interactions: u64) -> Self {
        EngineConfig {
            max_interactions,
            ..EngineConfig::default()
        }
    }

    /// Configuration for parameter sweeps: an explicit interaction budget
    /// and no transmission recording. This is the configuration every
    /// batch/sweep path should use — recording is only for small demos and
    /// tests that inspect individual transmissions.
    pub fn sweep(max_interactions: u64) -> Self {
        EngineConfig {
            max_interactions,
            record_transmissions: false,
        }
    }

    /// [`EngineConfig::sweep`] with the default interaction budget.
    pub fn sweep_default() -> Self {
        EngineConfig::sweep(EngineConfig::default().max_interactions)
    }
}

/// Observer of applied transmissions, called once per transmission in time
/// order by [`Engine::run`].
///
/// The engine itself never buffers transmissions: callers that want them
/// pass a `Vec<Transmission>` (or any custom observer), callers that do not
/// pass [`DiscardTransmissions`] and pay nothing.
pub trait TransmissionSink {
    /// Records one applied transmission.
    fn record(&mut self, transmission: Transmission);
}

/// A [`TransmissionSink`] that drops every transmission — the zero-cost
/// choice for parameter sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiscardTransmissions;

impl TransmissionSink for DiscardTransmissions {
    #[inline]
    fn record(&mut self, _transmission: Transmission) {}
}

impl TransmissionSink for Vec<Transmission> {
    #[inline]
    fn record(&mut self, transmission: Transmission) {
        self.push(transmission);
    }
}

/// The counters produced by one [`Engine::run`] execution.
///
/// This is the allocation-free subset of [`ExecutionOutcome`]; the final
/// aggregate and ownership details remain inspectable on
/// [`Engine::state`] until the next run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of nodes in the dynamic graph.
    pub node_count: usize,
    /// The sink node.
    pub sink: NodeId,
    /// `Some(t)` if the aggregation completed at interaction index `t`
    /// (`Some(0)` for the degenerate single-node graph).
    pub termination_time: Option<Time>,
    /// Number of interactions presented to the algorithm.
    pub interactions_processed: u64,
    /// Number of transmissions applied. For a terminating execution over
    /// `n` nodes this is always `n − 1`.
    pub transmissions: u64,
    /// Number of `Transmit` decisions ignored by the engine (the paper's
    /// "output is ignored" rule).
    pub ignored_decisions: u64,
    /// Number of nodes still owning data at the end.
    pub remaining_owners: usize,
    /// How the execution ended: full aggregation, survivors-only
    /// aggregation, or starvation (see [`Completion`]).
    pub completion: Completion,
    /// Counters of the fault events applied (all zero for fault-free
    /// sources).
    pub faults: FaultTally,
}

impl RunStats {
    /// Returns `true` if the aggregation completed (sink is the sole owner).
    pub fn terminated(&self) -> bool {
        self.termination_time.is_some()
    }

    /// Number of data introduced over the whole execution: the initial
    /// `n` plus one fresh datum per churn arrival.
    pub fn data_introduced(&self) -> u64 {
        self.node_count as u64 + self.faults.arrivals
    }
}

/// The loop-carried state of a resumable execution: every counter
/// [`Engine::run`] used to keep on its stack, packaged so a run can pause
/// between [`Engine::step_for`] slices (and be checkpointed via
/// [`Engine::checkpoint`]).
///
/// A `RunProgress` is only meaningful together with the engine that
/// produced it (the engine scratch holds the network state); it is `Copy`
/// so schedulers can store it inline per session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    node_count: usize,
    sink: NodeId,
    max_interactions: u64,
    processed: u64,
    applied: u64,
    ignored: u64,
    faults: FaultTally,
    termination_time: Option<Time>,
}

impl RunProgress {
    /// Returns `true` if the aggregation completed (sink is the sole
    /// owner).
    pub fn terminated(&self) -> bool {
        self.termination_time.is_some()
    }

    /// `Some(t)` if the aggregation completed at interaction index `t`.
    pub fn termination_time(&self) -> Option<Time> {
        self.termination_time
    }

    /// Number of interactions processed so far.
    pub fn interactions_processed(&self) -> u64 {
        self.processed
    }

    /// Number of transmissions applied so far.
    pub fn transmissions(&self) -> u64 {
        self.applied
    }

    /// Number of `Transmit` decisions ignored so far.
    pub fn ignored_decisions(&self) -> u64 {
        self.ignored
    }

    /// The fault events applied so far.
    pub fn faults(&self) -> FaultTally {
        self.faults
    }

    /// The run's interaction horizon ([`EngineConfig::max_interactions`]).
    pub fn max_interactions(&self) -> u64 {
        self.max_interactions
    }

    /// The sink node of this run.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// The node count of this run.
    pub fn node_count(&self) -> usize {
        self.node_count
    }
}

/// Why one [`Engine::step_for`] slice stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The aggregation completed (or had already completed): the sink is
    /// the sole owner. Call [`Engine::finish_run`] to package the stats.
    Completed,
    /// The source returned `None`. A streamed scenario source is
    /// exhausted for good; an incrementally fed source (a session inbox)
    /// may simply be empty — the run can resume when more events arrive.
    SourceExhausted,
    /// The run's interaction horizon was reached; the execution is over
    /// and ended starved.
    HorizonReached,
    /// The per-call budget was spent with the run still live; call
    /// [`Engine::step_for`] again to continue.
    BudgetSpent,
}

impl StepOutcome {
    /// `true` when the run can take another slice from the same source
    /// (budget spent — not completed, exhausted, or out of horizon).
    pub fn can_continue(&self) -> bool {
        matches!(self, StepOutcome::BudgetSpent)
    }
}

/// A point-in-time snapshot of one resumable run: the engine-side state
/// (network, ownership, liveness) plus the [`RunProgress`] counters.
///
/// Restoring a checkpoint into any [`Engine`] (via [`Engine::restore`])
/// and continuing with the same algorithm and a source positioned at the
/// checkpointed time reproduces the uninterrupted run byte for byte —
/// pinned by `tests/checkpoint_resume.rs`. The snapshot does **not**
/// capture the algorithm or the source; the caller owns their continuity.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint<A> {
    state: NetworkState<A>,
    ownership: Vec<bool>,
    owners: usize,
    live: Vec<bool>,
    progress: RunProgress,
}

impl<A> EngineCheckpoint<A> {
    /// The run counters as of the snapshot.
    pub fn progress(&self) -> RunProgress {
        self.progress
    }

    /// The network state as of the snapshot.
    pub fn state(&self) -> &NetworkState<A> {
        &self.state
    }
}

/// The reusable, zero-allocation stepping core.
///
/// An `Engine` owns the scratch an execution needs — the
/// [`NetworkState`] and the ownership bitmap handed to adaptive
/// adversaries — and reuses it across calls to [`Engine::run`], so a sweep
/// of thousands of trials allocates the scratch once. The hot loop
/// performs no heap allocation: ownership is maintained incrementally
/// (instead of re-deriving a fresh bitmap every step) and completion is
/// detected from an owner counter (instead of an `O(n)` scan per
/// transmission).
#[derive(Debug)]
pub struct Engine<A> {
    state: NetworkState<A>,
    ownership: Vec<bool>,
    owners: usize,
    /// `live[v]` is `false` once `v` crashed or departed; dead nodes show
    /// as non-owners in the adversary view and must never appear in a
    /// presented interaction.
    live: Vec<bool>,
    /// Scratch matching handed to [`RoundSource::next_round`] by
    /// [`Engine::run_rounds`]; preallocated alongside the rest of the
    /// engine scratch so round sweeps allocate nothing per round.
    round_scratch: Matching,
}

/// The counters produced by one [`Engine::run_rounds`] execution: the
/// shared pairwise counters plus the round clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundRunStats {
    /// The interaction-level counters, identical in meaning to the
    /// pairwise path's ([`RunStats::interactions_processed`] counts the
    /// individual interactions of every applied matching).
    pub run: RunStats,
    /// Number of rounds pulled from the source, including empty ones.
    pub rounds_processed: u64,
}

impl<A: Aggregate> Default for Engine<A> {
    fn default() -> Self {
        Engine::new()
    }
}

impl<A: Aggregate> Engine<A> {
    /// Creates an engine with empty scratch; the first [`Engine::run`]
    /// sizes it to the source's node count.
    pub fn new() -> Self {
        Engine {
            state: NetworkState::empty(),
            ownership: Vec::new(),
            owners: 0,
            live: Vec::new(),
            round_scratch: Matching::default(),
        }
    }

    /// The network state left behind by the most recent run (empty before
    /// the first run). Use it to read the sink's final aggregate or the
    /// per-node ownership after [`Engine::run`] returns.
    pub fn state(&self) -> &NetworkState<A> {
        &self.state
    }

    /// Runs `algorithm` over the interactions produced by `source`,
    /// reusing this engine's scratch, reporting applied transmissions to
    /// `transmissions` and returning the execution counters.
    ///
    /// Unlike [`run`], the `config.record_transmissions` flag is ignored:
    /// whether transmissions are observed is decided entirely by the sink
    /// argument ([`DiscardTransmissions`] for none, `&mut Vec<Transmission>`
    /// to collect them).
    ///
    /// The source is driven through [`InteractionSource::next_event`], so
    /// fault-injecting sources ([`crate::fault::FaultedSource`]) compose
    /// transparently: crash / churn / loss events update the ownership
    /// bitmap and the accounting bins, and [`RunStats::completion`]
    /// distinguishes full aggregation from survivors-only aggregation
    /// and starvation.
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] if the algorithm produces a structurally
    /// invalid decision (a sender/receiver outside the current
    /// interaction), or if the source emits a fault event inconsistent
    /// with the execution's fault state (a typed
    /// [`crate::error::FaultError`]: sink targeted, double kill, arrival
    /// of a live node, or an interaction involving a dead node).
    /// Decisions whose endpoints do not both own data are *ignored*
    /// (counted in [`RunStats::ignored_decisions`]), per the paper's
    /// convention.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range for `source.node_count()` or the
    /// node count is zero (propagated from [`NetworkState::reset`]).
    pub fn run<F, S, D, T>(
        &mut self,
        algorithm: &mut D,
        source: &mut S,
        sink: NodeId,
        mut initial_data: F,
        config: EngineConfig,
        transmissions: &mut T,
    ) -> Result<RunStats, EngineError>
    where
        F: FnMut(NodeId) -> A,
        S: InteractionSource + ?Sized,
        D: DodaAlgorithm + ?Sized,
        T: TransmissionSink + ?Sized,
    {
        let n = source.node_count();
        let mut run = self.begin_run(n, sink, &mut initial_data, config);
        while self
            .step_for(
                &mut run,
                algorithm,
                source,
                &mut initial_data,
                u64::MAX,
                transmissions,
            )?
            .can_continue()
        {}
        Ok(self.finish_run(&run))
    }

    /// Runs `algorithm` like [`Engine::run`], but through the **audited
    /// data plane**: nodes the `injector` marks as liars corrupt their
    /// one transmission per their [`ByzantineStrategy`], and every
    /// applied transmission — honest or not — produces a
    /// [`Receipt`] into `receipts` (a [`crate::byzantine::Tally`] to
    /// classify the run, a `Vec<Receipt>` for the full transfer log).
    ///
    /// The schedule is untouched — the source is pulled exactly as the
    /// honest path pulls it, so fault plans and adaptive adversaries
    /// compose unchanged — and an injector with zero liars reproduces
    /// [`Engine::run`] byte for byte (pinned by
    /// `tests/byzantine_conformance.rs`). The per-transfer unit ledger
    /// (how many original data each sender carried and delivered) is
    /// kept internally and surfaces only through the receipts.
    ///
    /// # Errors
    ///
    /// Exactly as [`Engine::run`]: corruption changes payloads, never
    /// the model rules, so the error surface is identical.
    ///
    /// # Panics
    ///
    /// As [`Engine::run`]; additionally the injector must have been
    /// built for the source's node count.
    #[allow(clippy::too_many_arguments)]
    pub fn run_audited<F, S, D, T, R>(
        &mut self,
        algorithm: &mut D,
        source: &mut S,
        sink: NodeId,
        mut initial_data: F,
        config: EngineConfig,
        transmissions: &mut T,
        injector: &mut ByzantineInjector,
        receipts: &mut R,
    ) -> Result<RunStats, EngineError>
    where
        F: FnMut(NodeId) -> A,
        S: InteractionSource + ?Sized,
        D: DodaAlgorithm + ?Sized,
        T: TransmissionSink + ?Sized,
        R: ReceiptSink + ?Sized,
    {
        let n = source.node_count();
        injector.reset();
        // The unit ledger: original data units each node currently
        // carries. Every node starts with its own single datum; honest
        // transfers move units, corrupting ones mint, double, or void
        // them — which is exactly what the receipts expose.
        let mut units = vec![1u64; n];
        let mut run = self.begin_run(n, sink, &mut initial_data, config);
        loop {
            if run.termination_time.is_some() || run.processed >= run.max_interactions {
                break;
            }
            let t = run.processed;
            let view = AdversaryView {
                owns_data: &self.ownership,
                sink,
            };
            let Some(event) = source.next_event(t, &view) else {
                break;
            };
            run.processed += 1;

            let interaction = match event {
                StepEvent::Interaction(interaction) => interaction,
                StepEvent::Lost(_) => {
                    run.faults.lost_interactions += 1;
                    continue;
                }
                StepEvent::Crash { node, policy } => {
                    run.faults.crashes += 1;
                    self.remove_node(node, sink, Some(policy), t, &mut run.faults)?;
                    units[node.index()] = 0;
                    if self.owners == 1 {
                        run.termination_time = Some(t);
                    }
                    continue;
                }
                StepEvent::Departure(node) => {
                    run.faults.departures += 1;
                    self.remove_node(node, sink, None, t, &mut run.faults)?;
                    units[node.index()] = 0;
                    if self.owners == 1 {
                        run.termination_time = Some(t);
                    }
                    continue;
                }
                StepEvent::Arrival(node) => {
                    run.faults.arrivals += 1;
                    self.admit_node(node, sink, &mut initial_data, t)?;
                    units[node.index()] = 1;
                    continue;
                }
            };

            if let Some(done) = self.apply_interaction_audited(
                algorithm,
                t,
                interaction,
                sink,
                transmissions,
                &mut run.applied,
                &mut run.ignored,
                injector,
                &mut initial_data,
                &mut units,
                receipts,
            )? {
                run.termination_time = Some(done);
            }
        }
        Ok(self.finish_run(&run))
    }

    /// Starts a resumable run: resets the engine scratch for `node_count`
    /// nodes and returns the [`RunProgress`] that [`Engine::step_for`]
    /// advances. Run-to-completion ([`Engine::run`]) is exactly a loop
    /// over [`Engine::step_for`] after this call.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range for `node_count` or the node count
    /// is zero (propagated from [`NetworkState::reset`]).
    pub fn begin_run<F>(
        &mut self,
        node_count: usize,
        sink: NodeId,
        mut initial_data: F,
        config: EngineConfig,
    ) -> RunProgress
    where
        F: FnMut(NodeId) -> A,
    {
        self.state.reset(node_count, sink, &mut initial_data);
        self.ownership.clear();
        self.ownership.resize(node_count, true);
        self.live.clear();
        self.live.resize(node_count, true);
        self.owners = node_count;
        RunProgress {
            node_count,
            sink,
            max_interactions: config.max_interactions,
            processed: 0,
            applied: 0,
            ignored: 0,
            faults: FaultTally::default(),
            termination_time: if self.owners == 1 { Some(0) } else { None },
        }
    }

    /// Advances a resumable run by at most `budget` events and reports why
    /// the slice stopped.
    ///
    /// The slice pulls events from `source` exactly as [`Engine::run`]
    /// does — same event handling, same completion detection, same error
    /// surface — so a run advanced in arbitrary slices is byte-identical
    /// to an uninterrupted one (pinned by `tests/checkpoint_resume.rs`).
    /// A [`StepOutcome::SourceExhausted`] slice is resumable: if the
    /// source later yields more events (an incrementally fed session
    /// inbox), calling `step_for` again continues the run where it
    /// paused.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`]: a structurally invalid decision or an
    /// inconsistent fault event is a typed [`EngineError`].
    pub fn step_for<F, S, D, T>(
        &mut self,
        run: &mut RunProgress,
        algorithm: &mut D,
        source: &mut S,
        mut initial_data: F,
        budget: u64,
        transmissions: &mut T,
    ) -> Result<StepOutcome, EngineError>
    where
        F: FnMut(NodeId) -> A,
        S: InteractionSource + ?Sized,
        D: DodaAlgorithm + ?Sized,
        T: TransmissionSink + ?Sized,
    {
        let sink = run.sink;
        let slice_end = run
            .processed
            .saturating_add(budget)
            .min(run.max_interactions);
        loop {
            if run.termination_time.is_some() {
                return Ok(StepOutcome::Completed);
            }
            if run.processed >= run.max_interactions {
                return Ok(StepOutcome::HorizonReached);
            }
            if run.processed >= slice_end {
                return Ok(StepOutcome::BudgetSpent);
            }
            let t = run.processed;
            let view = AdversaryView {
                owns_data: &self.ownership,
                sink,
            };
            let Some(event) = source.next_event(t, &view) else {
                return Ok(StepOutcome::SourceExhausted);
            };
            run.processed += 1;

            let interaction = match event {
                StepEvent::Interaction(interaction) => interaction,
                StepEvent::Lost(_) => {
                    run.faults.lost_interactions += 1;
                    continue;
                }
                StepEvent::Crash { node, policy } => {
                    run.faults.crashes += 1;
                    self.remove_node(node, sink, Some(policy), t, &mut run.faults)?;
                    if self.owners == 1 {
                        run.termination_time = Some(t);
                    }
                    continue;
                }
                StepEvent::Departure(node) => {
                    run.faults.departures += 1;
                    self.remove_node(node, sink, None, t, &mut run.faults)?;
                    if self.owners == 1 {
                        run.termination_time = Some(t);
                    }
                    continue;
                }
                StepEvent::Arrival(node) => {
                    run.faults.arrivals += 1;
                    self.admit_node(node, sink, &mut initial_data, t)?;
                    continue;
                }
            };

            if let Some(done) = self.apply_interaction(
                algorithm,
                t,
                interaction,
                sink,
                transmissions,
                &mut run.applied,
                &mut run.ignored,
            )? {
                run.termination_time = Some(done);
            }
        }
    }

    /// Packages a resumable run's counters into the same [`RunStats`] a
    /// run-to-completion call would have returned. Valid at any pause
    /// point; a run finished early simply reports `Starved`.
    pub fn finish_run(&self, run: &RunProgress) -> RunStats {
        let completion = match run.termination_time {
            Some(_) if run.faults.data_lost == 0 && run.faults.data_recovered == 0 => {
                Completion::Aggregated
            }
            Some(_) => Completion::AggregatedSurvivors,
            None => Completion::Starved,
        };
        RunStats {
            node_count: run.node_count,
            sink: run.sink,
            termination_time: run.termination_time,
            interactions_processed: run.processed,
            transmissions: run.applied,
            ignored_decisions: run.ignored,
            remaining_owners: self.owners,
            completion,
            faults: run.faults,
        }
    }

    /// Snapshots a paused resumable run: the engine-side state plus the
    /// run counters, cloneable and independent of this engine's lifetime.
    pub fn checkpoint(&self, run: &RunProgress) -> EngineCheckpoint<A> {
        EngineCheckpoint {
            state: self.state.clone(),
            ownership: self.ownership.clone(),
            owners: self.owners,
            live: self.live.clone(),
            progress: *run,
        }
    }

    /// Restores a checkpoint into this engine (reusing its scratch
    /// allocations) and returns the [`RunProgress`] to continue stepping
    /// from. Continuing with the same algorithm and a source positioned at
    /// the checkpointed time reproduces the uninterrupted run exactly.
    pub fn restore(&mut self, checkpoint: &EngineCheckpoint<A>) -> RunProgress {
        self.state.clone_from(&checkpoint.state);
        self.ownership.clone_from(&checkpoint.ownership);
        self.owners = checkpoint.owners;
        self.live.clone_from(&checkpoint.live);
        checkpoint.progress
    }

    /// Runs `algorithm` over the synchronous rounds produced by `rounds`,
    /// reusing this engine's scratch (including a preallocated scratch
    /// [`Matching`] — the per-round hot path allocates nothing).
    ///
    /// Each round, the source observes the ownership view *as of round
    /// start* and commits a whole matching; the engine then applies the
    /// round's interactions as a batch against the preallocated
    /// [`NetworkState`]. Because a matching's edges are vertex-disjoint,
    /// no interaction of a round can change the state another one reads —
    /// batch application *is* the synchronous semantics. Within the batch
    /// the interaction clock keeps ticking one step per interaction, so
    /// [`RunStats::interactions_processed`] and `config.max_interactions`
    /// mean exactly what they mean on the pairwise path; a budget that
    /// runs out mid-round cuts the round, and termination (the sink
    /// becoming sole owner) ends the round immediately.
    ///
    /// **Singleton anchor:** driving a [`crate::round::SingletonRounds`]
    /// wrapper through this entry point is byte-identical to driving the
    /// wrapped source through [`Engine::run`] — the property that anchors
    /// the round model to the paper's, pinned by
    /// `tests/round_equivalence.rs`.
    ///
    /// Empty rounds are legal (an evolving-graph window may carry no edge)
    /// but bounded: after [`MAX_CONSECUTIVE_EMPTY_ROUNDS`] consecutive
    /// empty rounds the source is treated as exhausted, the same rule
    /// [`crate::round::FlattenedRounds`] applies — which keeps this path
    /// and the flattened pairwise path equivalent on any round stream.
    ///
    /// Fault plans do not plug in here: wrap the *flattened* stream in a
    /// [`crate::fault::FaultedSource`] and use [`Engine::run`] (see the
    /// [`crate::round`] module docs).
    ///
    /// # Errors
    ///
    /// Returns an [`EngineError`] if the algorithm produces a structurally
    /// invalid decision, as on the pairwise path.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range for `rounds.node_count()` or the
    /// node count is zero (propagated from [`NetworkState::reset`]).
    pub fn run_rounds<F, R, D, T>(
        &mut self,
        algorithm: &mut D,
        rounds: &mut R,
        sink: NodeId,
        mut initial_data: F,
        config: EngineConfig,
        transmissions: &mut T,
    ) -> Result<RoundRunStats, EngineError>
    where
        F: FnMut(NodeId) -> A,
        R: RoundSource + ?Sized,
        D: DodaAlgorithm + ?Sized,
        T: TransmissionSink + ?Sized,
    {
        let n = rounds.node_count();
        self.state.reset(n, sink, &mut initial_data);
        self.ownership.clear();
        self.ownership.resize(n, true);
        self.live.clear();
        self.live.resize(n, true);
        self.owners = n;

        let mut applied = 0u64;
        let mut ignored = 0u64;
        let mut processed = 0u64;
        let mut rounds_processed = 0u64;
        let mut consecutive_empty = 0u64;
        let mut termination_time = if self.owners == 1 { Some(0) } else { None };

        while termination_time.is_none() && processed < config.max_interactions {
            // Split borrows: the view reads `self.ownership` while the
            // source fills the disjoint `self.round_scratch` field, so the
            // scratch is moved out for the duration of the round.
            let mut matching = std::mem::take(&mut self.round_scratch);
            matching.reset(n);
            let view = AdversaryView {
                owns_data: &self.ownership,
                sink,
            };
            let more = rounds.next_round(rounds_processed, &view, &mut matching);
            if !more {
                self.round_scratch = matching;
                break;
            }
            rounds_processed += 1;
            if matching.is_empty() {
                consecutive_empty += 1;
                self.round_scratch = matching;
                if consecutive_empty >= MAX_CONSECUTIVE_EMPTY_ROUNDS {
                    break;
                }
                continue;
            }
            consecutive_empty = 0;

            for &interaction in matching.as_slice() {
                if termination_time.is_some() || processed >= config.max_interactions {
                    break;
                }
                let t = processed;
                processed += 1;
                let step = self.apply_interaction(
                    algorithm,
                    t,
                    interaction,
                    sink,
                    transmissions,
                    &mut applied,
                    &mut ignored,
                );
                match step {
                    Ok(Some(done)) => termination_time = Some(done),
                    Ok(None) => {}
                    Err(e) => {
                        self.round_scratch = matching;
                        return Err(e);
                    }
                }
            }
            self.round_scratch = matching;
        }

        let completion = match termination_time {
            Some(_) => Completion::Aggregated,
            None => Completion::Starved,
        };
        Ok(RoundRunStats {
            run: RunStats {
                node_count: n,
                sink,
                termination_time,
                interactions_processed: processed,
                transmissions: applied,
                ignored_decisions: ignored,
                remaining_owners: self.owners,
                completion,
                faults: FaultTally::default(),
            },
            rounds_processed,
        })
    }

    /// Applies one presented interaction — the step shared verbatim by the
    /// pairwise path ([`Engine::run`]) and the round path
    /// ([`Engine::run_rounds`]), which is what makes the two byte-identical
    /// on singleton rounds: dead-endpoint check, algorithm decision,
    /// transmission bookkeeping. Returns `Some(t)` when the step completed
    /// the aggregation.
    #[allow(clippy::too_many_arguments)]
    fn apply_interaction<D, T>(
        &mut self,
        algorithm: &mut D,
        t: Time,
        interaction: Interaction,
        sink: NodeId,
        transmissions: &mut T,
        applied: &mut u64,
        ignored: &mut u64,
    ) -> Result<Option<Time>, EngineError>
    where
        D: DodaAlgorithm + ?Sized,
        T: TransmissionSink + ?Sized,
    {
        for endpoint in [interaction.min(), interaction.max()] {
            if !self.live.get(endpoint.index()).copied().unwrap_or(false) {
                return Err(EngineError::InvalidFault {
                    time: t,
                    cause: FaultError::DeadParticipant {
                        interaction,
                        node: endpoint,
                    },
                });
            }
        }

        let ctx = InteractionContext {
            time: t,
            interaction,
            min_owns_data: self.owns(interaction.min()),
            max_owns_data: self.owns(interaction.max()),
            sink,
        };
        match algorithm.decide(&ctx) {
            Decision::Idle => {}
            Decision::Transmit { sender, receiver } => {
                if !interaction.involves(sender)
                    || !interaction.involves(receiver)
                    || sender == receiver
                {
                    return Err(EngineError::DecisionOutsideInteraction {
                        time: t,
                        interaction,
                        sender,
                        receiver,
                    });
                }
                if !ctx.both_own_data() || sender == sink {
                    // "The output is ignored if the interacting nodes do
                    // not both have data." A decision asking the sink to
                    // transmit is likewise ignored rather than fatal: it
                    // can only come from an algorithm treating the sink
                    // as a regular node, and the model simply forbids
                    // the transfer.
                    *ignored += 1;
                } else {
                    self.state
                        .transmit(sender, receiver)
                        .map_err(|cause| EngineError::InvalidTransmission { time: t, cause })?;
                    self.ownership[sender.index()] = false;
                    self.owners -= 1;
                    *applied += 1;
                    transmissions.record(Transmission {
                        time: t,
                        sender,
                        receiver,
                    });
                    algorithm.on_transmission(t, sender, receiver);
                    // The sink can never transmit and never dies, so it
                    // always owns data: a single remaining owner must be
                    // the sink.
                    if self.owners == 1 {
                        return Ok(Some(t));
                    }
                }
            }
        }
        Ok(None)
    }

    /// The audited variant of [`Engine::apply_interaction`]: identical
    /// decision handling and model rules, but the transfer itself routes
    /// through the sender's [`ByzantineStrategy`] (if it is a liar),
    /// maintains the unit ledger, and emits one [`Receipt`] per applied
    /// transmission.
    #[allow(clippy::too_many_arguments)]
    fn apply_interaction_audited<D, T, R, F>(
        &mut self,
        algorithm: &mut D,
        t: Time,
        interaction: Interaction,
        sink: NodeId,
        transmissions: &mut T,
        applied: &mut u64,
        ignored: &mut u64,
        injector: &mut ByzantineInjector,
        initial_data: &mut F,
        units: &mut [u64],
        receipts: &mut R,
    ) -> Result<Option<Time>, EngineError>
    where
        D: DodaAlgorithm + ?Sized,
        T: TransmissionSink + ?Sized,
        R: ReceiptSink + ?Sized,
        F: FnMut(NodeId) -> A,
    {
        for endpoint in [interaction.min(), interaction.max()] {
            if !self.live.get(endpoint.index()).copied().unwrap_or(false) {
                return Err(EngineError::InvalidFault {
                    time: t,
                    cause: FaultError::DeadParticipant {
                        interaction,
                        node: endpoint,
                    },
                });
            }
        }

        let ctx = InteractionContext {
            time: t,
            interaction,
            min_owns_data: self.owns(interaction.min()),
            max_owns_data: self.owns(interaction.max()),
            sink,
        };
        match algorithm.decide(&ctx) {
            Decision::Idle => {}
            Decision::Transmit { sender, receiver } => {
                if !interaction.involves(sender)
                    || !interaction.involves(receiver)
                    || sender == receiver
                {
                    return Err(EngineError::DecisionOutsideInteraction {
                        time: t,
                        interaction,
                        sender,
                        receiver,
                    });
                }
                if !ctx.both_own_data() || sender == sink {
                    // The paper's "output is ignored" rule, exactly as
                    // on the honest path.
                    *ignored += 1;
                } else {
                    let carried = units[sender.index()];
                    let corruption = if injector.is_liar(sender) {
                        Some(injector.strategy())
                    } else {
                        None
                    };
                    let invalid = |cause| EngineError::InvalidTransmission { time: t, cause };
                    let delivered = match corruption {
                        None => {
                            self.state.transmit(sender, receiver).map_err(invalid)?;
                            units[receiver.index()] += carried;
                            carried
                        }
                        Some(ByzantineStrategy::Forge) => {
                            let origin = injector.forged_origin(self.state.node_count());
                            self.state
                                .transmit_forged(sender, receiver, initial_data(origin))
                                .map_err(invalid)?;
                            units[receiver.index()] += carried + 1;
                            carried + 1
                        }
                        Some(ByzantineStrategy::Duplicate) => {
                            self.state
                                .transmit_duplicated(sender, receiver)
                                .map_err(invalid)?;
                            units[receiver.index()] += 2 * carried;
                            2 * carried
                        }
                        Some(ByzantineStrategy::DropCarried) => {
                            self.state
                                .transmit_voided(sender, receiver)
                                .map_err(invalid)?;
                            0
                        }
                        Some(ByzantineStrategy::Equivocate) => {
                            self.state
                                .transmit_equivocated(sender, receiver, initial_data(sender))
                                .map_err(invalid)?;
                            units[receiver.index()] += 1;
                            1
                        }
                    };
                    units[sender.index()] = 0;
                    self.ownership[sender.index()] = false;
                    self.owners -= 1;
                    *applied += 1;
                    transmissions.record(Transmission {
                        time: t,
                        sender,
                        receiver,
                    });
                    receipts.record(Receipt {
                        time: t,
                        sender,
                        receiver,
                        carried_units: carried,
                        delivered_units: delivered,
                        corruption,
                    });
                    algorithm.on_transmission(t, sender, receiver);
                    if self.owners == 1 {
                        return Ok(Some(t));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Applies a crash (`policy` set) or departure (`policy` `None`):
    /// the node goes dead, and its datum — if it still owned one — moves
    /// to the lost or recovered accounting bin.
    fn remove_node(
        &mut self,
        node: NodeId,
        sink: NodeId,
        policy: Option<CrashPolicy>,
        time: Time,
        faults: &mut FaultTally,
    ) -> Result<(), EngineError> {
        let fault = |cause| EngineError::InvalidFault { time, cause };
        if node == sink {
            return Err(fault(FaultError::TargetsSink { node }));
        }
        if node.index() >= self.live.len() {
            return Err(fault(FaultError::UnknownNode { node }));
        }
        if !self.live[node.index()] {
            return Err(fault(FaultError::NotLive { node }));
        }
        self.live[node.index()] = false;
        if self.ownership[node.index()] {
            match policy {
                Some(CrashPolicy::DatumRecoverable) => {
                    self.state.fault_recover(node);
                    faults.data_recovered += 1;
                }
                Some(CrashPolicy::DatumLost) | None => {
                    self.state.fault_lose(node);
                    faults.data_lost += 1;
                }
            }
            self.ownership[node.index()] = false;
            self.owners -= 1;
        }
        Ok(())
    }

    /// Applies a churn arrival: the node comes back live with a fresh
    /// datum (a new incarnation — its transmission allowance restarts).
    fn admit_node<F>(
        &mut self,
        node: NodeId,
        sink: NodeId,
        initial_data: &mut F,
        time: Time,
    ) -> Result<(), EngineError>
    where
        F: FnMut(NodeId) -> A,
    {
        let fault = |cause| EngineError::InvalidFault { time, cause };
        if node == sink {
            return Err(fault(FaultError::TargetsSink { node }));
        }
        if node.index() >= self.live.len() {
            return Err(fault(FaultError::UnknownNode { node }));
        }
        if self.live[node.index()] {
            return Err(fault(FaultError::AlreadyLive { node }));
        }
        self.live[node.index()] = true;
        self.state.revive(node, initial_data(node));
        self.ownership[node.index()] = true;
        self.owners += 1;
        Ok(())
    }

    #[inline]
    fn owns(&self, v: NodeId) -> bool {
        self.ownership.get(v.index()).copied().unwrap_or(false)
    }
}

/// Runs `algorithm` over the interactions produced by `source`, starting
/// from the initial data assignment `initial_data`.
///
/// This is a thin convenience wrapper over [`Engine::run`] that allocates
/// fresh scratch and packages the full [`ExecutionOutcome`] (including the
/// transmission log when `config.record_transmissions` is set). Sweeps
/// that run many executions should hold an [`Engine`] instead.
///
/// # Errors
///
/// Returns an [`EngineError`] if the algorithm produces a structurally
/// invalid decision (a sender/receiver outside the current interaction).
/// Decisions whose endpoints do not both own data are *ignored* (counted
/// in [`ExecutionOutcome::ignored_decisions`]), per the paper's convention.
///
/// # Panics
///
/// Panics if `sink` is out of range for `source.node_count()` or the node
/// count is zero (propagated from [`NetworkState::new`]).
pub fn run<A, F, S, D>(
    algorithm: &mut D,
    source: &mut S,
    sink: NodeId,
    initial_data: F,
    config: EngineConfig,
) -> Result<ExecutionOutcome<A>, EngineError>
where
    A: Aggregate,
    F: FnMut(NodeId) -> A,
    S: InteractionSource + ?Sized,
    D: DodaAlgorithm + ?Sized,
{
    let mut engine: Engine<A> = Engine::new();
    let mut transmissions = Vec::new();
    let stats = if config.record_transmissions {
        engine.run(
            algorithm,
            source,
            sink,
            initial_data,
            config,
            &mut transmissions,
        )?
    } else {
        engine.run(
            algorithm,
            source,
            sink,
            initial_data,
            config,
            &mut DiscardTransmissions,
        )?
    };
    Ok(ExecutionOutcome {
        node_count: stats.node_count,
        sink,
        termination_time: stats.termination_time,
        interactions_processed: stats.interactions_processed,
        transmissions,
        ignored_decisions: stats.ignored_decisions,
        sink_data: engine.state().data_of(sink).cloned(),
        final_ownership: engine.state().ownership_bitmap(),
        completion: stats.completion,
        faults: stats.faults,
    })
}

/// Convenience wrapper: runs with [`crate::data::IdSet`] data (each node
/// starts with the singleton of its own id), which makes the
/// data-conservation invariant directly checkable on the outcome.
pub fn run_with_id_sets<S, D>(
    algorithm: &mut D,
    source: &mut S,
    sink: NodeId,
    config: EngineConfig,
) -> Result<ExecutionOutcome<crate::data::IdSet>, EngineError>
where
    S: InteractionSource + ?Sized,
    D: DodaAlgorithm + ?Sized,
{
    run(
        algorithm,
        source,
        sink,
        crate::data::IdSet::singleton,
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Gathering, Waiting};
    use crate::interaction::Interaction;
    use crate::sequence::InteractionSequence;

    fn star_sequence(n: usize, rounds: usize) -> InteractionSequence {
        // Each round: every non-sink node meets the sink once.
        let mut seq = InteractionSequence::new(n);
        for _ in 0..rounds {
            for i in 1..n {
                seq.push(Interaction::new(NodeId(0), NodeId(i)));
            }
        }
        seq
    }

    #[test]
    fn waiting_terminates_on_star_sequence() {
        let seq = star_sequence(5, 1);
        let mut algo = Waiting::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert_eq!(outcome.termination_time, Some(3));
        assert_eq!(outcome.transmission_count(), 4);
        assert!(outcome.sink_data.as_ref().unwrap().covers_all(5));
        assert_eq!(outcome.remaining_owners(), 1);
    }

    #[test]
    fn gathering_respects_one_transmission_rule() {
        // Path-ish sequence where intermediate aggregation happens.
        let seq = InteractionSequence::from_pairs(4, vec![(2, 3), (1, 2), (0, 1), (0, 2), (0, 3)]);
        let mut algo = Gathering::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        // Each node transmits at most once.
        let mut senders: Vec<_> = outcome.transmissions.iter().map(|t| t.sender).collect();
        senders.sort();
        senders.dedup();
        assert_eq!(senders.len(), outcome.transmissions.len());
        // Data conservation: whatever the sink holds is the union of the
        // origins that reached it.
        if outcome.terminated() {
            assert!(outcome.sink_data.as_ref().unwrap().covers_all(4));
        }
    }

    #[test]
    fn engine_stops_when_source_is_exhausted() {
        let seq = InteractionSequence::from_pairs(4, vec![(1, 2)]);
        let mut algo = Waiting::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(!outcome.terminated());
        assert_eq!(outcome.interactions_processed, 1);
        assert_eq!(outcome.remaining_owners(), 4);
    }

    #[test]
    fn engine_respects_interaction_budget() {
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2)]);
        let mut algo = Waiting::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(true), // cycles forever, never involves the sink
            NodeId(0),
            EngineConfig::with_max_interactions(500),
        )
        .unwrap();
        assert!(!outcome.terminated());
        assert_eq!(outcome.interactions_processed, 500);
    }

    #[test]
    fn single_node_graph_is_complete_immediately() {
        let seq = InteractionSequence::new(1);
        let mut algo = Gathering::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert_eq!(outcome.termination_time, Some(0));
        assert_eq!(outcome.interactions_processed, 0);
    }

    #[test]
    fn invalid_decisions_outside_interaction_are_rejected() {
        struct Rogue;
        impl DodaAlgorithm for Rogue {
            fn name(&self) -> &str {
                "rogue"
            }
            fn decide(&mut self, _ctx: &InteractionContext) -> Decision {
                Decision::Transmit {
                    sender: NodeId(7),
                    receiver: NodeId(8),
                }
            }
        }
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2)]);
        let err = run_with_id_sets(
            &mut Rogue,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EngineError::DecisionOutsideInteraction { .. }
        ));
    }

    #[test]
    fn decisions_without_data_are_ignored_not_fatal() {
        // An algorithm that always orders min -> max regardless of ownership.
        struct Pushy;
        impl DodaAlgorithm for Pushy {
            fn name(&self) -> &str {
                "pushy"
            }
            fn decide(&mut self, ctx: &InteractionContext) -> Decision {
                Decision::Transmit {
                    sender: ctx.interaction.min(),
                    receiver: ctx.interaction.max(),
                }
            }
        }
        // 1 transmits to 2; then the pair {1,2} interacts again: 1 has no
        // data so the decision must be ignored. Also {0,1}: the sink-as-
        // sender decision is ignored as well.
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (1, 2), (0, 1)]);
        let outcome = run_with_id_sets(
            &mut Pushy,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.transmission_count(), 1);
        assert_eq!(outcome.ignored_decisions, 2);
        assert!(!outcome.terminated());
    }

    #[test]
    fn recorded_transmissions_can_be_disabled() {
        let seq = star_sequence(4, 1);
        let mut algo = Waiting::new();
        let config = EngineConfig {
            record_transmissions: false,
            ..EngineConfig::default()
        };
        let outcome =
            run_with_id_sets(&mut algo, &mut seq.source(false), NodeId(0), config).unwrap();
        assert!(outcome.terminated());
        assert_eq!(outcome.transmission_count(), 0);
    }

    #[test]
    fn sweep_config_disables_recording() {
        let config = EngineConfig::sweep(1_000);
        assert_eq!(config.max_interactions, 1_000);
        assert!(!config.record_transmissions);
        assert!(EngineConfig::with_max_interactions(1_000).record_transmissions);
    }

    #[test]
    fn engine_reuse_matches_fresh_runs_and_handles_shape_changes() {
        use crate::data::IdSet;

        let mut engine: Engine<IdSet> = Engine::new();
        // Alternate node counts to exercise scratch resizing in both
        // directions; every reused run must match a fresh `run` exactly.
        for &(n, rounds) in &[(5usize, 1usize), (3, 2), (8, 1), (2, 1)] {
            let seq = star_sequence(n, rounds);
            let mut algo = Waiting::new();
            let stats = engine
                .run(
                    &mut algo,
                    &mut seq.source(false),
                    NodeId(0),
                    IdSet::singleton,
                    EngineConfig::default(),
                    &mut DiscardTransmissions,
                )
                .unwrap();
            let mut fresh_algo = Waiting::new();
            let outcome = run_with_id_sets(
                &mut fresh_algo,
                &mut seq.source(false),
                NodeId(0),
                EngineConfig::default(),
            )
            .unwrap();
            assert_eq!(stats.termination_time, outcome.termination_time);
            assert_eq!(stats.interactions_processed, outcome.interactions_processed);
            assert_eq!(stats.transmissions as usize, outcome.transmission_count());
            assert_eq!(stats.ignored_decisions, outcome.ignored_decisions);
            assert_eq!(stats.remaining_owners, outcome.remaining_owners());
            assert_eq!(
                engine.state().data_of(NodeId(0)).cloned(),
                outcome.sink_data
            );
            assert_eq!(engine.state().ownership_bitmap(), outcome.final_ownership);
        }
    }

    #[test]
    fn step_for_slices_reproduce_run_to_completion() {
        use crate::data::IdSet;

        let seq = star_sequence(9, 2);
        let config = EngineConfig::sweep(1_000);
        let mut reference: Engine<IdSet> = Engine::new();
        let expected = reference
            .run(
                &mut Waiting::new(),
                &mut seq.stream(false),
                NodeId(0),
                IdSet::singleton,
                config,
                &mut DiscardTransmissions,
            )
            .unwrap();

        for budget in [1u64, 3, 7, 1_000] {
            let mut engine: Engine<IdSet> = Engine::new();
            let mut algo = Waiting::new();
            let mut source = seq.stream(false);
            let mut run = engine.begin_run(9, NodeId(0), IdSet::singleton, config);
            let mut slices = 0u64;
            loop {
                let outcome = engine
                    .step_for(
                        &mut run,
                        &mut algo,
                        &mut source,
                        IdSet::singleton,
                        budget,
                        &mut DiscardTransmissions,
                    )
                    .unwrap();
                slices += 1;
                match outcome {
                    StepOutcome::BudgetSpent => continue,
                    StepOutcome::Completed => break,
                    other => panic!("a star stream completes; got {other:?}"),
                }
            }
            assert_eq!(engine.finish_run(&run), expected, "budget {budget}");
            assert!(slices >= expected.interactions_processed / budget.max(1));
            assert_eq!(
                engine.state().ownership_bitmap(),
                reference.state().ownership_bitmap()
            );
        }
    }

    #[test]
    fn checkpoint_restore_continues_byte_identically() {
        use crate::data::IdSet;

        let seq = star_sequence(8, 2);
        let config = EngineConfig::sweep(1_000);
        let mut reference: Engine<IdSet> = Engine::new();
        let expected = reference
            .run(
                &mut Waiting::new(),
                &mut seq.stream(false),
                NodeId(0),
                IdSet::singleton,
                config,
                &mut DiscardTransmissions,
            )
            .unwrap();

        // Pause after 3 interactions, snapshot, then continue the run in a
        // brand-new engine restored from the snapshot.
        let mut engine: Engine<IdSet> = Engine::new();
        let mut algo = Waiting::new();
        let mut source = seq.stream(false);
        let mut run = engine.begin_run(8, NodeId(0), IdSet::singleton, config);
        let outcome = engine
            .step_for(
                &mut run,
                &mut algo,
                &mut source,
                IdSet::singleton,
                3,
                &mut DiscardTransmissions,
            )
            .unwrap();
        assert_eq!(outcome, StepOutcome::BudgetSpent);
        let snapshot = engine.checkpoint(&run);
        assert_eq!(snapshot.progress().interactions_processed(), 3);

        let mut resumed: Engine<IdSet> = Engine::new();
        let mut run = resumed.restore(&snapshot);
        while resumed
            .step_for(
                &mut run,
                &mut algo,
                &mut source,
                IdSet::singleton,
                2,
                &mut DiscardTransmissions,
            )
            .unwrap()
            .can_continue()
        {}
        assert_eq!(resumed.finish_run(&run), expected);
        assert_eq!(
            resumed.state().ownership_bitmap(),
            reference.state().ownership_bitmap()
        );
    }

    #[test]
    fn empty_source_pauses_as_exhausted_and_resumes() {
        use crate::data::Count;
        use crate::sequence::{AdversaryView, StepEvent};

        // A source backed by a queue the test refills between slices —
        // the session-inbox shape: exhaustion is a pause, not an end.
        struct Queue(std::collections::VecDeque<StepEvent>);
        impl InteractionSource for Queue {
            fn node_count(&self) -> usize {
                3
            }
            fn next_interaction(
                &mut self,
                t: Time,
                view: &AdversaryView<'_>,
            ) -> Option<Interaction> {
                self.next_event(t, view).and_then(|e| match e {
                    StepEvent::Interaction(i) => Some(i),
                    _ => None,
                })
            }
            fn next_event(&mut self, _t: Time, _v: &AdversaryView<'_>) -> Option<StepEvent> {
                self.0.pop_front()
            }
        }

        let mut engine: Engine<Count> = Engine::new();
        let mut algo = Waiting::new();
        let mut queue = Queue(std::collections::VecDeque::new());
        let mut run = engine.begin_run(3, NodeId(0), |_| Count::unit(), EngineConfig::sweep(100));
        let paused = engine
            .step_for(
                &mut run,
                &mut algo,
                &mut queue,
                |_| Count::unit(),
                10,
                &mut DiscardTransmissions,
            )
            .unwrap();
        assert_eq!(paused, StepOutcome::SourceExhausted);
        assert_eq!(run.interactions_processed(), 0);

        queue.0.push_back(StepEvent::Interaction(Interaction::new(
            NodeId(0),
            NodeId(1),
        )));
        queue.0.push_back(StepEvent::Interaction(Interaction::new(
            NodeId(0),
            NodeId(2),
        )));
        let done = engine
            .step_for(
                &mut run,
                &mut algo,
                &mut queue,
                |_| Count::unit(),
                10,
                &mut DiscardTransmissions,
            )
            .unwrap();
        assert_eq!(done, StepOutcome::Completed);
        let stats = engine.finish_run(&run);
        assert!(stats.terminated());
        assert_eq!(stats.transmissions, 2);
    }

    #[test]
    fn unfaulted_runs_report_clean_completion() {
        let seq = star_sequence(4, 1);
        let outcome = run_with_id_sets(
            &mut Waiting::new(),
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.completion, crate::outcome::Completion::Aggregated);
        assert!(outcome.faults.is_clean());

        let starved = run_with_id_sets(
            &mut Waiting::new(),
            &mut InteractionSequence::from_pairs(4, vec![(1, 2)]).source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(starved.completion, crate::outcome::Completion::Starved);
    }

    #[test]
    fn faulted_execution_applies_crash_churn_and_loss() {
        use crate::fault::{FaultProfile, FaultedSource};
        use crate::outcome::Completion;

        // A crash-heavy plan over a cycling star (everyone keeps meeting
        // the sink, so Waiting always terminates): crashes destroy some
        // data along the way, and every run must account for each origin
        // as either aggregated or lost.
        let seq = star_sequence(8, 1);
        let mut survivor_runs = 0;
        for seed in 0..10u64 {
            let profile = FaultProfile::crash(0.2);
            let mut faulted = FaultedSource::new(seq.stream(true), profile, seed).unwrap();
            let outcome = run_with_id_sets(
                &mut Waiting::new(),
                &mut faulted,
                NodeId(0),
                EngineConfig::sweep(50_000),
            )
            .unwrap();
            assert!(outcome.terminated(), "seed {seed}");
            assert!(outcome.faults.crashes >= outcome.faults.data_lost);
            let sink_set = outcome.sink_data.unwrap();
            assert_eq!(
                sink_set.len() + outcome.faults.data_lost as usize,
                8,
                "every origin is either aggregated or lost (seed {seed})"
            );
            match outcome.completion {
                Completion::AggregatedSurvivors => {
                    assert!(outcome.faults.data_lost > 0, "seed {seed}");
                    survivor_runs += 1;
                }
                Completion::Aggregated => assert_eq!(outcome.faults.data_lost, 0),
                Completion::Starved => panic!("a star stream cannot starve Waiting"),
            }
        }
        assert!(
            survivor_runs > 0,
            "a 20% crash rate must cost data in some of 10 runs"
        );
    }

    #[test]
    fn recoverable_crashes_fill_the_recovered_bin() {
        use crate::data::IdSet;
        use crate::fault::{FaultProfile, FaultedSource};

        let seq = star_sequence(8, 1);
        let mut engine: Engine<IdSet> = Engine::new();
        let mut recovered_runs = 0;
        for seed in 0..10u64 {
            let profile = FaultProfile::crash_recoverable(0.2);
            let mut faulted = FaultedSource::new(seq.stream(true), profile, seed).unwrap();
            let stats = engine
                .run(
                    &mut Waiting::new(),
                    &mut faulted,
                    NodeId(0),
                    IdSet::singleton,
                    EngineConfig::sweep(50_000),
                    &mut DiscardTransmissions,
                )
                .unwrap();
            assert_eq!(stats.faults.data_lost, 0);
            assert!(engine.state().lost_data().is_none());
            if stats.faults.data_recovered > 0 {
                assert_eq!(
                    engine.state().recovered_data().unwrap().len() as u64,
                    stats.faults.data_recovered
                );
                assert_eq!(
                    stats.completion,
                    crate::outcome::Completion::AggregatedSurvivors
                );
                recovered_runs += 1;
            }
        }
        assert!(recovered_runs > 0, "some run must recover a datum");
    }

    #[test]
    fn lossy_interactions_are_counted_and_never_seen() {
        use crate::fault::{FaultProfile, FaultedSource};

        let seq = star_sequence(5, 4_000);
        let mut faulted =
            FaultedSource::new(seq.stream(true), FaultProfile::lossy(0.5), 7).unwrap();
        let outcome = run_with_id_sets(
            &mut Waiting::new(),
            &mut faulted,
            NodeId(0),
            EngineConfig::sweep(10_000),
        )
        .unwrap();
        // Losses slow Waiting down but cannot destroy data.
        assert!(outcome.terminated());
        assert_eq!(outcome.completion, crate::outcome::Completion::Aggregated);
        assert!(outcome.faults.lost_interactions > 0);
        assert!(outcome.sink_data.unwrap().covers_all(5));
    }

    #[test]
    fn churn_arrivals_introduce_fresh_data() {
        use crate::data::Count;
        use crate::fault::{FaultProfile, FaultedSource};

        // A stream that never involves the sink: Waiting never transmits,
        // so the population churns for the whole budget and the exact
        // Count-conservation identity is checked over a long window.
        let seq = InteractionSequence::from_pairs(6, vec![(1, 2), (3, 4), (2, 5)]);
        let profile = FaultProfile::churn(0.05, 0.1);
        let mut faulted = FaultedSource::new(seq.stream(true), profile, 3).unwrap();
        let mut engine: Engine<Count> = Engine::new();
        let stats = engine
            .run(
                &mut Waiting::new(),
                &mut faulted,
                NodeId(0),
                |_| Count::unit(),
                EngineConfig::sweep(2_000),
                &mut DiscardTransmissions,
            )
            .unwrap();
        assert!(stats.faults.departures > 0);
        assert!(stats.faults.arrivals > 0);
        assert_eq!(stats.data_introduced(), 6 + stats.faults.arrivals);
        // Exact conservation: every introduced datum is at the sink, in a
        // bin, or still owned by a live node.
        let at_nodes: u64 = (0..6)
            .filter_map(|i| engine.state().data_of(NodeId(i)))
            .map(|c| c.0)
            .sum();
        let lost = engine.state().lost_data().map_or(0, |c| c.0);
        assert_eq!(at_nodes + lost, stats.data_introduced());
    }

    #[test]
    fn malformed_fault_events_are_typed_errors() {
        use crate::error::FaultError;
        use crate::sequence::StepEvent;

        struct Script(Vec<StepEvent>);
        impl InteractionSource for Script {
            fn node_count(&self) -> usize {
                4
            }
            fn next_interaction(
                &mut self,
                t: Time,
                view: &AdversaryView<'_>,
            ) -> Option<Interaction> {
                self.next_event(t, view).and_then(|e| match e {
                    StepEvent::Interaction(i) => Some(i),
                    _ => None,
                })
            }
            fn next_event(&mut self, t: Time, _view: &AdversaryView<'_>) -> Option<StepEvent> {
                self.0.get(t as usize).copied()
            }
        }

        let cases: Vec<(Vec<StepEvent>, FaultError)> = vec![
            (
                vec![StepEvent::Departure(NodeId(0))],
                FaultError::TargetsSink { node: NodeId(0) },
            ),
            (
                vec![StepEvent::Departure(NodeId(9))],
                FaultError::UnknownNode { node: NodeId(9) },
            ),
            (
                vec![
                    StepEvent::Departure(NodeId(2)),
                    StepEvent::Crash {
                        node: NodeId(2),
                        policy: CrashPolicy::DatumLost,
                    },
                ],
                FaultError::NotLive { node: NodeId(2) },
            ),
            (
                vec![StepEvent::Arrival(NodeId(1))],
                FaultError::AlreadyLive { node: NodeId(1) },
            ),
            (
                vec![
                    StepEvent::Departure(NodeId(2)),
                    StepEvent::Interaction(Interaction::new(NodeId(1), NodeId(2))),
                ],
                FaultError::DeadParticipant {
                    interaction: Interaction::new(NodeId(1), NodeId(2)),
                    node: NodeId(2),
                },
            ),
        ];
        for (script, expected) in cases {
            let err = run_with_id_sets(
                &mut Waiting::new(),
                &mut Script(script),
                NodeId(0),
                EngineConfig::default(),
            )
            .unwrap_err();
            match err {
                EngineError::InvalidFault { cause, .. } => assert_eq!(cause, expected),
                other => panic!("expected InvalidFault, got {other:?}"),
            }
        }
    }

    #[test]
    fn crash_of_the_last_owner_terminates_as_survivors() {
        use crate::outcome::Completion;
        use crate::sequence::StepEvent;

        // Script: 2 transmits to 1 (Gathering aggregates away from the
        // sink is not possible on a star, so use an explicit pair), then
        // both non-sink owners crash — the sink is left as sole owner
        // without ever receiving anything.
        struct Script;
        impl InteractionSource for Script {
            fn node_count(&self) -> usize {
                3
            }
            fn next_interaction(
                &mut self,
                _t: Time,
                _v: &AdversaryView<'_>,
            ) -> Option<Interaction> {
                None
            }
            fn next_event(&mut self, t: Time, _v: &AdversaryView<'_>) -> Option<StepEvent> {
                match t {
                    0 => Some(StepEvent::Crash {
                        node: NodeId(1),
                        policy: CrashPolicy::DatumLost,
                    }),
                    1 => Some(StepEvent::Crash {
                        node: NodeId(2),
                        policy: CrashPolicy::DatumLost,
                    }),
                    _ => None,
                }
            }
        }
        let outcome = run_with_id_sets(
            &mut Waiting::new(),
            &mut Script,
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert_eq!(outcome.termination_time, Some(1));
        assert_eq!(outcome.completion, Completion::AggregatedSurvivors);
        assert_eq!(outcome.faults.data_lost, 2);
        assert_eq!(outcome.remaining_owners(), 1);
    }

    #[test]
    fn round_execution_applies_whole_matchings() {
        use crate::data::IdSet;
        use crate::round::MatchingSequence;

        // One round: every pair {0, i} cannot coexist in a matching, so
        // the star takes n/2-ish rounds — here a 6-node schedule where the
        // outer nodes pair up first and then drain into the sink.
        let mut schedule = MatchingSequence::new(6);
        schedule.push_round([(1, 2), (3, 4)]);
        schedule.push_round([(0, 1), (3, 5)]);
        schedule.push_round([(0, 3)]);
        schedule.push_round([(0, 5)]);
        let mut engine: Engine<IdSet> = Engine::new();
        let stats = engine
            .run_rounds(
                &mut Gathering::new(),
                &mut schedule.stream(false),
                NodeId(0),
                IdSet::singleton,
                EngineConfig::sweep(1_000),
                &mut DiscardTransmissions,
            )
            .unwrap();
        assert!(stats.run.terminated());
        assert_eq!(stats.run.transmissions, 5);
        // Gathering drains in 3 rounds (2 + 2 + 1 interactions); the
        // fourth scheduled round is never pulled.
        assert_eq!(stats.rounds_processed, 3);
        assert_eq!(stats.run.interactions_processed, 5);
        assert!(engine.state().data_of(NodeId(0)).unwrap().covers_all(6));
    }

    #[test]
    fn singleton_rounds_match_the_pairwise_path() {
        use crate::data::IdSet;
        use crate::round::SingletonRounds;

        let seq = star_sequence(7, 2);
        for budget in [3u64, 9, 1_000] {
            let config = EngineConfig::sweep(budget);
            let mut pairwise: Engine<IdSet> = Engine::new();
            let a = pairwise
                .run(
                    &mut Waiting::new(),
                    &mut seq.stream(false),
                    NodeId(0),
                    IdSet::singleton,
                    config,
                    &mut DiscardTransmissions,
                )
                .unwrap();
            let mut rounds: Engine<IdSet> = Engine::new();
            let b = rounds
                .run_rounds(
                    &mut Waiting::new(),
                    &mut SingletonRounds::new(seq.stream(false)),
                    NodeId(0),
                    IdSet::singleton,
                    config,
                    &mut DiscardTransmissions,
                )
                .unwrap();
            assert_eq!(a, b.run, "budget {budget}");
            assert_eq!(b.rounds_processed, b.run.interactions_processed);
            assert_eq!(
                pairwise.state().ownership_bitmap(),
                rounds.state().ownership_bitmap()
            );
        }
    }

    #[test]
    fn round_budget_cuts_a_round_mid_matching() {
        use crate::data::Count;
        use crate::round::MatchingSequence;

        let mut schedule = MatchingSequence::new(8);
        schedule.push_round([(1, 2), (3, 4), (5, 6)]);
        let mut engine: Engine<Count> = Engine::new();
        let stats = engine
            .run_rounds(
                &mut Waiting::new(),
                &mut schedule.stream(true),
                NodeId(0),
                |_| Count::unit(),
                EngineConfig::sweep(5),
                &mut DiscardTransmissions,
            )
            .unwrap();
        assert!(!stats.run.terminated());
        assert_eq!(stats.run.interactions_processed, 5);
        assert_eq!(stats.rounds_processed, 2);
    }

    #[test]
    fn endless_empty_rounds_exhaust_instead_of_hanging() {
        use crate::data::Count;
        use crate::round::{Matching, RoundSource, MAX_CONSECUTIVE_EMPTY_ROUNDS};
        use crate::sequence::AdversaryView;

        struct AlwaysEmpty;
        impl RoundSource for AlwaysEmpty {
            fn node_count(&self) -> usize {
                4
            }
            fn next_round(
                &mut self,
                _r: Time,
                _v: &AdversaryView<'_>,
                _out: &mut Matching,
            ) -> bool {
                true
            }
        }
        let mut engine: Engine<Count> = Engine::new();
        let stats = engine
            .run_rounds(
                &mut Waiting::new(),
                &mut AlwaysEmpty,
                NodeId(0),
                |_| Count::unit(),
                EngineConfig::sweep(1_000),
                &mut DiscardTransmissions,
            )
            .unwrap();
        assert!(!stats.run.terminated());
        assert_eq!(stats.run.interactions_processed, 0);
        assert_eq!(stats.rounds_processed, MAX_CONSECUTIVE_EMPTY_ROUNDS);
    }

    #[test]
    fn engine_records_into_a_vec_sink() {
        use crate::data::IdSet;

        let seq = star_sequence(4, 1);
        let mut engine: Engine<IdSet> = Engine::new();
        let mut algo = Waiting::new();
        let mut log: Vec<Transmission> = Vec::new();
        let stats = engine
            .run(
                &mut algo,
                &mut seq.source(false),
                NodeId(0),
                IdSet::singleton,
                // The flag is ignored by the core: the sink argument decides.
                EngineConfig::sweep(1_000),
                &mut log,
            )
            .unwrap();
        assert!(stats.terminated());
        assert_eq!(stats.transmissions, 3);
        assert_eq!(log.len(), 3);
        assert!(log.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(log.iter().all(|t| t.receiver == NodeId(0)));
    }

    #[test]
    fn audited_run_with_zero_liars_matches_the_honest_path() {
        use crate::byzantine::{ByzantineInjector, ByzantineProfile, Tally, Verdict};
        use crate::data::IdSet;

        let seq = star_sequence(7, 2);
        let config = EngineConfig::sweep(10_000);
        let mut honest: Engine<IdSet> = Engine::new();
        let expected = honest
            .run(
                &mut Waiting::new(),
                &mut seq.stream(false),
                NodeId(0),
                IdSet::singleton,
                config,
                &mut DiscardTransmissions,
            )
            .unwrap();

        let mut audited: Engine<IdSet> = Engine::new();
        let mut injector =
            ByzantineInjector::new(ByzantineProfile::forge(0.0), 7, NodeId(0), 3).unwrap();
        let mut tally = Tally::new();
        let stats = audited
            .run_audited(
                &mut Waiting::new(),
                &mut seq.stream(false),
                NodeId(0),
                IdSet::singleton,
                config,
                &mut DiscardTransmissions,
                &mut injector,
                &mut tally,
            )
            .unwrap();
        assert_eq!(stats, expected);
        assert_eq!(
            audited.state().ownership_bitmap(),
            honest.state().ownership_bitmap()
        );
        assert_eq!(
            audited.state().data_of(NodeId(0)),
            honest.state().data_of(NodeId(0))
        );
        assert_eq!(tally.transfers(), stats.transmissions);
        assert!(tally.is_clean());
        assert_eq!(tally.verdict::<IdSet>(), Verdict::Clean);
        assert_eq!(tally.carried_units(), tally.delivered_units());
    }

    #[test]
    fn forging_liars_are_detected_under_count() {
        use crate::byzantine::{ByzantineInjector, ByzantineProfile, Tally, Verdict};
        use crate::data::Count;

        let seq = star_sequence(10, 1);
        let mut engine: Engine<Count> = Engine::new();
        let mut injector =
            ByzantineInjector::new(ByzantineProfile::forge(0.3), 10, NodeId(0), 5).unwrap();
        let mut tally = Tally::new();
        let stats = engine
            .run_audited(
                &mut Waiting::new(),
                &mut seq.stream(true),
                NodeId(0),
                |_| Count::unit(),
                EngineConfig::sweep(10_000),
                &mut DiscardTransmissions,
                &mut injector,
                &mut tally,
            )
            .unwrap();
        assert!(stats.terminated());
        assert_eq!(injector.liar_count(), 3);
        assert_eq!(tally.corrupted(), 3, "every liar transmits exactly once");
        // Each forger mints one phantom unit: the exact count overshoots
        // by exactly the number of liars, and the ledger shows it.
        assert_eq!(engine.state().data_of(NodeId(0)).unwrap(), &Count(13));
        assert_eq!(tally.delivered_units(), tally.carried_units() + 3);
        assert!(matches!(tally.verdict::<Count>(), Verdict::Detected { .. }));
    }

    #[test]
    fn dropping_liars_void_their_carried_data() {
        use crate::byzantine::{ByzantineInjector, ByzantineProfile, Receipt, Tally};
        use crate::data::Count;

        let seq = star_sequence(8, 1);
        let mut engine: Engine<Count> = Engine::new();
        let mut injector =
            ByzantineInjector::new(ByzantineProfile::drop_carried(0.25), 8, NodeId(0), 11).unwrap();
        let mut log: Vec<Receipt> = Vec::new();
        let stats = engine
            .run_audited(
                &mut Waiting::new(),
                &mut seq.stream(true),
                NodeId(0),
                |_| Count::unit(),
                EngineConfig::sweep(10_000),
                &mut DiscardTransmissions,
                &mut injector,
                &mut log,
            )
            .unwrap();
        assert!(stats.terminated());
        assert_eq!(injector.liar_count(), 2);
        let dropped: Vec<&Receipt> = log.iter().filter(|r| !r.is_honest()).collect();
        assert_eq!(dropped.len(), 2);
        assert!(dropped.iter().all(|r| r.delivered_units == 0));
        // The voided bin accounts for exactly what the sink is missing.
        assert_eq!(engine.state().data_of(NodeId(0)).unwrap(), &Count(6));
        assert_eq!(engine.state().voided_data().unwrap(), &Count(2));
        // A tally over the same receipts classifies identically.
        let mut tally = Tally::new();
        for receipt in &log {
            crate::byzantine::ReceiptSink::record(&mut tally, *receipt);
        }
        assert_eq!(tally.transfers(), 7);
        assert_eq!(tally.delivered_units() + 2, tally.carried_units());
    }
}
