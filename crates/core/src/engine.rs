//! The execution engine.
//!
//! The engine plays the role of the "system" in the paper's model: at each
//! time step it obtains the interaction from the adversary (an
//! [`InteractionSource`]), presents it to the algorithm together with the
//! control information both nodes would exchange, applies the algorithm's
//! decision under the model's rules, and stops when the sink is the only
//! node owning data (or when a step budget / the source is exhausted).

use doda_graph::NodeId;

use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};
use crate::data::Aggregate;
use crate::error::EngineError;
use crate::outcome::{ExecutionOutcome, Transmission};
use crate::sequence::{AdversaryView, InteractionSource};
use crate::state::NetworkState;

/// Configuration of a single execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum number of interactions to process before giving up.
    ///
    /// Adversarial constructions (Theorems 1–3) never let some algorithms
    /// terminate, so an execution horizon is required to make experiments
    /// finite.
    pub max_interactions: u64,
    /// Whether to record every transmission in the outcome (cheap, but can
    /// be disabled for very large parameter sweeps).
    pub record_transmissions: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_interactions: 10_000_000,
            record_transmissions: true,
        }
    }
}

impl EngineConfig {
    /// Configuration with an explicit interaction budget.
    pub fn with_max_interactions(max_interactions: u64) -> Self {
        EngineConfig {
            max_interactions,
            ..EngineConfig::default()
        }
    }
}

/// Runs `algorithm` over the interactions produced by `source`, starting
/// from the initial data assignment `initial_data`.
///
/// # Errors
///
/// Returns an [`EngineError`] if the algorithm produces a structurally
/// invalid decision (a sender/receiver outside the current interaction).
/// Decisions whose endpoints do not both own data are *ignored* (counted
/// in [`ExecutionOutcome::ignored_decisions`]), per the paper's convention.
///
/// # Panics
///
/// Panics if `sink` is out of range for `source.node_count()` or the node
/// count is zero (propagated from [`NetworkState::new`]).
pub fn run<A, F, S, D>(
    algorithm: &mut D,
    source: &mut S,
    sink: NodeId,
    initial_data: F,
    config: EngineConfig,
) -> Result<ExecutionOutcome<A>, EngineError>
where
    A: Aggregate,
    F: FnMut(NodeId) -> A,
    S: InteractionSource + ?Sized,
    D: DodaAlgorithm + ?Sized,
{
    let n = source.node_count();
    let mut state: NetworkState<A> = NetworkState::new(n, sink, initial_data);
    let mut transmissions = Vec::new();
    let mut ignored = 0u64;
    let mut processed = 0u64;
    let mut termination_time = if state.is_complete() { Some(0) } else { None };

    while termination_time.is_none() && processed < config.max_interactions {
        let t = processed;
        let ownership = state.ownership_bitmap();
        let view = AdversaryView {
            owns_data: &ownership,
            sink,
        };
        let Some(interaction) = source.next_interaction(t, &view) else {
            break;
        };
        processed += 1;

        let ctx = InteractionContext {
            time: t,
            interaction,
            min_owns_data: state.owns_data(interaction.min()),
            max_owns_data: state.owns_data(interaction.max()),
            sink,
        };
        match algorithm.decide(&ctx) {
            Decision::Idle => {}
            Decision::Transmit { sender, receiver } => {
                if !interaction.involves(sender)
                    || !interaction.involves(receiver)
                    || sender == receiver
                {
                    return Err(EngineError::DecisionOutsideInteraction {
                        time: t,
                        interaction,
                        sender,
                        receiver,
                    });
                }
                if !ctx.both_own_data() || sender == sink {
                    // "The output is ignored if the interacting nodes do not
                    // both have data." A decision asking the sink to transmit
                    // is likewise ignored rather than fatal: it can only come
                    // from an algorithm treating the sink as a regular node,
                    // and the model simply forbids the transfer.
                    ignored += 1;
                } else {
                    state
                        .transmit(sender, receiver)
                        .map_err(|cause| EngineError::InvalidTransmission { time: t, cause })?;
                    if config.record_transmissions {
                        transmissions.push(Transmission {
                            time: t,
                            sender,
                            receiver,
                        });
                    }
                    algorithm.on_transmission(t, sender, receiver);
                    if state.is_complete() {
                        termination_time = Some(t);
                    }
                }
            }
        }
    }

    Ok(ExecutionOutcome {
        node_count: n,
        sink,
        termination_time,
        interactions_processed: processed,
        transmissions,
        ignored_decisions: ignored,
        sink_data: state.data_of(sink).cloned(),
        final_ownership: state.ownership_bitmap(),
    })
}

/// Convenience wrapper: runs with [`crate::data::IdSet`] data (each node
/// starts with the singleton of its own id), which makes the
/// data-conservation invariant directly checkable on the outcome.
pub fn run_with_id_sets<S, D>(
    algorithm: &mut D,
    source: &mut S,
    sink: NodeId,
    config: EngineConfig,
) -> Result<ExecutionOutcome<crate::data::IdSet>, EngineError>
where
    S: InteractionSource + ?Sized,
    D: DodaAlgorithm + ?Sized,
{
    run(
        algorithm,
        source,
        sink,
        crate::data::IdSet::singleton,
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Gathering, Waiting};
    use crate::interaction::Interaction;
    use crate::sequence::InteractionSequence;

    fn star_sequence(n: usize, rounds: usize) -> InteractionSequence {
        // Each round: every non-sink node meets the sink once.
        let mut seq = InteractionSequence::new(n);
        for _ in 0..rounds {
            for i in 1..n {
                seq.push(Interaction::new(NodeId(0), NodeId(i)));
            }
        }
        seq
    }

    #[test]
    fn waiting_terminates_on_star_sequence() {
        let seq = star_sequence(5, 1);
        let mut algo = Waiting::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert_eq!(outcome.termination_time, Some(3));
        assert_eq!(outcome.transmission_count(), 4);
        assert!(outcome.sink_data.as_ref().unwrap().covers_all(5));
        assert_eq!(outcome.remaining_owners(), 1);
    }

    #[test]
    fn gathering_respects_one_transmission_rule() {
        // Path-ish sequence where intermediate aggregation happens.
        let seq = InteractionSequence::from_pairs(4, vec![(2, 3), (1, 2), (0, 1), (0, 2), (0, 3)]);
        let mut algo = Gathering::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        // Each node transmits at most once.
        let mut senders: Vec<_> = outcome.transmissions.iter().map(|t| t.sender).collect();
        senders.sort();
        senders.dedup();
        assert_eq!(senders.len(), outcome.transmissions.len());
        // Data conservation: whatever the sink holds is the union of the
        // origins that reached it.
        if outcome.terminated() {
            assert!(outcome.sink_data.as_ref().unwrap().covers_all(4));
        }
    }

    #[test]
    fn engine_stops_when_source_is_exhausted() {
        let seq = InteractionSequence::from_pairs(4, vec![(1, 2)]);
        let mut algo = Waiting::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(!outcome.terminated());
        assert_eq!(outcome.interactions_processed, 1);
        assert_eq!(outcome.remaining_owners(), 4);
    }

    #[test]
    fn engine_respects_interaction_budget() {
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2)]);
        let mut algo = Waiting::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(true), // cycles forever, never involves the sink
            NodeId(0),
            EngineConfig::with_max_interactions(500),
        )
        .unwrap();
        assert!(!outcome.terminated());
        assert_eq!(outcome.interactions_processed, 500);
    }

    #[test]
    fn single_node_graph_is_complete_immediately() {
        let seq = InteractionSequence::new(1);
        let mut algo = Gathering::new();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert_eq!(outcome.termination_time, Some(0));
        assert_eq!(outcome.interactions_processed, 0);
    }

    #[test]
    fn invalid_decisions_outside_interaction_are_rejected() {
        struct Rogue;
        impl DodaAlgorithm for Rogue {
            fn name(&self) -> &str {
                "rogue"
            }
            fn decide(&mut self, _ctx: &InteractionContext) -> Decision {
                Decision::Transmit {
                    sender: NodeId(7),
                    receiver: NodeId(8),
                }
            }
        }
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2)]);
        let err = run_with_id_sets(
            &mut Rogue,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EngineError::DecisionOutsideInteraction { .. }
        ));
    }

    #[test]
    fn decisions_without_data_are_ignored_not_fatal() {
        // An algorithm that always orders min -> max regardless of ownership.
        struct Pushy;
        impl DodaAlgorithm for Pushy {
            fn name(&self) -> &str {
                "pushy"
            }
            fn decide(&mut self, ctx: &InteractionContext) -> Decision {
                Decision::Transmit {
                    sender: ctx.interaction.min(),
                    receiver: ctx.interaction.max(),
                }
            }
        }
        // 1 transmits to 2; then the pair {1,2} interacts again: 1 has no
        // data so the decision must be ignored. Also {0,1}: the sink-as-
        // sender decision is ignored as well.
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (1, 2), (0, 1)]);
        let outcome = run_with_id_sets(
            &mut Pushy,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert_eq!(outcome.transmission_count(), 1);
        assert_eq!(outcome.ignored_decisions, 2);
        assert!(!outcome.terminated());
    }

    #[test]
    fn recorded_transmissions_can_be_disabled() {
        let seq = star_sequence(4, 1);
        let mut algo = Waiting::new();
        let config = EngineConfig {
            record_transmissions: false,
            ..EngineConfig::default()
        };
        let outcome =
            run_with_id_sets(&mut algo, &mut seq.source(false), NodeId(0), config).unwrap();
        assert!(outcome.terminated());
        assert_eq!(outcome.transmission_count(), 0);
    }
}
