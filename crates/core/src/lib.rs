//! # Distributed Online Data Aggregation in Dynamic Graphs
//!
//! A from-scratch Rust implementation of the model, algorithms and analysis
//! tools of *"Distributed Online Data Aggregation in Dynamic Graphs"*
//! (Bramas, Masuzawa, Tixeuil — ICDCS 2016).
//!
//! ## The model in one paragraph
//!
//! A dynamic graph is a set of `n` nodes (one of which is the **sink**)
//! plus a sequence of **pairwise interactions** `I = (I_t)`, one per time
//! step, chosen by an adversary. Every node starts with a datum; during an
//! interaction one of the two nodes may transmit its (aggregated) datum to
//! the other — but **each node may transmit at most once**, and after
//! transmitting it is out of the computation. A distributed online data
//! aggregation (DODA) algorithm decides, per interaction, who transmits;
//! the goal is that eventually the sink is the only node owning data.
//!
//! ## What this crate provides
//!
//! * the interaction model: [`Interaction`], [`InteractionSequence`],
//!   streaming [`sequence::InteractionSource`]s and the adaptive-adversary
//!   view;
//! * data and aggregation functions ([`data`]);
//! * the strict one-transmission state machine ([`state::NetworkState`]);
//! * knowledge oracles ([`knowledge`]): `meetTime`, own future, full
//!   knowledge;
//! * the execution engine ([`engine`]);
//! * the paper's algorithms ([`algorithms`]): `Waiting`, `Gathering`,
//!   `WaitingGreedy(τ)`, spanning-tree aggregation, future-broadcast and
//!   the offline optimal;
//! * the offline optimal convergecast and the paper's cost function
//!   ([`convergecast`], [`cost`]).
//!
//! ## Quick start — streaming execution
//!
//! The model is inherently online: the adversary reveals one interaction
//! per step, and the algorithm must decide without seeing the future. The
//! engine mirrors that — it pulls interactions from an
//! [`InteractionSource`] one at a time, so executions run in `O(n)` memory
//! at *any* horizon; no sequence is ever materialised unless an oracle
//! needs one.
//!
//! ```
//! use doda_core::prelude::*;
//! use doda_graph::NodeId;
//!
//! // A streaming adversary: node 1 + t%2 meets the sink at time t. It is
//! // never materialised — the engine pulls one interaction per step.
//! struct Alternating;
//! impl InteractionSource for Alternating {
//!     fn node_count(&self) -> usize {
//!         3
//!     }
//!     fn next_interaction(&mut self, t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
//!         Some(Interaction::new(NodeId(0), NodeId(1 + (t as usize) % 2)))
//!     }
//! }
//!
//! let mut algo = Gathering::new();
//! let outcome = engine::run_with_id_sets(
//!     &mut algo,
//!     &mut Alternating,
//!     NodeId(0),
//!     EngineConfig::sweep(1_000), // budget, since the source is infinite
//! )?;
//! assert!(outcome.terminated());
//! # Ok::<(), doda_core::error::EngineError>(())
//! ```
//!
//! A finite [`InteractionSequence`] is itself a source (via
//! [`InteractionSequence::stream`]), and the bridge back — for the
//! knowledge oracles that genuinely need the future — is
//! [`InteractionSequence::materialize`]:
//!
//! ```
//! use doda_core::prelude::*;
//! use doda_graph::NodeId;
//!
//! // Adversary: nodes 1 and 2 meet, then node 1 meets the sink 0.
//! let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (0, 1)]);
//!
//! let mut algo = Gathering::new();
//! let outcome =
//!     engine::run_with_id_sets(&mut algo, &mut seq.stream(false), NodeId(0), EngineConfig::default())?;
//! assert!(outcome.terminated());
//!
//! // Gathering aggregates 2 into 1 at t=0 and delivers at t=1: optimal here.
//! let cost = cost::cost_of_outcome(&seq, &outcome, 16);
//! assert!(cost.is_optimal());
//! # Ok::<(), doda_core::error::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithm;
pub mod algorithms;
pub mod convergecast;
pub mod cost;
pub mod data;
pub mod engine;
pub mod error;
pub mod interaction;
pub mod knowledge;
pub mod outcome;
pub mod sequence;
pub mod state;

pub use algorithm::{Decision, DodaAlgorithm, InteractionContext};
pub use engine::{DiscardTransmissions, Engine, EngineConfig, RunStats, TransmissionSink};
pub use interaction::{Interaction, Time, TimedInteraction};
pub use outcome::{ExecutionOutcome, Transmission};
pub use sequence::{InteractionSequence, InteractionSource};

/// Commonly used items, for glob import in examples and benchmarks.
pub mod prelude {
    pub use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};
    pub use crate::algorithms::{
        FutureBroadcast, Gathering, OfflineOptimal, SpanningTreeAggregation, Waiting, WaitingGreedy,
    };
    pub use crate::convergecast::{self, optimal_convergecast};
    pub use crate::cost::{self, Cost};
    pub use crate::data::{Aggregate, Count, IdSet, MaxData, MinData, SumData};
    pub use crate::engine::{
        self, DiscardTransmissions, Engine, EngineConfig, RunStats, TransmissionSink,
    };
    pub use crate::interaction::{Interaction, Time, TimedInteraction};
    pub use crate::knowledge::{FullKnowledge, MeetTime, MeetTimeOracle, OwnFuture};
    pub use crate::outcome::{ExecutionOutcome, Transmission};
    pub use crate::sequence::{AdversaryView, InteractionSequence, InteractionSource};
}
