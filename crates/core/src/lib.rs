//! # Distributed Online Data Aggregation in Dynamic Graphs
//!
//! A from-scratch Rust implementation of the model, algorithms and analysis
//! tools of *"Distributed Online Data Aggregation in Dynamic Graphs"*
//! (Bramas, Masuzawa, Tixeuil — ICDCS 2016).
//!
//! ## The model in one paragraph
//!
//! A dynamic graph is a set of `n` nodes (one of which is the **sink**)
//! plus a sequence of **pairwise interactions** `I = (I_t)`, one per time
//! step, chosen by an adversary. Every node starts with a datum; during an
//! interaction one of the two nodes may transmit its (aggregated) datum to
//! the other — but **each node may transmit at most once**, and after
//! transmitting it is out of the computation. A distributed online data
//! aggregation (DODA) algorithm decides, per interaction, who transmits;
//! the goal is that eventually the sink is the only node owning data.
//!
//! ## What this crate provides
//!
//! * the interaction model: [`Interaction`], [`InteractionSequence`],
//!   streaming [`sequence::InteractionSource`]s and the adaptive-adversary
//!   view;
//! * data and aggregation functions ([`data`]);
//! * the strict one-transmission state machine ([`state::NetworkState`]);
//! * knowledge oracles ([`knowledge`]): `meetTime`, own future, full
//!   knowledge;
//! * the execution engine ([`engine`]);
//! * the paper's algorithms ([`algorithms`]): `Waiting`, `Gathering`,
//!   `WaitingGreedy(τ)`, spanning-tree aggregation, future-broadcast and
//!   the offline optimal;
//! * the offline optimal convergecast and the paper's cost function
//!   ([`convergecast`], [`cost`]).
//!
//! ## Quick start — streaming execution
//!
//! The model is inherently online: the adversary reveals one interaction
//! per step, and the algorithm must decide without seeing the future. The
//! engine mirrors that — it pulls interactions from an
//! [`InteractionSource`] one at a time, so executions run in `O(n)` memory
//! at *any* horizon; no sequence is ever materialised unless an oracle
//! needs one.
//!
//! ```
//! use doda_core::prelude::*;
//! use doda_graph::NodeId;
//!
//! // A streaming adversary: node 1 + t%2 meets the sink at time t. It is
//! // never materialised — the engine pulls one interaction per step.
//! struct Alternating;
//! impl InteractionSource for Alternating {
//!     fn node_count(&self) -> usize {
//!         3
//!     }
//!     fn next_interaction(&mut self, t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
//!         Some(Interaction::new(NodeId(0), NodeId(1 + (t as usize) % 2)))
//!     }
//! }
//!
//! let mut algo = Gathering::new();
//! let outcome = engine::run_with_id_sets(
//!     &mut algo,
//!     &mut Alternating,
//!     NodeId(0),
//!     EngineConfig::sweep(1_000), // budget, since the source is infinite
//! )?;
//! assert!(outcome.terminated());
//! # Ok::<(), doda_core::error::EngineError>(())
//! ```
//!
//! A finite [`InteractionSequence`] is itself a source (via
//! [`InteractionSequence::stream`]), and the bridge back — for the
//! knowledge oracles that genuinely need the future — is
//! [`InteractionSequence::materialize`]:
//!
//! ```
//! use doda_core::prelude::*;
//! use doda_graph::NodeId;
//!
//! // Adversary: nodes 1 and 2 meet, then node 1 meets the sink 0.
//! let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (0, 1)]);
//!
//! let mut algo = Gathering::new();
//! let outcome =
//!     engine::run_with_id_sets(&mut algo, &mut seq.stream(false), NodeId(0), EngineConfig::default())?;
//! assert!(outcome.terminated());
//!
//! // Gathering aggregates 2 into 1 at t=0 and delivers at t=1: optimal here.
//! let cost = cost::cost_of_outcome(&seq, &outcome, 16);
//! assert!(cost.is_optimal());
//! # Ok::<(), doda_core::error::EngineError>(())
//! ```
//!
//! ## Quick start — rounds
//!
//! The paper's adversary schedules **one** interaction per time step, but
//! the broader dynamic-graph setting is *synchronous rounds* in which a
//! whole matching of disjoint edges is live at once. The [`round`] module
//! generalises the streaming model to that setting: a
//! [`round::RoundSource`] yields one validated [`Matching`] per round, and
//! [`Engine::run_rounds`] applies each round as a batch against the
//! preallocated state (disjointness makes batch application *exactly* the
//! synchronous semantics). The interaction clock still ticks once per
//! matched pair, so budgets and throughput mean the same thing in both
//! models — and a stream of singleton rounds is byte-identical to the
//! pairwise path (pinned by `tests/round_equivalence.rs`).
//!
//! ```
//! use doda_core::prelude::*;
//! use doda_graph::NodeId;
//!
//! // A fixed round schedule: outer pairs aggregate first, then drain
//! // into the sink. (Streaming round adversaries implement RoundSource
//! // directly; doda-workloads ships random-matching / tournament /
//! // interval-connected generators.)
//! let mut schedule = MatchingSequence::new(6);
//! schedule.push_round([(1, 2), (3, 4)]); // two disjoint pairs, one round
//! schedule.push_round([(0, 1), (3, 5)]);
//! schedule.push_round([(0, 3)]);
//!
//! let mut engine: Engine<IdSet> = Engine::new();
//! let stats = engine.run_rounds(
//!     &mut Gathering::new(),
//!     &mut schedule.stream(false),
//!     NodeId(0),
//!     IdSet::singleton,
//!     EngineConfig::sweep(1_000),
//!     &mut DiscardTransmissions,
//! )?;
//! assert!(stats.run.terminated());
//! assert_eq!(stats.rounds_processed, 3);
//! assert_eq!(stats.run.interactions_processed, 5); // 2 + 2 + 1
//! assert!(engine.state().data_of(NodeId(0)).unwrap().covers_all(6));
//!
//! // Bridges: SingletonRounds lifts any pairwise source to rounds;
//! // FlattenedRounds plays any round source as a pairwise stream (the
//! // view knowledge oracles and fault plans consume).
//! let flat = InteractionSequence::materialize(
//!     &mut FlattenedRounds::new(schedule.stream(false)),
//!     5,
//! );
//! assert_eq!(flat.len(), 5);
//! # Ok::<(), doda_core::error::EngineError>(())
//! ```
//!
//! ## Fault model semantics
//!
//! The paper assumes a fixed population and perfectly reliable
//! interactions. The [`fault`] module relaxes both as a **composable
//! layer**: a seeded [`fault::FaultProfile`] describes per-step crash and
//! churn probabilities plus per-interaction loss, and
//! [`fault::FaultedSource`] wraps *any* [`InteractionSource`] to
//! interleave those events with the stream. The exact semantics, pinned
//! by the conformance suite in `tests/fault_model_properties.rs`:
//!
//! * **Crash** — the node goes permanently dead. Its datum (if it still
//!   owned one) is destroyed under [`fault::CrashPolicy::DatumLost`] or
//!   salvaged out-of-band under
//!   [`fault::CrashPolicy::DatumRecoverable`]; either way the datum moves
//!   to an accounting bin on [`state::NetworkState`], never silently
//!   vanishing. Crashed nodes are never revived.
//! * **Departure / arrival (churn)** — a departing node takes its datum
//!   out of the system (accounted as lost); a departed, non-crashed node
//!   may later re-arrive with a *fresh* datum, as a new incarnation whose
//!   single-transmission allowance restarts.
//! * **Loss** — a scheduled interaction fails before the algorithm
//!   observes it (also the fate of any contact involving a dead node).
//! * **Invariants** — the sink never crashes or departs, the live
//!   population never drops below [`fault::FaultProfile::min_live`]
//!   (plans that could strand the execution below two live nodes are a
//!   typed [`fault::FaultConfigError`], not a hang), and **data
//!   conservation** holds at every step: every datum ever introduced is
//!   at the sink, in the lost/recovered bins, or owned by a live node —
//!   never duplicated, never dropped.
//!
//! Termination gains a third outcome: [`outcome::Completion`]
//! distinguishes `Aggregated` (the sink got *everything*),
//! `AggregatedSurvivors` (the sink became sole live owner but faults
//! destroyed some data first) and `Starved` (budget or source exhausted
//! early).
//!
//! ```
//! use doda_core::fault::{FaultProfile, FaultedSource};
//! use doda_core::prelude::*;
//! use doda_graph::NodeId;
//!
//! // Every non-sink node meets the sink once per round...
//! let mut round = InteractionSequence::new(6);
//! for i in 1..6 {
//!     round.push(Interaction::new(NodeId(0), NodeId(i)));
//! }
//! // ...but nodes crash along the way (deterministic per seed).
//! let mut faulted = FaultedSource::new(round.stream(true), FaultProfile::crash(0.05), 9)?;
//! let outcome = engine::run_with_id_sets(
//!     &mut Waiting::new(),
//!     &mut faulted,
//!     NodeId(0),
//!     EngineConfig::sweep(10_000),
//! )
//! .expect("valid decisions");
//! assert!(outcome.terminated());
//! // Whatever was not aggregated was lost to a crash — never dropped.
//! let aggregated = outcome.sink_data.as_ref().unwrap().len() as u64;
//! assert_eq!(aggregated + outcome.faults.data_lost, 6);
//! # Ok::<(), doda_core::fault::FaultConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algebra;
pub mod algorithm;
pub mod algorithms;
pub mod byzantine;
pub mod convergecast;
pub mod cost;
pub mod data;
pub mod engine;
pub mod error;
pub mod fault;
pub mod hierarchy;
pub mod interaction;
pub mod knowledge;
pub mod lane;
pub mod outcome;
pub mod round;
pub mod sequence;
pub mod state;

pub use algebra::{Aggregate, AggregateSummary, DistinctSketch, QuantileSketch};
pub use algorithm::{Decision, DodaAlgorithm, InteractionContext};
pub use byzantine::{
    ByzantineConfigError, ByzantineInjector, ByzantineProfile, ByzantineStrategy, Evidence,
    Receipt, ReceiptSink, Tally, Verdict,
};
pub use engine::{
    DiscardTransmissions, Engine, EngineCheckpoint, EngineConfig, RoundRunStats, RunProgress,
    RunStats, StepOutcome, TransmissionSink,
};
pub use fault::{CrashPolicy, FaultConfigError, FaultProfile, FaultedSource};
pub use hierarchy::ClusterPlan;
pub use interaction::{Interaction, Time, TimedInteraction};
pub use lane::{LaneAlgorithm, LaneEngine, LaneRunStats, MAX_LANES};
pub use outcome::{Completion, ExecutionOutcome, FaultTally, Transmission};
pub use round::{FlattenedRounds, Matching, MatchingSequence, RoundSource, SingletonRounds};
pub use sequence::{InteractionSequence, InteractionSource, StepEvent};

/// Commonly used items, for glob import in examples and benchmarks.
pub mod prelude {
    pub use crate::algebra::{AggregateSummary, DistinctSketch, QuantileSketch};
    pub use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};
    pub use crate::algorithms::{
        FutureBroadcast, Gathering, OfflineOptimal, SpanningTreeAggregation, Waiting, WaitingGreedy,
    };
    pub use crate::byzantine::{
        ByzantineConfigError, ByzantineInjector, ByzantineProfile, ByzantineStrategy, Evidence,
        Receipt, ReceiptSink, Tally, Verdict,
    };
    pub use crate::convergecast::{self, optimal_convergecast};
    pub use crate::cost::{self, Cost};
    pub use crate::data::{Aggregate, Count, IdSet, MaxData, MinData, SumData};
    pub use crate::engine::{
        self, DiscardTransmissions, Engine, EngineCheckpoint, EngineConfig, RoundRunStats,
        RunProgress, RunStats, StepOutcome, TransmissionSink,
    };
    pub use crate::fault::{CrashPolicy, FaultConfigError, FaultProfile, FaultedSource};
    pub use crate::hierarchy::ClusterPlan;
    pub use crate::interaction::{Interaction, Time, TimedInteraction};
    pub use crate::knowledge::{FullKnowledge, MeetTime, MeetTimeOracle, OwnFuture};
    pub use crate::lane::{LaneAlgorithm, LaneEngine, LaneRunStats, MAX_LANES};
    pub use crate::outcome::{Completion, ExecutionOutcome, FaultTally, Transmission};
    pub use crate::round::{
        FlattenedRounds, Matching, MatchingSequence, RoundSource, SingletonRounds,
    };
    pub use crate::sequence::{AdversaryView, InteractionSequence, InteractionSource, StepEvent};
}
