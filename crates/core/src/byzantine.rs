//! The Byzantine data plane: lying nodes, transfer receipts, and the
//! sink-side tally that classifies a run.
//!
//! The paper's adversary controls the *schedule*; the fault model
//! ([`crate::fault`]) covers *honest* failures (crash, churn, loss). This
//! module adds the missing axis: nodes that participate in the schedule
//! exactly as asked but **lie on the data plane** while doing so. A
//! [`ByzantineProfile`] picks a seeded fraction of non-sink nodes and a
//! [`ByzantineStrategy`]; during the audited execution
//! ([`crate::engine::Engine::run_audited`]) each lying node corrupts the
//! one transmission the model allows it:
//!
//! * [`Forge`] — mint a datum that was never introduced and merge it into
//!   the carried aggregate before transmitting;
//! * [`Duplicate`] — deliver the carried aggregate twice (an
//!   at-least-once replay);
//! * [`DropCarried`] — claim to transmit but deliver nothing; the carried
//!   aggregate silently vanishes;
//! * [`Equivocate`] — discard everything aggregated so far and transmit a
//!   fresh self-datum instead.
//!
//! The schedule is untouched: oracles, adversaries and fault plans
//! compose unchanged, and a profile with zero lying nodes reproduces the
//! honest execution byte for byte (pinned by
//! `tests/byzantine_conformance.rs`).
//!
//! # Auditable aggregation
//!
//! Every applied transmission — honest or not — produces a [`Receipt`]
//! keyed by the interaction index: the transfer log a verifying sink
//! would keep. Receipts feed any [`ReceiptSink`]; the interesting one is
//! [`Tally`], which accumulates the carried/delivered unit ledger and
//! classifies the run via [`Tally::verdict`]:
//!
//! * **`Clean`** — no transfer was corrupted;
//! * **`Detected`** — the aggregate is *exactly conserved*
//!   ([`Aggregate::EXACT_CONSERVATION`]): cross-checking the sink value
//!   against the receipt ledger exposes the discrepancy, with the first
//!   corrupted transfer as [`Evidence`];
//! * **`Tolerated`** — the aggregate absorbs this strategy by
//!   construction (e.g. [`Aggregate::DUPLICATE_INSENSITIVE`] sketches
//!   under [`Duplicate`]): the value is still right, no alarm needed;
//! * **`Corrupted`** — the aggregate can neither detect nor absorb the
//!   lie: the sink value is silently wrong.
//!
//! Which aggregate lands where for which strategy is pinned by the
//! conformance suite; see the detect/tolerate matrix in the README.
//!
//! [`Forge`]: ByzantineStrategy::Forge
//! [`Duplicate`]: ByzantineStrategy::Duplicate
//! [`DropCarried`]: ByzantineStrategy::DropCarried
//! [`Equivocate`]: ByzantineStrategy::Equivocate

use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng, SeedSequence};
use rand::Rng;

use crate::data::Aggregate;
use crate::interaction::Time;

/// How a lying node corrupts the one transmission it is allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineStrategy {
    /// Merge a forged datum — one that was never introduced into the
    /// population — into the carried aggregate before transmitting.
    Forge,
    /// Deliver the carried aggregate twice (an at-least-once replay):
    /// duplicate-sensitive aggregates double-count it.
    Duplicate,
    /// Claim to transmit but deliver nothing: the carried aggregate
    /// silently vanishes from the protocol.
    DropCarried,
    /// Discard everything aggregated so far and transmit a fresh
    /// self-datum instead, shedding every merged contribution.
    Equivocate,
}

impl ByzantineStrategy {
    /// A stable, human-readable label: `"forge"`, `"duplicate"`,
    /// `"drop-carried"`, `"equivocate"`.
    pub fn label(&self) -> &'static str {
        match self {
            ByzantineStrategy::Forge => "forge",
            ByzantineStrategy::Duplicate => "duplicate",
            ByzantineStrategy::DropCarried => "drop-carried",
            ByzantineStrategy::Equivocate => "equivocate",
        }
    }
}

/// An invalid Byzantine configuration, rejected before execution —
/// the [`crate::fault::FaultConfigError`] analogue for the data plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ByzantineConfigError {
    /// The lying-node fraction is outside `[0, 1]` (or not finite).
    InvalidFraction {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for ByzantineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ByzantineConfigError::InvalidFraction { value } => {
                write!(f, "byzantine fraction {value} is outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ByzantineConfigError {}

/// A seeded Byzantine plan: the fraction of lying nodes and the strategy
/// they all follow.
///
/// The profile is pure configuration (`Copy`, comparable, serialisable
/// by label); the stateful injector built from it is
/// [`ByzantineInjector`]. A fraction of `0` is a valid plan with zero
/// liars — the audited execution then reproduces the honest one byte for
/// byte (wrapper transparency, pinned by the conformance suite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantineProfile {
    /// Fraction of the population (rounded to the nearest node count,
    /// sink excluded) that lies on the data plane.
    pub fraction: f64,
    /// The strategy every lying node follows.
    pub strategy: ByzantineStrategy,
}

impl ByzantineProfile {
    /// A plan where `fraction` of the nodes forge data
    /// ([`ByzantineStrategy::Forge`]).
    pub fn forge(fraction: f64) -> Self {
        ByzantineProfile {
            fraction,
            strategy: ByzantineStrategy::Forge,
        }
    }

    /// A plan where `fraction` of the nodes deliver twice
    /// ([`ByzantineStrategy::Duplicate`]).
    pub fn duplicate(fraction: f64) -> Self {
        ByzantineProfile {
            fraction,
            strategy: ByzantineStrategy::Duplicate,
        }
    }

    /// A plan where `fraction` of the nodes drop their carried aggregate
    /// ([`ByzantineStrategy::DropCarried`]).
    pub fn drop_carried(fraction: f64) -> Self {
        ByzantineProfile {
            fraction,
            strategy: ByzantineStrategy::DropCarried,
        }
    }

    /// A plan where `fraction` of the nodes equivocate
    /// ([`ByzantineStrategy::Equivocate`]).
    pub fn equivocate(fraction: f64) -> Self {
        ByzantineProfile {
            fraction,
            strategy: ByzantineStrategy::Equivocate,
        }
    }

    /// `true` iff the plan fields no liars at all.
    pub fn is_none(&self) -> bool {
        self.fraction == 0.0
    }

    /// A stable, human-readable label for registries, reports and
    /// `BENCH_*.json`: `"none"`, or e.g. `"forge(0.1)"`.
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        format!("{}({})", self.strategy.label(), self.fraction)
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns a [`ByzantineConfigError`] if the fraction is outside
    /// `[0, 1]` or not finite.
    pub fn validate(&self) -> Result<(), ByzantineConfigError> {
        if !(0.0..=1.0).contains(&self.fraction) || !self.fraction.is_finite() {
            return Err(ByzantineConfigError::InvalidFraction {
                value: self.fraction,
            });
        }
        Ok(())
    }
}

/// The stateful Byzantine plan for one population: the seeded set of
/// lying nodes plus the forgery stream.
///
/// The liar set is a pure function of `(profile, n, sink, seed)` — the
/// sink is never a liar — and stays fixed for the injector's lifetime;
/// only the forgery stream (which origins a [`Forge`] liar mints) is
/// stateful, and [`ByzantineInjector::reset`] rewinds it, so one injector
/// can be reused across executions deterministically (the engine resets
/// it at the start of every audited run).
///
/// [`Forge`]: ByzantineStrategy::Forge
#[derive(Debug, Clone)]
pub struct ByzantineInjector {
    profile: ByzantineProfile,
    forge_seed: u64,
    liars: Vec<bool>,
    liar_count: usize,
    rng: DodaRng,
}

impl ByzantineInjector {
    /// Builds the injector for a population of `n` nodes with the given
    /// sink, drawing the liar subset and the forgery stream from
    /// dedicated sub-streams of `seed`.
    ///
    /// # Errors
    ///
    /// Returns a [`ByzantineConfigError`] if the profile is invalid (see
    /// [`ByzantineProfile::validate`]).
    pub fn new(
        profile: ByzantineProfile,
        n: usize,
        sink: NodeId,
        seed: u64,
    ) -> Result<Self, ByzantineConfigError> {
        profile.validate()?;
        let seeds = SeedSequence::new(seed);
        let mut select_rng = seeded_rng(seeds.seed(0));
        let forge_seed = seeds.seed(1);
        let mut liars = vec![false; n];
        let mut pool: Vec<usize> = (0..n).filter(|&i| NodeId(i) != sink).collect();
        let target = ((n as f64) * profile.fraction).round() as usize;
        let count = target.min(pool.len());
        // Partial Fisher–Yates: the first `count` slots become the liar
        // subset, uniformly over all subsets of that size.
        for k in 0..count {
            let j = select_rng.gen_range(k..pool.len());
            pool.swap(k, j);
            liars[pool[k]] = true;
        }
        Ok(ByzantineInjector {
            profile,
            forge_seed,
            liars,
            liar_count: count,
            rng: seeded_rng(forge_seed),
        })
    }

    /// The profile in force.
    pub fn profile(&self) -> &ByzantineProfile {
        &self.profile
    }

    /// The strategy every liar follows.
    pub fn strategy(&self) -> ByzantineStrategy {
        self.profile.strategy
    }

    /// Number of lying nodes in this population.
    pub fn liar_count(&self) -> usize {
        self.liar_count
    }

    /// `true` if `node` lies on the data plane.
    pub fn is_liar(&self, node: NodeId) -> bool {
        self.liars.get(node.index()).copied().unwrap_or(false)
    }

    /// Rewinds the forgery stream for a fresh execution (the liar set is
    /// seed-determined and never changes).
    pub fn reset(&mut self) {
        self.rng = seeded_rng(self.forge_seed);
    }

    /// The origin a [`ByzantineStrategy::Forge`] liar mints its forged
    /// datum from: a uniformly chosen node id, drawn from the dedicated
    /// forgery stream.
    pub fn forged_origin(&mut self, n: usize) -> NodeId {
        NodeId(self.rng.gen_range(0..n))
    }
}

/// One applied transmission as the audit trail records it: the transfer
/// log entry a verifying sink keeps, keyed by the interaction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    /// Interaction index at which the transfer was applied.
    pub time: Time,
    /// The transmitting node.
    pub sender: NodeId,
    /// The receiving node.
    pub receiver: NodeId,
    /// Original data units the sender carried going into the transfer.
    pub carried_units: u64,
    /// Original data units actually delivered to the receiver
    /// (`carried_units` for an honest transfer).
    pub delivered_units: u64,
    /// `Some(strategy)` when the sender lied on this transfer.
    pub corruption: Option<ByzantineStrategy>,
}

impl Receipt {
    /// `true` when the transfer was honest: nothing forged, dropped,
    /// duplicated or replaced.
    pub fn is_honest(&self) -> bool {
        self.corruption.is_none()
    }
}

/// Observer of audit receipts, called once per applied transmission in
/// time order by [`crate::engine::Engine::run_audited`] — the
/// [`crate::engine::TransmissionSink`] analogue for the audit trail.
pub trait ReceiptSink {
    /// Records one transfer receipt.
    fn record(&mut self, receipt: Receipt);
}

impl ReceiptSink for Vec<Receipt> {
    #[inline]
    fn record(&mut self, receipt: Receipt) {
        self.push(receipt);
    }
}

/// The first corrupted transfer of a run: who lied, when, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evidence {
    /// Interaction index of the corrupted transfer.
    pub time: Time,
    /// The lying node.
    pub liar: NodeId,
    /// The strategy it applied.
    pub strategy: ByzantineStrategy,
}

/// How a run classifies once the receipt ledger is reconciled against
/// the aggregate's guarantees — the figure of merit of the Byzantine
/// axis, carried on `TrialResult` and over the service wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No transfer was corrupted.
    Clean,
    /// The aggregate is exactly conserved and the ledger exposes the
    /// discrepancy: the corruption is caught, with evidence.
    Detected {
        /// The first corrupted transfer.
        evidence: Evidence,
    },
    /// The aggregate absorbs this strategy by construction: the value is
    /// still right despite the lie.
    Tolerated,
    /// The aggregate can neither detect nor absorb the lie: the sink
    /// value is silently wrong.
    Corrupted,
}

impl Verdict {
    /// A stable, human-readable label: `"clean"`, `"detected"`,
    /// `"tolerated"`, `"corrupted"`.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::Detected { .. } => "detected",
            Verdict::Tolerated => "tolerated",
            Verdict::Corrupted => "corrupted",
        }
    }
}

/// The sink-side audit accumulator: a constant-size reduction of the
/// receipt ledger, enough to classify the run via [`Tally::verdict`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    transfers: u64,
    corrupted: u64,
    carried_units: u64,
    delivered_units: u64,
    first_evidence: Option<Evidence>,
}

impl Tally {
    /// A fresh tally with no receipts recorded.
    pub fn new() -> Self {
        Tally::default()
    }

    /// Total transfers recorded (honest and corrupted).
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Corrupted transfers recorded.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Sum of the units senders carried into their transfers.
    pub fn carried_units(&self) -> u64 {
        self.carried_units
    }

    /// Sum of the units actually delivered: differs from
    /// [`Tally::carried_units`] exactly when a corrupting transfer
    /// slipped into the run.
    pub fn delivered_units(&self) -> u64 {
        self.delivered_units
    }

    /// The first corrupted transfer, if any.
    pub fn first_evidence(&self) -> Option<Evidence> {
        self.first_evidence
    }

    /// `true` when no corrupted transfer was recorded.
    pub fn is_clean(&self) -> bool {
        self.corrupted == 0
    }

    /// Classifies the run for an aggregate of type `A`: the corruption
    /// evidence in the ledger reconciled against the aggregate's
    /// guarantees ([`Aggregate::EXACT_CONSERVATION`],
    /// [`Aggregate::DUPLICATE_INSENSITIVE`], [`Aggregate::IDEMPOTENT`]).
    ///
    /// * No corrupted transfer → [`Verdict::Clean`].
    /// * [`Duplicate`](ByzantineStrategy::Duplicate) — absorbed by
    ///   duplicate-insensitive aggregates ([`Verdict::Tolerated`]),
    ///   caught by exactly conserved ones ([`Verdict::Detected`]),
    ///   silent otherwise.
    /// * [`Forge`](ByzantineStrategy::Forge) — caught by exactly
    ///   conserved aggregates; idempotent range-bounded aggregates
    ///   absorb a forged initial datum; silent otherwise.
    /// * [`DropCarried`](ByzantineStrategy::DropCarried) /
    ///   [`Equivocate`](ByzantineStrategy::Equivocate) — caught by
    ///   exactly conserved aggregates, silent for everything else
    ///   (a dropped contribution cannot be told from one that never
    ///   arrived).
    pub fn verdict<A: Aggregate>(&self) -> Verdict {
        let Some(evidence) = self.first_evidence else {
            return Verdict::Clean;
        };
        match evidence.strategy {
            ByzantineStrategy::Duplicate => {
                if A::DUPLICATE_INSENSITIVE {
                    Verdict::Tolerated
                } else if A::EXACT_CONSERVATION {
                    Verdict::Detected { evidence }
                } else {
                    Verdict::Corrupted
                }
            }
            ByzantineStrategy::Forge => {
                if A::EXACT_CONSERVATION {
                    Verdict::Detected { evidence }
                } else if A::IDEMPOTENT {
                    Verdict::Tolerated
                } else {
                    Verdict::Corrupted
                }
            }
            ByzantineStrategy::DropCarried | ByzantineStrategy::Equivocate => {
                if A::EXACT_CONSERVATION {
                    Verdict::Detected { evidence }
                } else {
                    Verdict::Corrupted
                }
            }
        }
    }
}

impl ReceiptSink for Tally {
    fn record(&mut self, receipt: Receipt) {
        self.transfers += 1;
        self.carried_units += receipt.carried_units;
        self.delivered_units += receipt.delivered_units;
        if let Some(strategy) = receipt.corruption {
            self.corrupted += 1;
            if self.first_evidence.is_none() {
                self.first_evidence = Some(Evidence {
                    time: receipt.time,
                    liar: receipt.sender,
                    strategy,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{DistinctSketch, QuantileSketch};
    use crate::data::{Count, IdSet, MaxData, MinData, SumData};

    fn receipt(time: Time, sender: usize, corruption: Option<ByzantineStrategy>) -> Receipt {
        Receipt {
            time,
            sender: NodeId(sender),
            receiver: NodeId(0),
            carried_units: 2,
            delivered_units: if corruption.is_some() { 3 } else { 2 },
            corruption,
        }
    }

    #[test]
    fn profile_labels_are_stable() {
        assert_eq!(ByzantineProfile::forge(0.1).label(), "forge(0.1)");
        assert_eq!(ByzantineProfile::duplicate(0.25).label(), "duplicate(0.25)");
        assert_eq!(
            ByzantineProfile::drop_carried(0.5).label(),
            "drop-carried(0.5)"
        );
        assert_eq!(
            ByzantineProfile::equivocate(0.05).label(),
            "equivocate(0.05)"
        );
        assert_eq!(ByzantineProfile::forge(0.0).label(), "none");
        assert!(ByzantineProfile::forge(0.0).is_none());
        assert!(!ByzantineProfile::forge(0.1).is_none());
    }

    #[test]
    fn profile_validation_rejects_bad_fractions() {
        assert!(ByzantineProfile::forge(0.0).validate().is_ok());
        assert!(ByzantineProfile::forge(1.0).validate().is_ok());
        for bad in [-0.1, 1.5, f64::NAN, f64::INFINITY] {
            let err = ByzantineProfile::forge(bad).validate().unwrap_err();
            assert!(matches!(err, ByzantineConfigError::InvalidFraction { .. }));
            assert!(err.to_string().contains("outside [0, 1]"));
        }
    }

    #[test]
    fn liar_selection_is_seeded_sink_free_and_sized() {
        let profile = ByzantineProfile::forge(0.3);
        let a = ByzantineInjector::new(profile, 20, NodeId(0), 7).unwrap();
        let b = ByzantineInjector::new(profile, 20, NodeId(0), 7).unwrap();
        let c = ByzantineInjector::new(profile, 20, NodeId(0), 8).unwrap();
        assert_eq!(a.liar_count(), 6);
        assert!(!a.is_liar(NodeId(0)), "the sink never lies");
        let liars = |inj: &ByzantineInjector| -> Vec<bool> {
            (0..20).map(|i| inj.is_liar(NodeId(i))).collect()
        };
        assert_eq!(liars(&a), liars(&b), "same seed, same liars");
        assert_ne!(liars(&a), liars(&c), "seeds vary the subset");
    }

    #[test]
    fn zero_fraction_fields_no_liars_and_full_fraction_spares_the_sink() {
        let none = ByzantineInjector::new(ByzantineProfile::forge(0.0), 10, NodeId(0), 1).unwrap();
        assert_eq!(none.liar_count(), 0);
        let all = ByzantineInjector::new(ByzantineProfile::forge(1.0), 10, NodeId(3), 1).unwrap();
        assert_eq!(all.liar_count(), 9, "everyone but the sink");
        assert!(!all.is_liar(NodeId(3)));
    }

    #[test]
    fn forgery_stream_is_deterministic_and_reset_rewinds_it() {
        let mut inj =
            ByzantineInjector::new(ByzantineProfile::forge(0.2), 16, NodeId(0), 42).unwrap();
        let first: Vec<NodeId> = (0..8).map(|_| inj.forged_origin(16)).collect();
        inj.reset();
        let second: Vec<NodeId> = (0..8).map(|_| inj.forged_origin(16)).collect();
        assert_eq!(first, second, "reset must rewind the forgery stream");
        assert!(first.iter().all(|v| v.index() < 16));
    }

    #[test]
    fn tally_accumulates_the_ledger_and_keeps_first_evidence() {
        let mut tally = Tally::new();
        assert!(tally.is_clean());
        assert_eq!(tally.verdict::<Count>(), Verdict::Clean);
        tally.record(receipt(3, 4, None));
        assert!(tally.is_clean());
        tally.record(receipt(5, 2, Some(ByzantineStrategy::Forge)));
        tally.record(receipt(9, 7, Some(ByzantineStrategy::Forge)));
        assert_eq!(tally.transfers(), 3);
        assert_eq!(tally.corrupted(), 2);
        assert_eq!(tally.carried_units(), 6);
        assert_eq!(tally.delivered_units(), 8);
        let evidence = tally.first_evidence().unwrap();
        assert_eq!(evidence.time, 5);
        assert_eq!(evidence.liar, NodeId(2));
        assert_eq!(evidence.strategy, ByzantineStrategy::Forge);
        assert_eq!(tally.verdict::<Count>(), Verdict::Detected { evidence });
    }

    #[test]
    fn verdict_matrix_matches_the_aggregate_guarantees() {
        use ByzantineStrategy::*;
        fn tally_for(strategy: ByzantineStrategy) -> Tally {
            let mut tally = Tally::new();
            tally.record(receipt(1, 2, Some(strategy)));
            tally
        }
        // Exactly conserved aggregates detect every strategy.
        for strategy in [Forge, Duplicate, DropCarried, Equivocate] {
            let tally = tally_for(strategy);
            assert!(
                matches!(tally.verdict::<Count>(), Verdict::Detected { .. }),
                "{strategy:?}"
            );
            assert!(matches!(
                tally.verdict::<SumData>(),
                Verdict::Detected { .. }
            ));
        }
        // IdSet is exactly conserved *and* duplicate-insensitive: the
        // tolerance wins for Duplicate (the value is provably unchanged).
        assert_eq!(tally_for(Duplicate).verdict::<IdSet>(), Verdict::Tolerated);
        assert!(matches!(
            tally_for(Forge).verdict::<IdSet>(),
            Verdict::Detected { .. }
        ));
        // Idempotent sketches and order statistics absorb forgery and
        // duplication, but silently lose dropped contributions.
        for strategy in [Forge, Duplicate] {
            assert_eq!(tally_for(strategy).verdict::<MinData>(), Verdict::Tolerated);
            assert_eq!(tally_for(strategy).verdict::<MaxData>(), Verdict::Tolerated);
            assert_eq!(
                tally_for(strategy).verdict::<DistinctSketch>(),
                Verdict::Tolerated
            );
        }
        for strategy in [DropCarried, Equivocate] {
            assert_eq!(tally_for(strategy).verdict::<MinData>(), Verdict::Corrupted);
            assert_eq!(
                tally_for(strategy).verdict::<DistinctSketch>(),
                Verdict::Corrupted
            );
        }
        // The quantile sketch has no guarantee to lean on at all.
        for strategy in [Forge, Duplicate, DropCarried, Equivocate] {
            assert_eq!(
                tally_for(strategy).verdict::<QuantileSketch>(),
                Verdict::Corrupted,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn verdict_labels_are_stable() {
        assert_eq!(Verdict::Clean.label(), "clean");
        assert_eq!(Verdict::Tolerated.label(), "tolerated");
        assert_eq!(Verdict::Corrupted.label(), "corrupted");
        let detected = Verdict::Detected {
            evidence: Evidence {
                time: 0,
                liar: NodeId(1),
                strategy: ByzantineStrategy::Forge,
            },
        };
        assert_eq!(detected.label(), "detected");
    }

    #[test]
    fn receipts_collect_into_a_vec_sink() {
        let mut log: Vec<Receipt> = Vec::new();
        log.record(receipt(0, 1, None));
        log.record(receipt(1, 2, Some(ByzantineStrategy::Duplicate)));
        assert_eq!(log.len(), 2);
        assert!(log[0].is_honest());
        assert!(!log[1].is_honest());
    }
}
