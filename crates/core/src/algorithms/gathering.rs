//! The Gathering algorithm.
//!
//! "A node transmits its data when it is connected to the sink `s` or to a
//! node having data" (Section 4). Gathering terminates in `O(n²)` expected
//! interactions against the randomized adversary (Theorem 9), matching the
//! `Ω(n²)` lower bound for knowledge-free algorithms (Theorem 7): it is
//! optimal in `DODA` without knowledge (Corollary 2).

use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};

/// The Gathering algorithm: always aggregate when possible.
///
/// When the sink is involved the other node transmits to it; otherwise the
/// paper's tie-break applies — the interacting nodes are presented ordered
/// by identifier and the first one (`u1`, the smaller id) is the receiver.
///
/// Oblivious and knowledge-free (`GA ∈ D∅ODA`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gathering;

impl Gathering {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Gathering
    }
}

impl DodaAlgorithm for Gathering {
    fn name(&self) -> &str {
        "Gathering"
    }

    fn decide(&mut self, ctx: &InteractionContext) -> Decision {
        if !ctx.both_own_data() {
            return Decision::Idle;
        }
        if ctx.involves_sink() {
            Decision::transmit_to(ctx.sink, ctx.interaction)
        } else {
            // Receiver u1 = smaller id, sender u2 = larger id.
            Decision::Transmit {
                sender: ctx.interaction.max(),
                receiver: ctx.interaction.min(),
            }
        }
    }

    fn is_oblivious(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::Interaction;
    use doda_graph::NodeId;

    fn ctx(pair: (usize, usize), owns: (bool, bool), sink: usize) -> InteractionContext {
        InteractionContext {
            time: 0,
            interaction: Interaction::new(NodeId(pair.0), NodeId(pair.1)),
            min_owns_data: owns.0,
            max_owns_data: owns.1,
            sink: NodeId(sink),
        }
    }

    #[test]
    fn sink_always_receives() {
        let mut g = Gathering::new();
        let d = g.decide(&ctx((2, 0), (true, true), 0));
        assert_eq!(
            d,
            Decision::Transmit {
                sender: NodeId(2),
                receiver: NodeId(0)
            }
        );
    }

    #[test]
    fn non_sink_pairs_aggregate_toward_smaller_id() {
        let mut g = Gathering::new();
        let d = g.decide(&ctx((5, 3), (true, true), 0));
        assert_eq!(
            d,
            Decision::Transmit {
                sender: NodeId(5),
                receiver: NodeId(3)
            }
        );
    }

    #[test]
    fn idle_without_mutual_data() {
        let mut g = Gathering::new();
        assert_eq!(g.decide(&ctx((1, 2), (false, true), 0)), Decision::Idle);
        assert_eq!(g.decide(&ctx((1, 2), (true, false), 0)), Decision::Idle);
        assert_eq!(g.decide(&ctx((0, 2), (true, false), 0)), Decision::Idle);
    }

    #[test]
    fn metadata() {
        let g = Gathering::new();
        assert!(g.is_oblivious());
        assert_eq!(g.name(), "Gathering");
    }
}
