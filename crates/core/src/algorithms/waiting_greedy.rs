//! The Waiting Greedy algorithm.
//!
//! Waiting Greedy with parameter `τ` (`WG_τ ∈ D∅ODA(meetTime)`,
//! Section 4): when two data-owning nodes interact, "the node with the
//! greatest meet time transmits, if its meet time is greater than `τ`".
//! Nodes that will meet the sink before the horizon `τ` hold on to their
//! data and deliver it directly; the others offload onto them. After time
//! `τ` the rule degenerates into Gathering.
//!
//! With `τ = Θ(n^{3/2}·√(log n))` the algorithm terminates within `τ`
//! interactions w.h.p. (Theorem 10, Corollary 3), and no algorithm knowing
//! only `meetTime` can do better (Theorem 11).

use doda_graph::NodeId;

use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};
use crate::interaction::Time;
use crate::knowledge::MeetTimeOracle;
use crate::sequence::InteractionSequence;

/// The Waiting Greedy algorithm with horizon parameter `τ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitingGreedy {
    tau: Time,
    oracle: MeetTimeOracle,
}

impl WaitingGreedy {
    /// Creates the algorithm with an explicit horizon `τ` and a meetTime
    /// oracle (built from the adversary's sequence for the intended sink).
    pub fn new(tau: Time, oracle: MeetTimeOracle) -> Self {
        WaitingGreedy { tau, oracle }
    }

    /// Creates the algorithm with the paper's recommended horizon
    /// `τ = n^{3/2}·√(log n)` (Corollary 3), where `n` is the node count of
    /// `seq`, building the meetTime oracle from `seq`.
    pub fn with_recommended_tau(seq: &InteractionSequence, sink: NodeId) -> Self {
        let tau = doda_stats::harmonic::waiting_greedy_tau(seq.node_count());
        WaitingGreedy {
            tau,
            oracle: MeetTimeOracle::new(seq, sink),
        }
    }

    /// The horizon parameter `τ`.
    pub fn tau(&self) -> Time {
        self.tau
    }
}

impl DodaAlgorithm for WaitingGreedy {
    fn name(&self) -> &str {
        "WaitingGreedy"
    }

    fn decide(&mut self, ctx: &InteractionContext) -> Decision {
        if !ctx.both_own_data() {
            return Decision::Idle;
        }
        let (u1, u2) = ctx.interaction.pair();
        let m1 = self.oracle.meet_time(u1, ctx.time);
        let m2 = self.oracle.meet_time(u2, ctx.time);
        // The node with the greatest meetTime transmits, provided that
        // meetTime exceeds τ; the other node is the receiver.
        if m1 <= m2 && m2.exceeds(self.tau) {
            Decision::Transmit {
                sender: u2,
                receiver: u1,
            }
        } else if m1 > m2 && m1.exceeds(self.tau) {
            Decision::Transmit {
                sender: u1,
                receiver: u2,
            }
        } else {
            Decision::Idle
        }
    }

    // The decision depends only on the current interaction, the time and
    // the meetTime knowledge: nodes need no persistent memory.
    fn is_oblivious(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::Interaction;

    /// Sink 0. Node 1 meets the sink at time 10 (before τ); node 2 meets the
    /// sink at time 100 (after τ); node 3 never meets the sink.
    fn oracle() -> MeetTimeOracle {
        let mut seq = InteractionSequence::new(4);
        for t in 0..101u64 {
            let i = match t {
                10 => Interaction::new(NodeId(0), NodeId(1)),
                100 => Interaction::new(NodeId(0), NodeId(2)),
                _ => Interaction::new(NodeId(1), NodeId(2)),
            };
            let _ = t;
            seq.push(i);
        }
        MeetTimeOracle::new(&seq, NodeId(0))
    }

    fn ctx(pair: (usize, usize), time: Time, owns: (bool, bool)) -> InteractionContext {
        InteractionContext {
            time,
            interaction: Interaction::new(NodeId(pair.0), NodeId(pair.1)),
            min_owns_data: owns.0,
            max_owns_data: owns.1,
            sink: NodeId(0),
        }
    }

    #[test]
    fn node_meeting_sink_late_offloads_to_node_meeting_it_early() {
        let mut wg = WaitingGreedy::new(50, oracle());
        assert_eq!(wg.tau(), 50);
        // Node 1 meets the sink at 10 <= τ, node 2 at 100 > τ: node 2 (greater
        // meet time, exceeding τ) transmits to node 1.
        let d = wg.decide(&ctx((1, 2), 0, (true, true)));
        assert_eq!(
            d,
            Decision::Transmit {
                sender: NodeId(2),
                receiver: NodeId(1)
            }
        );
    }

    #[test]
    fn both_meeting_sink_before_tau_wait() {
        let mut wg = WaitingGreedy::new(200, oracle());
        // τ = 200: both nodes meet the sink before τ, so nobody transmits.
        assert_eq!(wg.decide(&ctx((1, 2), 0, (true, true))), Decision::Idle);
    }

    #[test]
    fn node_never_meeting_sink_always_transmits_to_peer() {
        let mut wg = WaitingGreedy::new(50, oracle());
        // Node 3 never meets the sink (meetTime = ∞ > τ), node 1 meets at 10.
        let d = wg.decide(&ctx((1, 3), 0, (true, true)));
        assert_eq!(
            d,
            Decision::Transmit {
                sender: NodeId(3),
                receiver: NodeId(1)
            }
        );
    }

    #[test]
    fn interaction_with_sink_behaves_per_meet_time_rule() {
        let mut wg = WaitingGreedy::new(50, oracle());
        // Sink's meetTime is the identity (t). Node 2's next meeting is 100 > τ,
        // so node 2 transmits to the sink.
        let d = wg.decide(&ctx((0, 2), 5, (true, true)));
        assert_eq!(
            d,
            Decision::Transmit {
                sender: NodeId(2),
                receiver: NodeId(0)
            }
        );
        // Node 1's next meeting is 10 <= τ: it waits even when facing the sink
        // right now (the algorithm's literal rule from the paper).
        assert_eq!(wg.decide(&ctx((0, 1), 5, (true, true))), Decision::Idle);
    }

    #[test]
    fn after_tau_the_rule_degenerates_into_gathering() {
        let mut wg = WaitingGreedy::new(50, oracle());
        // At time 60 > τ every future meet time exceeds τ, so someone always
        // transmits when both own data.
        let d = wg.decide(&ctx((1, 2), 60, (true, true)));
        assert!(!d.is_idle());
    }

    #[test]
    fn idle_without_mutual_data() {
        let mut wg = WaitingGreedy::new(50, oracle());
        assert_eq!(wg.decide(&ctx((1, 2), 0, (false, true))), Decision::Idle);
        assert_eq!(wg.decide(&ctx((1, 2), 0, (true, false))), Decision::Idle);
    }

    #[test]
    fn recommended_tau_matches_closed_form() {
        let seq = InteractionSequence::from_pairs(16, vec![(0, 1), (2, 3)]);
        let wg = WaitingGreedy::with_recommended_tau(&seq, NodeId(0));
        assert_eq!(wg.tau(), doda_stats::harmonic::waiting_greedy_tau(16));
        assert!(wg.is_oblivious());
        assert_eq!(wg.name(), "WaitingGreedy");
    }
}
