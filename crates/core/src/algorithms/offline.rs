//! The offline optimal algorithm (full knowledge).
//!
//! With full knowledge of the sequence of interactions, the best possible
//! algorithm simply computes an optimal convergecast schedule and follows
//! it; against the randomized adversary it terminates in `Θ(n log n)`
//! interactions in expectation and w.h.p. (Theorem 8). Its cost is 1 on
//! every sequence on which a convergecast exists.

use doda_graph::NodeId;

use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};
use crate::convergecast::{optimal_convergecast, ConvergecastSchedule};
use crate::knowledge::FullKnowledge;

/// The offline optimal algorithm: follow a pre-computed optimal
/// convergecast schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineOptimal {
    schedule: Option<ConvergecastSchedule>,
}

impl OfflineOptimal {
    /// Builds the algorithm from full knowledge of the interaction sequence.
    ///
    /// If no convergecast exists on the sequence, the algorithm holds no
    /// schedule and never transmits (no algorithm could terminate on such a
    /// sequence).
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range for the sequence's node count.
    pub fn new(knowledge: &FullKnowledge, sink: NodeId) -> Self {
        OfflineOptimal {
            schedule: optimal_convergecast(knowledge.sequence(), sink, 0),
        }
    }

    /// The schedule being followed, if a convergecast exists.
    pub fn schedule(&self) -> Option<&ConvergecastSchedule> {
        self.schedule.as_ref()
    }
}

impl DodaAlgorithm for OfflineOptimal {
    fn name(&self) -> &str {
        "OfflineOptimal"
    }

    fn decide(&mut self, ctx: &InteractionContext) -> Decision {
        let Some(schedule) = &self.schedule else {
            return Decision::Idle;
        };
        match schedule.transmission_at(ctx.time) {
            Some(tr) if ctx.both_own_data() => Decision::Transmit {
                sender: tr.sender,
                receiver: tr.receiver,
            },
            _ => Decision::Idle,
        }
    }

    fn is_oblivious(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost_of_outcome, Cost};
    use crate::engine::{run_with_id_sets, EngineConfig};
    use crate::sequence::InteractionSequence;

    #[test]
    fn follows_the_optimal_schedule_exactly() {
        // 1 and 2 can merge at t=0; the merged data reaches the sink at t=1.
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (0, 2), (0, 1)]);
        let mut algo = OfflineOptimal::new(&FullKnowledge::new(seq.clone()), NodeId(0));
        assert!(algo.schedule().is_some());
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert_eq!(outcome.termination_time, Some(1));
        assert!(outcome.sink_data.as_ref().unwrap().covers_all(3));
        assert_eq!(cost_of_outcome(&seq, &outcome, 10), Cost::Finite(1));
    }

    #[test]
    fn cost_is_one_on_any_feasible_sequence() {
        let seq = InteractionSequence::from_pairs(
            5,
            vec![
                (1, 2),
                (3, 4),
                (2, 3),
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
                (0, 1),
            ],
        );
        let mut algo = OfflineOptimal::new(&FullKnowledge::new(seq.clone()), NodeId(0));
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        let cost = cost_of_outcome(&seq, &outcome, 10);
        assert!(
            cost.is_optimal(),
            "offline optimal must have cost 1, got {cost}"
        );
    }

    #[test]
    fn never_transmits_when_no_convergecast_exists() {
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (1, 2)]);
        let mut algo = OfflineOptimal::new(&FullKnowledge::new(seq.clone()), NodeId(0));
        assert!(algo.schedule().is_none());
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(!outcome.terminated());
        assert_eq!(outcome.transmission_count(), 0);
        assert_eq!(algo.name(), "OfflineOptimal");
        assert!(algo.is_oblivious());
    }
}
