//! The DODA algorithms studied by the paper.
//!
//! | algorithm | knowledge | reference |
//! |-----------|-----------|-----------|
//! | [`Waiting`] | none | Section 4, Theorem 9 |
//! | [`Gathering`] | none | Section 4, Theorems 7 & 9 (optimal without knowledge) |
//! | [`WaitingGreedy`] | `meetTime` | Section 4.3, Theorems 10 & 11 (optimal with `meetTime`) |
//! | [`SpanningTreeAggregation`] | underlying graph `G̅` | Theorems 4 & 5 |
//! | [`FutureBroadcast`] | own future | Theorem 6 |
//! | [`OfflineOptimal`] | full knowledge | Theorem 8, Corollary 1 |

mod future_broadcast;
mod gathering;
mod offline;
mod spanning_tree;
mod waiting;
mod waiting_greedy;

pub use future_broadcast::FutureBroadcast;
pub use gathering::Gathering;
pub use offline::OfflineOptimal;
pub use spanning_tree::SpanningTreeAggregation;
pub use waiting::Waiting;
pub use waiting_greedy::WaitingGreedy;
