//! The future-knowledge algorithm (Theorem 6).
//!
//! When every node initially knows its *own* future (the times and partners
//! of all its interactions), Theorem 6 shows a DODA algorithm whose cost is
//! at most `n` on every sequence: nodes first disseminate their futures to
//! everyone (which takes at most `n − 1` successive convergecast
//! durations), at which point they all share full knowledge and can follow
//! a common optimal convergecast schedule (one more convergecast duration).
//!
//! # Faithfulness of the implementation
//!
//! Futures are *control information*: exchanging them during an interaction
//! is free and does not consume the single data transmission. The
//! implementation simulates that gossip exactly — when `u` and `v`
//! interact, each learns every future the other currently knows. A node
//! with full knowledge can deterministically compute (a) the first time
//! `t*` by which *every* node has full knowledge (the gossip process is a
//! deterministic function of the sequence, which full knowledge reveals)
//! and (b) the optimal convergecast starting at `t* + 1`. All fully
//! informed nodes therefore agree on the same schedule without any extra
//! communication, and nobody is asked to act before being fully informed.

use doda_graph::NodeId;

use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};
use crate::convergecast::{optimal_convergecast, ConvergecastSchedule};
use crate::interaction::Time;
use crate::sequence::InteractionSequence;

/// The future-broadcast algorithm of Theorem 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FutureBroadcast {
    /// Time by which every node knows every future, if that ever happens.
    full_knowledge_time: Option<Time>,
    /// The common schedule followed once everybody is informed.
    schedule: Option<ConvergecastSchedule>,
}

impl FutureBroadcast {
    /// Builds the algorithm for the dynamic graph described by `seq` with
    /// the given sink.
    ///
    /// The constructor uses `seq` only to *simulate* what the nodes
    /// themselves would compute from their own futures and the gossip
    /// exchange; decisions never use information a node would not have.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range for the sequence's node count.
    pub fn new(seq: &InteractionSequence, sink: NodeId) -> Self {
        assert!(
            sink.index() < seq.node_count(),
            "sink {sink} out of range for {} nodes",
            seq.node_count()
        );
        let full_knowledge_time = Self::simulate_gossip(seq);
        let schedule =
            full_knowledge_time.and_then(|t_star| optimal_convergecast(seq, sink, t_star + 1));
        FutureBroadcast {
            full_knowledge_time,
            schedule,
        }
    }

    /// Simulates the future-gossip: each node starts knowing only its own
    /// future; whenever two nodes interact they merge their knowledge.
    /// Returns the first time at which all nodes know all futures.
    fn simulate_gossip(seq: &InteractionSequence) -> Option<Time> {
        let n = seq.node_count();
        if n <= 1 {
            return Some(0);
        }
        // known[v] = bitmask-ish set of node indices whose futures v knows.
        let mut known: Vec<Vec<bool>> = (0..n)
            .map(|v| {
                let mut k = vec![false; n];
                k[v] = true;
                k
            })
            .collect();
        let mut counts: Vec<usize> = vec![1; n];
        let mut fully_informed = 0usize;
        for ti in seq.iter() {
            let (a, b) = ti.interaction.pair();
            let (ai, bi) = (a.index(), b.index());
            // Merge the two knowledge sets (split the rows to walk them in
            // lockstep without re-indexing).
            let (lo, hi) = known.split_at_mut(ai.max(bi));
            let (a_row, b_row) = if ai < bi {
                (&mut lo[ai], &mut hi[0])
            } else {
                (&mut hi[0], &mut lo[bi])
            };
            for (xa, xb) in a_row.iter_mut().zip(b_row.iter_mut()) {
                if *xa && !*xb {
                    *xb = true;
                    counts[bi] += 1;
                } else if *xb && !*xa {
                    *xa = true;
                    counts[ai] += 1;
                }
            }
            let before = fully_informed;
            fully_informed = counts.iter().filter(|&&c| c == n).count();
            if fully_informed == n && before < n {
                return Some(ti.time);
            }
        }
        None
    }

    /// The time `t*` by which every node has full knowledge, if reached.
    pub fn full_knowledge_time(&self) -> Option<Time> {
        self.full_knowledge_time
    }

    /// The common convergecast schedule, if one exists after `t*`.
    pub fn schedule(&self) -> Option<&ConvergecastSchedule> {
        self.schedule.as_ref()
    }
}

impl DodaAlgorithm for FutureBroadcast {
    fn name(&self) -> &str {
        "FutureBroadcast"
    }

    fn decide(&mut self, ctx: &InteractionContext) -> Decision {
        let Some(schedule) = &self.schedule else {
            return Decision::Idle;
        };
        if ctx.time <= self.full_knowledge_time.unwrap_or(Time::MAX) {
            // Still in the dissemination phase: everybody waits.
            return Decision::Idle;
        }
        match schedule.transmission_at(ctx.time) {
            Some(tr) if ctx.both_own_data() => Decision::Transmit {
                sender: tr.sender,
                receiver: tr.receiver,
            },
            _ => Decision::Idle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost_of_outcome, Cost};
    use crate::engine::{run_with_id_sets, EngineConfig};

    /// A round-robin of all pairs over 4 nodes, repeated; futures spread
    /// quickly and many convergecasts exist.
    fn round_robin(repeats: usize) -> InteractionSequence {
        let pairs = vec![(0, 1), (2, 3), (0, 2), (1, 3), (0, 3), (1, 2)];
        InteractionSequence::from_pairs(4, pairs).repeat(repeats)
    }

    #[test]
    fn gossip_reaches_full_knowledge() {
        let seq = round_robin(2);
        let algo = FutureBroadcast::new(&seq, NodeId(0));
        let t_star = algo.full_knowledge_time().unwrap();
        assert!(t_star < seq.len() as Time);
        assert!(algo.schedule().is_some());
    }

    #[test]
    fn gossip_never_completes_without_enough_mixing() {
        // Nodes 2 and 3 only ever talk to each other: they never learn the
        // futures of 0 and 1.
        let seq = InteractionSequence::from_pairs(4, vec![(0, 1), (2, 3), (0, 1), (2, 3)]);
        let algo = FutureBroadcast::new(&seq, NodeId(0));
        assert_eq!(algo.full_knowledge_time(), None);
        assert!(algo.schedule().is_none());
    }

    #[test]
    fn terminates_and_respects_cost_bound_n() {
        let seq = round_robin(8);
        let n = seq.node_count() as u64;
        let mut algo = FutureBroadcast::new(&seq, NodeId(0));
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert!(outcome.sink_data.as_ref().unwrap().covers_all(4));
        // Theorem 6: cost at most n.
        match cost_of_outcome(&seq, &outcome, 4 * n) {
            Cost::Finite(c) => assert!(c <= n, "cost {c} exceeds n = {n}"),
            other => panic!("expected finite cost, got {other}"),
        }
    }

    #[test]
    fn waits_during_dissemination_phase() {
        let seq = round_robin(8);
        let mut algo = FutureBroadcast::new(&seq, NodeId(0));
        let t_star = algo.full_knowledge_time().unwrap();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        for tr in &outcome.transmissions {
            assert!(
                tr.time > t_star,
                "transmission at {} before t*={t_star}",
                tr.time
            );
        }
        assert_eq!(algo.name(), "FutureBroadcast");
        assert!(!algo.is_oblivious());
    }

    #[test]
    fn single_node_graph_trivially_complete() {
        let seq = InteractionSequence::new(1);
        let algo = FutureBroadcast::new(&seq, NodeId(0));
        assert_eq!(algo.full_knowledge_time(), Some(0));
    }
}
