//! The Waiting algorithm.
//!
//! "A node transmits only when it is connected to the sink `s`"
//! (Section 4). Against the randomized adversary it terminates in
//! `O(n² log n)` expected interactions (Theorem 9) — a coupon-collector
//! process where only meetings between the sink and a *data-owning* node
//! make progress.

use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};

/// The Waiting algorithm: transmit to the sink, and only to the sink.
///
/// Oblivious and knowledge-free (`W ∈ D∅ODA`).
///
/// # Example
///
/// ```
/// use doda_core::{algorithms::Waiting, engine, EngineConfig, InteractionSequence};
/// use doda_graph::NodeId;
///
/// let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (0, 1), (0, 2)]);
/// let mut algo = Waiting::new();
/// let outcome = engine::run_with_id_sets(
///     &mut algo,
///     &mut seq.source(false),
///     NodeId(0),
///     EngineConfig::default(),
/// ).unwrap();
/// assert!(outcome.terminated());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Waiting;

impl Waiting {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Waiting
    }
}

impl DodaAlgorithm for Waiting {
    fn name(&self) -> &str {
        "Waiting"
    }

    fn decide(&mut self, ctx: &InteractionContext) -> Decision {
        if !ctx.both_own_data() {
            return Decision::Idle;
        }
        if ctx.involves_sink() {
            Decision::transmit_to(ctx.sink, ctx.interaction)
        } else {
            Decision::Idle
        }
    }

    fn is_oblivious(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::Interaction;
    use doda_graph::NodeId;

    fn ctx(pair: (usize, usize), owns: (bool, bool), sink: usize) -> InteractionContext {
        InteractionContext {
            time: 0,
            interaction: Interaction::new(NodeId(pair.0), NodeId(pair.1)),
            min_owns_data: owns.0,
            max_owns_data: owns.1,
            sink: NodeId(sink),
        }
    }

    #[test]
    fn transmits_only_to_sink() {
        let mut w = Waiting::new();
        // Sink involved: the other node transmits to it.
        let d = w.decide(&ctx((0, 3), (true, true), 0));
        assert_eq!(
            d,
            Decision::Transmit {
                sender: NodeId(3),
                receiver: NodeId(0)
            }
        );
        // Sink not involved: idle.
        assert_eq!(w.decide(&ctx((1, 2), (true, true), 0)), Decision::Idle);
    }

    #[test]
    fn idle_when_data_is_missing() {
        let mut w = Waiting::new();
        assert_eq!(w.decide(&ctx((0, 3), (true, false), 0)), Decision::Idle);
        assert_eq!(w.decide(&ctx((0, 3), (false, true), 0)), Decision::Idle);
    }

    #[test]
    fn is_oblivious_and_named() {
        let w = Waiting::new();
        assert!(w.is_oblivious());
        assert_eq!(w.name(), "Waiting");
    }
}
