//! The spanning-tree aggregation algorithm (underlying-graph knowledge).
//!
//! Theorem 4: when every node knows the underlying graph `G̅` and every
//! interaction that occurs at least once occurs infinitely often, the
//! following algorithm has finite (but unbounded) cost — "nodes can compute
//! a spanning tree `T` rooted at `s` (they compute the same tree, using
//! node identifiers); then, each node waits to receive the data from its
//! children and then transmits to its parent as soon as possible".
//! Theorem 5: when `G̅` is itself a tree, the same algorithm is optimal.

use doda_graph::{spanning_tree::deterministic_spanning_tree, AdjacencyGraph, NodeId, RootedTree};

use crate::algorithm::{Decision, DodaAlgorithm, InteractionContext};
use crate::interaction::Time;

/// Spanning-tree aggregation over a deterministically chosen spanning tree
/// of the underlying graph, rooted at the sink.
///
/// The node-level rule needs each node to know *which of its children have
/// already delivered their data*; this implementation keeps that memory
/// inside the algorithm (one counter per node), so
/// [`DodaAlgorithm::is_oblivious`] reports `false`. (The paper files the
/// algorithm under `D∅ODA(G̅)`, implicitly treating "what I have already
/// aggregated" as part of the node's data rather than as memory.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTreeAggregation {
    tree: RootedTree,
    /// Number of children that have delivered their data, per node.
    received: Vec<usize>,
}

impl SpanningTreeAggregation {
    /// Builds the algorithm from the underlying graph `G̅` and the sink.
    ///
    /// Returns `None` if `G̅` is not connected (no spanning tree rooted at
    /// the sink exists, so the algorithm — and in fact any data
    /// aggregation — is impossible on such a dynamic graph).
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range for the graph.
    pub fn from_underlying_graph(underlying: &AdjacencyGraph, sink: NodeId) -> Option<Self> {
        let tree = deterministic_spanning_tree(underlying, sink)?;
        let received = vec![0; underlying.node_count()];
        Some(SpanningTreeAggregation { tree, received })
    }

    /// The spanning tree the algorithm follows.
    pub fn tree(&self) -> &RootedTree {
        &self.tree
    }

    /// Returns `true` if `v` has received data from all of its children and
    /// is therefore ready to forward to its parent.
    pub fn is_ready(&self, v: NodeId) -> bool {
        self.received
            .get(v.index())
            .is_some_and(|&r| r == self.tree.children(v).len())
    }
}

impl DodaAlgorithm for SpanningTreeAggregation {
    fn name(&self) -> &str {
        "SpanningTree"
    }

    fn decide(&mut self, ctx: &InteractionContext) -> Decision {
        if !ctx.both_own_data() {
            return Decision::Idle;
        }
        let (a, b) = ctx.interaction.pair();
        // A child that has gathered its whole subtree forwards to its parent.
        if self.tree.parent(a) == Some(b) && self.is_ready(a) {
            return Decision::Transmit {
                sender: a,
                receiver: b,
            };
        }
        if self.tree.parent(b) == Some(a) && self.is_ready(b) {
            return Decision::Transmit {
                sender: b,
                receiver: a,
            };
        }
        Decision::Idle
    }

    fn on_transmission(&mut self, _time: Time, _sender: NodeId, receiver: NodeId) {
        if let Some(slot) = self.received.get_mut(receiver.index()) {
            *slot += 1;
        }
    }

    fn reset(&mut self) {
        self.received.iter_mut().for_each(|r| *r = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::IdSet;
    use crate::engine::{run_with_id_sets, EngineConfig};
    use crate::sequence::InteractionSequence;
    use doda_graph::generators;

    #[test]
    fn construction_requires_connected_underlying_graph() {
        let mut g = AdjacencyGraph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        assert!(SpanningTreeAggregation::from_underlying_graph(&g, NodeId(0)).is_none());
        let path = generators::path_graph(4);
        let algo = SpanningTreeAggregation::from_underlying_graph(&path, NodeId(0)).unwrap();
        assert_eq!(algo.tree().root(), NodeId(0));
        assert_eq!(algo.name(), "SpanningTree");
        assert!(!algo.is_oblivious());
    }

    #[test]
    fn aggregates_along_a_path_tree() {
        // Underlying graph is the path 0-1-2-3 (a tree): Theorem 5 says the
        // algorithm is optimal. Give it a sequence where the path edges recur.
        let seq = InteractionSequence::from_pairs(
            4,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (0, 1),
                (1, 2),
                (2, 3),
                (0, 1),
                (1, 2),
                (0, 1),
            ],
        );
        let underlying = seq.underlying_graph();
        let mut algo =
            SpanningTreeAggregation::from_underlying_graph(&underlying, NodeId(0)).unwrap();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert!(outcome.sink_data.as_ref().unwrap().covers_all(4));
        // Leaf 3 transmits first, then 2, then 1 — order respects the tree.
        let senders: Vec<_> = outcome.transmissions.iter().map(|t| t.sender).collect();
        assert_eq!(senders, vec![NodeId(3), NodeId(2), NodeId(1)]);
    }

    #[test]
    fn waits_for_children_before_forwarding() {
        // Node 1 is an internal node with child 2; the sequence offers 1 the
        // chance to transmit to the sink before it has heard from 2 — the
        // algorithm must decline that first opportunity.
        let seq = InteractionSequence::from_pairs(3, vec![(0, 1), (1, 2), (0, 1)]);
        let underlying = seq.underlying_graph();
        let mut algo =
            SpanningTreeAggregation::from_underlying_graph(&underlying, NodeId(0)).unwrap();
        let outcome = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert_eq!(outcome.termination_time, Some(2));
        assert_eq!(outcome.transmissions[0].sender, NodeId(2));
        assert_eq!(outcome.transmissions[1].sender, NodeId(1));
    }

    #[test]
    fn reset_clears_progress() {
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (0, 1)]);
        let underlying = seq.underlying_graph();
        let mut algo =
            SpanningTreeAggregation::from_underlying_graph(&underlying, NodeId(0)).unwrap();
        let first = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(first.terminated());
        algo.reset();
        let second: crate::outcome::ExecutionOutcome<IdSet> = run_with_id_sets(
            &mut algo,
            &mut seq.source(false),
            NodeId(0),
            EngineConfig::default(),
        )
        .unwrap();
        assert!(second.terminated());
        assert_eq!(first.termination_time, second.termination_time);
    }

    #[test]
    fn readiness_tracking() {
        let underlying = generators::star_graph(4); // 0 centre, leaves 1..3
        let algo = SpanningTreeAggregation::from_underlying_graph(&underlying, NodeId(0)).unwrap();
        // Leaves have no children, so they are immediately ready.
        assert!(algo.is_ready(NodeId(1)));
        // The sink/root has three children and has received nothing.
        assert!(!algo.is_ready(NodeId(0)));
    }
}
