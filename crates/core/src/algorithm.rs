//! The distributed online data aggregation (DODA) algorithm interface.
//!
//! A DODA algorithm "takes as input an interaction `I_t = {u, v}` and its
//! time of occurrence `t ∈ ℕ`, and outputs either `u`, `v` or `⊥`"; the
//! output node is the *receiver* of the other node's data (Section 2.1).
//! [`Decision`] mirrors that contract, and [`DodaAlgorithm::decide`] is the
//! per-interaction callback invoked by the execution engine.

use doda_graph::NodeId;

use crate::interaction::{Interaction, Time};

/// The decision of a DODA algorithm for one interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// `⊥`: nobody transmits.
    Idle,
    /// One node transmits its data to the other. `receiver` corresponds to
    /// the node output by the algorithm in the paper's formulation.
    Transmit {
        /// The node that sends (and thereby retires from the protocol).
        sender: NodeId,
        /// The node that receives and aggregates.
        receiver: NodeId,
    },
}

impl Decision {
    /// Convenience constructor: the other endpoint of `interaction`
    /// transmits its data to `receiver`.
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is not part of `interaction`.
    pub fn transmit_to(receiver: NodeId, interaction: Interaction) -> Self {
        let sender = interaction
            .partner_of(receiver)
            .unwrap_or_else(|| panic!("receiver {receiver} is not part of {interaction}"));
        Decision::Transmit { sender, receiver }
    }

    /// Returns `true` for `Idle`.
    pub fn is_idle(&self) -> bool {
        matches!(self, Decision::Idle)
    }
}

/// The per-interaction context presented to an algorithm.
///
/// It contains exactly the information the paper makes available "for
/// free" during an interaction: the two node identities (ordered by id),
/// whether each is the sink, and whether each still owns data (nodes
/// "exchange control information before deciding whether they transmit").
/// Any further knowledge (meetTime, futures, the underlying graph) must be
/// held by the algorithm itself, reflecting the knowledge model it is
/// analysed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InteractionContext {
    /// The current time (index of the interaction).
    pub time: Time,
    /// The interacting pair, in id order.
    pub interaction: Interaction,
    /// Whether the smaller-id endpoint owns data.
    pub min_owns_data: bool,
    /// Whether the larger-id endpoint owns data.
    pub max_owns_data: bool,
    /// The sink node (every node knows `isSink` of itself and, during an
    /// interaction, of its peer).
    pub sink: NodeId,
}

impl InteractionContext {
    /// Returns `true` if both interacting nodes currently own data — the
    /// precondition for any transmission.
    pub fn both_own_data(&self) -> bool {
        self.min_owns_data && self.max_owns_data
    }

    /// Returns `true` if `v` owns data, for `v` one of the two endpoints.
    pub fn owns_data(&self, v: NodeId) -> bool {
        if v == self.interaction.min() {
            self.min_owns_data
        } else if v == self.interaction.max() {
            self.max_owns_data
        } else {
            false
        }
    }

    /// Returns `true` if one of the interacting nodes is the sink.
    pub fn involves_sink(&self) -> bool {
        self.interaction.involves(self.sink)
    }

    /// If the sink is part of the interaction, returns the other node.
    pub fn non_sink_peer(&self) -> Option<NodeId> {
        self.interaction.partner_of(self.sink)
    }
}

/// A distributed online data aggregation algorithm.
///
/// Implementations may keep internal per-node memory (the model grants
/// nodes unlimited memory); *oblivious* algorithms (the set `D∅ODA` of the
/// paper) simply keep none and should report it via
/// [`DodaAlgorithm::is_oblivious`].
pub trait DodaAlgorithm {
    /// Human-readable name used in reports and benchmark labels.
    fn name(&self) -> &str;

    /// Decides what happens for the interaction described by `ctx`.
    ///
    /// The engine ignores `Transmit` decisions when the two nodes do not
    /// both own data (the paper: "the output is ignored if the interacting
    /// nodes do not both have data"), but rejects decisions naming nodes
    /// outside the interaction.
    fn decide(&mut self, ctx: &InteractionContext) -> Decision;

    /// Whether the algorithm uses only oblivious nodes (no persistent
    /// memory between interactions).
    fn is_oblivious(&self) -> bool {
        false
    }

    /// Callback invoked by the engine after a transmission it ordered was
    /// actually applied. Algorithms that track per-node progress (e.g. the
    /// spanning-tree algorithm waiting for its children) use this to update
    /// their internal memory.
    fn on_transmission(&mut self, _time: Time, _sender: NodeId, _receiver: NodeId) {}

    /// Resets any internal memory so the same instance can be reused for a
    /// fresh execution.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_to_picks_the_partner_as_sender() {
        let i = Interaction::new(NodeId(2), NodeId(5));
        let d = Decision::transmit_to(NodeId(5), i);
        assert_eq!(
            d,
            Decision::Transmit {
                sender: NodeId(2),
                receiver: NodeId(5)
            }
        );
        assert!(!d.is_idle());
        assert!(Decision::Idle.is_idle());
    }

    #[test]
    #[should_panic(expected = "not part of")]
    fn transmit_to_rejects_foreign_receiver() {
        let i = Interaction::new(NodeId(2), NodeId(5));
        let _ = Decision::transmit_to(NodeId(1), i);
    }

    #[test]
    fn context_helpers() {
        let ctx = InteractionContext {
            time: 3,
            interaction: Interaction::new(NodeId(1), NodeId(4)),
            min_owns_data: true,
            max_owns_data: false,
            sink: NodeId(4),
        };
        assert!(!ctx.both_own_data());
        assert!(ctx.owns_data(NodeId(1)));
        assert!(!ctx.owns_data(NodeId(4)));
        assert!(!ctx.owns_data(NodeId(9)));
        assert!(ctx.involves_sink());
        assert_eq!(ctx.non_sink_peer(), Some(NodeId(1)));

        let ctx2 = InteractionContext {
            sink: NodeId(0),
            ..ctx
        };
        assert!(!ctx2.involves_sink());
        assert_eq!(ctx2.non_sink_peer(), None);
    }
}
