//! The round-based execution model: matchings of disjoint interactions.
//!
//! The paper's adversary schedules **one** pairwise interaction per time
//! step, but the setting it models — and the dynamic-graph literature it
//! sits in — is *synchronous rounds* in which many disjoint edges are live
//! at once. This module generalises the streaming model to that setting:
//!
//! * a [`Matching`] is a validated set of vertex-disjoint interactions —
//!   the edges live in one round;
//! * a [`RoundSource`] produces one matching per round, observing the same
//!   adversary view as an [`InteractionSource`] (so round adversaries can
//!   be adaptive);
//! * [`crate::engine::Engine::run_rounds`] applies whole rounds against
//!   the preallocated network state.
//!
//! Because the edges of a matching are disjoint, no node takes part in two
//! interactions of the same round, so applying a round's interactions in
//! matching order is *exactly* the synchronous semantics: each decision
//! depends only on the two endpoints' state at round start, which no other
//! interaction of the round can touch.
//!
//! # Bridges to the pairwise world
//!
//! The two models embed into each other, and both embeddings are pinned by
//! the `tests/round_equivalence.rs` proptest suite:
//!
//! * [`SingletonRounds`] lifts any [`InteractionSource`] to a
//!   [`RoundSource`] of one-interaction rounds — running it through
//!   [`Engine::run_rounds`] is byte-identical to the pairwise path;
//! * [`FlattenedRounds`] plays a [`RoundSource`] as an
//!   [`InteractionSource`], emitting each round's interactions one per
//!   step (the matching is fixed when the round starts, preserving the
//!   synchronous semantics). This is how round streams reach everything
//!   built for the pairwise model — knowledge oracles via
//!   [`crate::InteractionSequence::materialize`], and **fault plans** via
//!   [`crate::fault::FaultedSource`], which wraps the flattened stream so
//!   crash / churn / loss compose over round scenarios without the round
//!   source knowing ("`FaultedSource`-style adaptation").
//!
//! [`Engine::run_rounds`]: crate::engine::Engine::run_rounds

use doda_graph::{Edge, NodeId};

use crate::interaction::{Interaction, Time};
use crate::sequence::{AdversaryView, InteractionSource};

/// How many consecutive *empty* rounds the execution paths tolerate before
/// treating a round source as exhausted.
///
/// Empty rounds are legal (an evolving-graph window may contain no edge)
/// but consume no interaction budget, so an endless run of them would hang
/// the engine; both [`FlattenedRounds`] and
/// [`crate::engine::Engine::run_rounds`] share this bound, which keeps the
/// two execution paths equivalent on streams that interleave empty rounds.
pub const MAX_CONSECUTIVE_EMPTY_ROUNDS: u64 = 65_536;

/// A validated matching: a set of pairwise vertex-disjoint interactions
/// over `n` nodes — the set of edges live in one synchronous round.
///
/// Disjointness is enforced on insertion in `O(1)` per interaction, so a
/// `Matching` is a matching *by construction* and the round engine never
/// has to re-validate. The buffer is reusable: [`Matching::reset`] clears
/// it in `O(len)` (not `O(n)`), which keeps the per-round cost of the
/// engine proportional to the matching size.
///
/// # Example
///
/// ```
/// use doda_core::{Interaction, Matching};
/// use doda_graph::NodeId;
///
/// let mut m = Matching::new(6);
/// m.push(Interaction::new(NodeId(0), NodeId(1)));
/// m.push(Interaction::new(NodeId(4), NodeId(2)));
/// assert_eq!(m.len(), 2);
/// assert!(m.matched(NodeId(4)));
/// // Node 1 is taken: {1, 5} cannot join the matching.
/// assert!(!m.try_push(Interaction::new(NodeId(1), NodeId(5))));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matching {
    n: usize,
    interactions: Vec<Interaction>,
    matched: Vec<bool>,
}

impl Matching {
    /// Creates an empty matching over `n` nodes.
    pub fn new(n: usize) -> Self {
        Matching {
            n,
            interactions: Vec::new(),
            matched: vec![false; n],
        }
    }

    /// Builds a matching over `n` nodes from raw index pairs.
    ///
    /// # Panics
    ///
    /// Panics if a pair has equal elements, an element `>= n`, or shares a
    /// node with an earlier pair.
    pub fn from_pairs<I>(n: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut m = Matching::new(n);
        for (a, b) in pairs {
            m.push(Interaction::new(NodeId(a), NodeId(b)));
        }
        m
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of interactions in the matching.
    pub fn len(&self) -> usize {
        self.interactions.len()
    }

    /// Returns `true` if the matching has no interactions.
    pub fn is_empty(&self) -> bool {
        self.interactions.is_empty()
    }

    /// Returns `true` if node `v` is an endpoint of some interaction.
    pub fn matched(&self, v: NodeId) -> bool {
        self.matched.get(v.index()).copied().unwrap_or(false)
    }

    /// Attempts to add an interaction; returns `false` (leaving the
    /// matching unchanged) if an endpoint is already matched.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= node_count()`.
    pub fn try_push(&mut self, interaction: Interaction) -> bool {
        assert!(
            interaction.max().index() < self.n,
            "interaction {interaction} out of range for {} nodes",
            self.n
        );
        let (a, b) = (interaction.min().index(), interaction.max().index());
        if self.matched[a] || self.matched[b] {
            return false;
        }
        self.matched[a] = true;
        self.matched[b] = true;
        self.interactions.push(interaction);
        true
    }

    /// Adds an interaction.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= node_count()` or already matched (use
    /// [`try_push`] for the non-panicking greedy-insertion form).
    ///
    /// [`try_push`]: Matching::try_push
    pub fn push(&mut self, interaction: Interaction) {
        assert!(
            self.try_push(interaction),
            "interaction {interaction} shares a node with the matching"
        );
    }

    /// Removes every interaction, keeping the allocations. `O(len)`.
    pub fn clear(&mut self) {
        for &i in &self.interactions {
            self.matched[i.min().index()] = false;
            self.matched[i.max().index()] = false;
        }
        self.interactions.clear();
    }

    /// Clears the matching and re-targets it to `n` nodes, retaining the
    /// allocations where possible. The round engine resets one scratch
    /// matching per round through this.
    pub fn reset(&mut self, n: usize) {
        if n == self.n {
            self.clear();
        } else {
            self.n = n;
            self.interactions.clear();
            self.matched.clear();
            self.matched.resize(n, false);
        }
    }

    /// The interactions, in insertion order.
    pub fn as_slice(&self) -> &[Interaction] {
        &self.interactions
    }

    /// Iterates over the interactions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Interaction> + '_ {
        self.interactions.iter().copied()
    }
}

/// A producer of synchronous rounds: one [`Matching`] per round.
///
/// The engine calls [`next_round`] exactly once per round with strictly
/// increasing round indices starting from 0, handing in a cleared matching
/// sized to [`node_count`]. Like [`InteractionSource`], the view exposes
/// the ownership bitmap, so round adversaries can be adaptive; sources
/// that reset internal state when `round == 0` are reusable across
/// executions (the same convention the adaptive pairwise adversaries
/// follow).
///
/// [`next_round`]: RoundSource::next_round
/// [`node_count`]: RoundSource::node_count
pub trait RoundSource {
    /// Number of nodes of the dynamic graph.
    fn node_count(&self) -> usize;

    /// Fills `out` with the matching of round `round` and returns `true`,
    /// or returns `false` when the source is exhausted (finite round
    /// schedules only). `out` arrives cleared and sized to
    /// [`node_count`](RoundSource::node_count); an empty round (no live
    /// edge) is expressed by returning `true` without pushing anything.
    fn next_round(&mut self, round: Time, view: &AdversaryView<'_>, out: &mut Matching) -> bool;
}

impl<R: RoundSource + ?Sized> RoundSource for &mut R {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn next_round(&mut self, round: Time, view: &AdversaryView<'_>, out: &mut Matching) -> bool {
        (**self).next_round(round, view, out)
    }
}

impl<R: RoundSource + ?Sized> RoundSource for Box<R> {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn next_round(&mut self, round: Time, view: &AdversaryView<'_>, out: &mut Matching) -> bool {
        (**self).next_round(round, view, out)
    }
}

/// Lifts an [`InteractionSource`] to a [`RoundSource`] of singleton
/// rounds: round `r` contains exactly the interaction the inner source
/// produces at time `r`.
///
/// Running a singleton-round stream through
/// [`crate::engine::Engine::run_rounds`] is **byte-identical** to running
/// the inner source through the pairwise path — the property that anchors
/// the round model to the paper's (pinned by `tests/round_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct SingletonRounds<S> {
    inner: S,
}

impl<S: InteractionSource> SingletonRounds<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> Self {
        SingletonRounds { inner }
    }

    /// The wrapped pairwise source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: InteractionSource> RoundSource for SingletonRounds<S> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn next_round(&mut self, round: Time, view: &AdversaryView<'_>, out: &mut Matching) -> bool {
        match self.inner.next_interaction(round, view) {
            Some(interaction) => {
                out.push(interaction);
                true
            }
            None => false,
        }
    }
}

/// Plays a [`RoundSource`] as an [`InteractionSource`]: each round's
/// matching is fixed when the round starts (preserving the synchronous
/// semantics) and its interactions are then emitted one per time step, in
/// matching order. Empty rounds are skipped transparently, up to
/// [`MAX_CONSECUTIVE_EMPTY_ROUNDS`] in a row.
///
/// This is the bridge that lets round streams reach everything built for
/// the pairwise model: `InteractionSequence::materialize` for the
/// knowledge oracles, and [`crate::fault::FaultedSource`] for fault
/// plans — wrapping a flattened round stream gives round scenarios the
/// whole crash / churn / loss axis without the round source knowing.
///
/// Like the adaptive adversaries, the adapter resets itself at `t = 0`,
/// so one instance can be reused across executions deterministically.
#[derive(Debug, Clone)]
pub struct FlattenedRounds<R> {
    inner: R,
    buffer: Vec<Interaction>,
    cursor: usize,
    rounds_pulled: Time,
    scratch: Matching,
}

impl<R: RoundSource> FlattenedRounds<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        let n = inner.node_count();
        FlattenedRounds {
            inner,
            buffer: Vec::new(),
            cursor: 0,
            rounds_pulled: 0,
            scratch: Matching::new(n),
        }
    }

    /// The wrapped round source.
    pub fn inner(&self) -> &R {
        &self.inner
    }

    /// Number of rounds pulled from the inner source so far.
    pub fn rounds_pulled(&self) -> Time {
        self.rounds_pulled
    }
}

impl<R: RoundSource> InteractionSource for FlattenedRounds<R> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        if t == 0 {
            // A fresh execution: a half-emitted round from a previous run
            // must not leak into this one.
            self.buffer.clear();
            self.cursor = 0;
            self.rounds_pulled = 0;
        }
        let mut consecutive_empty = 0u64;
        loop {
            if self.cursor < self.buffer.len() {
                let interaction = self.buffer[self.cursor];
                self.cursor += 1;
                return Some(interaction);
            }
            self.scratch.reset(self.inner.node_count());
            if !self
                .inner
                .next_round(self.rounds_pulled, view, &mut self.scratch)
            {
                return None;
            }
            self.rounds_pulled += 1;
            if self.scratch.is_empty() {
                consecutive_empty += 1;
                if consecutive_empty >= MAX_CONSECUTIVE_EMPTY_ROUNDS {
                    return None;
                }
                continue;
            }
            self.buffer.clear();
            self.buffer.extend_from_slice(self.scratch.as_slice());
            self.cursor = 0;
        }
    }
}

/// A finite sequence of matchings — the round-model counterpart of
/// [`crate::InteractionSequence`], and the landing point of the
/// evolving-graph bridge (`doda_graph::EvolvingGraph::window_matchings`).
///
/// # Example
///
/// ```
/// use doda_core::MatchingSequence;
///
/// let mut schedule = MatchingSequence::new(4);
/// schedule.push_round([(0, 1), (2, 3)]);
/// schedule.push_round([(1, 2)]);
/// assert_eq!(schedule.len(), 2);
/// assert_eq!(schedule.round(0).unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingSequence {
    n: usize,
    rounds: Vec<Vec<Interaction>>,
}

impl MatchingSequence {
    /// Creates an empty schedule over `n` nodes.
    pub fn new(n: usize) -> Self {
        MatchingSequence {
            n,
            rounds: Vec::new(),
        }
    }

    /// Appends one round given as raw index pairs, validating that they
    /// form a matching.
    ///
    /// # Panics
    ///
    /// Panics if a pair is out of range or shares a node with another pair
    /// of the same round.
    pub fn push_round<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        self.push_interactions(
            pairs
                .into_iter()
                .map(|(a, b)| Interaction::new(NodeId(a), NodeId(b))),
        );
    }

    /// Appends one round of interactions, validating the matching property.
    ///
    /// # Panics
    ///
    /// Panics if an interaction is out of range or shares a node with
    /// another interaction of the same round.
    pub fn push_interactions<I>(&mut self, interactions: I)
    where
        I: IntoIterator<Item = Interaction>,
    {
        let mut m = Matching::new(self.n);
        for i in interactions {
            m.push(i);
        }
        self.rounds.push(m.as_slice().to_vec());
    }

    /// Builds a schedule from per-round edge lists — the shape produced by
    /// `doda_graph::EvolvingGraph::window_matchings`.
    ///
    /// # Panics
    ///
    /// Panics if a round is not a matching over `n` nodes.
    pub fn from_edge_rounds<I, J>(n: usize, rounds: I) -> Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = Edge>,
    {
        let mut seq = MatchingSequence::new(n);
        for round in rounds {
            seq.push_interactions(round.into_iter().map(|e| Interaction::new(e.a, e.b)));
        }
        seq
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Returns `true` if the schedule has no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The interactions of round `r`, if within the schedule.
    pub fn round(&self, r: usize) -> Option<&[Interaction]> {
        self.rounds.get(r).map(Vec::as_slice)
    }

    /// Total number of interactions across all rounds.
    pub fn interaction_count(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// A borrowing [`RoundSource`] replaying this schedule, optionally
    /// cycling through it forever.
    pub fn stream(&self, cycle: bool) -> MatchingReplay<'_> {
        MatchingReplay { seq: self, cycle }
    }
}

/// Borrowing [`RoundSource`] over a [`MatchingSequence`], created by
/// [`MatchingSequence::stream`].
#[derive(Debug, Clone)]
pub struct MatchingReplay<'a> {
    seq: &'a MatchingSequence,
    cycle: bool,
}

impl RoundSource for MatchingReplay<'_> {
    fn node_count(&self) -> usize {
        self.seq.node_count()
    }

    fn next_round(&mut self, round: Time, _view: &AdversaryView<'_>, out: &mut Matching) -> bool {
        if self.seq.is_empty() {
            return false;
        }
        let idx = if self.cycle {
            (round as usize) % self.seq.len()
        } else if (round as usize) < self.seq.len() {
            round as usize
        } else {
            return false;
        };
        for &interaction in &self.seq.rounds[idx] {
            out.push(interaction);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::InteractionSequence;

    fn view_all(owns: &[bool], sink: NodeId) -> AdversaryView<'_> {
        AdversaryView {
            owns_data: owns,
            sink,
        }
    }

    #[test]
    fn matching_enforces_disjointness_and_range() {
        let mut m = Matching::new(5);
        assert!(m.try_push(Interaction::new(NodeId(0), NodeId(1))));
        assert!(m.try_push(Interaction::new(NodeId(2), NodeId(3))));
        assert!(!m.try_push(Interaction::new(NodeId(3), NodeId(4))));
        assert_eq!(m.len(), 2);
        assert!(m.matched(NodeId(0)));
        assert!(!m.matched(NodeId(4)));
        assert!(!m.matched(NodeId(99)));
        assert_eq!(
            m.iter().collect::<Vec<_>>(),
            vec![
                Interaction::new(NodeId(0), NodeId(1)),
                Interaction::new(NodeId(2), NodeId(3)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "shares a node")]
    fn matching_push_panics_on_conflict() {
        let mut m = Matching::from_pairs(4, vec![(0, 1)]);
        m.push(Interaction::new(NodeId(1), NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn matching_rejects_out_of_range() {
        let mut m = Matching::new(2);
        let _ = m.try_push(Interaction::new(NodeId(0), NodeId(2)));
    }

    #[test]
    fn matching_clear_and_reset_reuse_the_buffer() {
        let mut m = Matching::from_pairs(6, vec![(0, 1), (2, 3)]);
        m.clear();
        assert!(m.is_empty());
        assert!(!m.matched(NodeId(0)));
        assert!(m.try_push(Interaction::new(NodeId(1), NodeId(0))));
        m.reset(3);
        assert_eq!(m.node_count(), 3);
        assert!(m.is_empty());
        assert!(!m.matched(NodeId(1)));
        assert!(m.try_push(Interaction::new(NodeId(1), NodeId(2))));
    }

    #[test]
    fn singleton_rounds_mirror_the_inner_source() {
        let seq = InteractionSequence::from_pairs(4, vec![(0, 1), (2, 3), (1, 2)]);
        let mut rounds = SingletonRounds::new(seq.stream(false));
        assert_eq!(rounds.node_count(), 4);
        let owns = vec![true; 4];
        let view = view_all(&owns, NodeId(0));
        let mut out = Matching::new(4);
        for t in 0..3u64 {
            out.reset(4);
            assert!(rounds.next_round(t, &view, &mut out));
            assert_eq!(out.as_slice(), &[seq.get(t).unwrap()]);
        }
        out.reset(4);
        assert!(!rounds.next_round(3, &view, &mut out));
    }

    #[test]
    fn flattened_rounds_emit_matchings_in_order_and_reset_at_t0() {
        let mut schedule = MatchingSequence::new(5);
        schedule.push_round([(0, 1), (2, 3)]);
        schedule.push_round([(1, 4)]);
        let mut flat = FlattenedRounds::new(schedule.stream(false));
        let owns = vec![true; 5];
        let view = view_all(&owns, NodeId(0));
        let expected = [
            Interaction::new(NodeId(0), NodeId(1)),
            Interaction::new(NodeId(2), NodeId(3)),
            Interaction::new(NodeId(1), NodeId(4)),
        ];
        for run in 0..2 {
            for (t, want) in expected.iter().enumerate() {
                assert_eq!(
                    flat.next_interaction(t as Time, &view),
                    Some(*want),
                    "run {run}, t {t}"
                );
            }
            assert_eq!(flat.next_interaction(3, &view), None);
            assert_eq!(flat.rounds_pulled(), 2);
        }
    }

    #[test]
    fn flattened_rounds_skip_empty_rounds() {
        let mut schedule = MatchingSequence::new(3);
        schedule.push_round(Vec::<(usize, usize)>::new());
        schedule.push_round([(1, 2)]);
        schedule.push_round(Vec::<(usize, usize)>::new());
        let mut flat = FlattenedRounds::new(schedule.stream(false));
        let owns = vec![true; 3];
        let view = view_all(&owns, NodeId(0));
        assert_eq!(
            flat.next_interaction(0, &view),
            Some(Interaction::new(NodeId(1), NodeId(2)))
        );
        assert_eq!(flat.next_interaction(1, &view), None);
    }

    #[test]
    fn flattening_an_endless_run_of_empty_rounds_terminates() {
        struct AlwaysEmpty;
        impl RoundSource for AlwaysEmpty {
            fn node_count(&self) -> usize {
                3
            }
            fn next_round(
                &mut self,
                _r: Time,
                _v: &AdversaryView<'_>,
                _out: &mut Matching,
            ) -> bool {
                true
            }
        }
        let mut flat = FlattenedRounds::new(AlwaysEmpty);
        let owns = vec![true; 3];
        let view = view_all(&owns, NodeId(0));
        assert_eq!(flat.next_interaction(0, &view), None);
        assert_eq!(flat.rounds_pulled(), MAX_CONSECUTIVE_EMPTY_ROUNDS);
    }

    #[test]
    fn matching_sequence_replays_and_cycles() {
        let schedule = MatchingSequence::from_edge_rounds(
            4,
            vec![
                vec![
                    Edge::new(NodeId(0), NodeId(1)),
                    Edge::new(NodeId(2), NodeId(3)),
                ],
                vec![Edge::new(NodeId(1), NodeId(2))],
            ],
        );
        assert_eq!(schedule.len(), 2);
        assert_eq!(schedule.interaction_count(), 3);
        assert_eq!(schedule.round(1).unwrap().len(), 1);
        assert!(schedule.round(2).is_none());

        let owns = vec![true; 4];
        let view = view_all(&owns, NodeId(0));
        let mut out = Matching::new(4);
        let mut replay = schedule.stream(true);
        out.reset(4);
        assert!(replay.next_round(5, &view, &mut out)); // 5 % 2 == 1
        assert_eq!(out.len(), 1);

        let mut finite = schedule.stream(false);
        out.reset(4);
        assert!(!finite.next_round(2, &view, &mut out));

        let empty = MatchingSequence::new(4);
        let mut dry = empty.stream(true);
        out.reset(4);
        assert!(!dry.next_round(0, &view, &mut out));
    }

    #[test]
    #[should_panic(expected = "shares a node")]
    fn matching_sequence_rejects_non_matchings() {
        let mut schedule = MatchingSequence::new(4);
        schedule.push_round([(0, 1), (1, 2)]);
    }
}
