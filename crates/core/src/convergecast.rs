//! Optimal offline convergecast computation.
//!
//! A *convergecast* is "a data aggregation schedule with minimum duration
//! (performed by an offline optimal algorithm)" (Section 2.3). Its
//! completion time `opt(t)` — the earliest ending time of a convergecast
//! starting at time `t` — is the building block of the paper's cost
//! function, and the offline optimal algorithm of Theorem 8 simply follows
//! such a schedule.
//!
//! # How it is computed
//!
//! The paper's proof of Theorem 8 uses the classical duality: *a
//! convergecast towards `s` over the interactions `I_a, …, I_b` exists if
//! and only if a broadcast from `s` exists over the reversed subsequence
//! `I_b, …, I_a`*. Broadcast feasibility is a simple monotone flooding
//! computation, and feasibility is monotone in `b`, so the minimum ending
//! time is found by binary search on `b` and the schedule is recovered from
//! the flooding tree of the feasible window:
//!
//! * in the reversed window, node `u` is informed through the interaction
//!   `{u, p}` occurring at forward time `τ_u`;
//! * in forward time, `u` transmits its (aggregated) data to `p` at `τ_u`,
//!   and `p` transmits strictly later (`τ_p > τ_u`) or is the sink —
//!   a valid aggregation schedule in which every node transmits exactly
//!   once.

use doda_graph::NodeId;

use crate::interaction::Time;
use crate::outcome::Transmission;
use crate::sequence::InteractionSequence;

/// An explicit optimal convergecast schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvergecastSchedule {
    /// First time step the schedule is allowed to use.
    pub start: Time,
    /// Time of the final transmission (the convergecast's ending time).
    pub completion: Time,
    /// Scheduled transmissions, sorted by time. For an `n`-node graph there
    /// are exactly `n − 1` of them.
    pub transmissions: Vec<Transmission>,
}

impl ConvergecastSchedule {
    /// The scheduled transmission at time `t`, if any.
    pub fn transmission_at(&self, t: Time) -> Option<Transmission> {
        self.transmissions
            .binary_search_by_key(&t, |tr| tr.time)
            .ok()
            .map(|idx| self.transmissions[idx])
    }
}

/// Returns `true` if a broadcast from `sink` completes when flooding the
/// interactions of `[start, end]` in *reverse* time order — equivalently,
/// if a convergecast towards `sink` over `[start, end]` exists.
fn convergecast_feasible(seq: &InteractionSequence, sink: NodeId, start: Time, end: Time) -> bool {
    let n = seq.node_count();
    if n <= 1 {
        return true;
    }
    let mut informed = vec![false; n];
    informed[sink.index()] = true;
    let mut count = 1usize;
    let mut t = end;
    loop {
        if let Some(i) = seq.get(t) {
            let (a, b) = i.pair();
            match (informed[a.index()], informed[b.index()]) {
                (true, false) => {
                    informed[b.index()] = true;
                    count += 1;
                }
                (false, true) => {
                    informed[a.index()] = true;
                    count += 1;
                }
                _ => {}
            }
            if count == n {
                return true;
            }
        }
        if t == start {
            return count == n;
        }
        t -= 1;
    }
}

/// Builds the convergecast schedule for the feasible window `[start, end]`
/// by re-running the reverse flooding and recording, for each node, the
/// forward time and partner of the interaction that informed it.
fn build_schedule(
    seq: &InteractionSequence,
    sink: NodeId,
    start: Time,
    end: Time,
) -> ConvergecastSchedule {
    let n = seq.node_count();
    let mut informed = vec![false; n];
    informed[sink.index()] = true;
    let mut transmissions = Vec::with_capacity(n.saturating_sub(1));
    let mut t = end;
    loop {
        if let Some(i) = seq.get(t) {
            let (a, b) = i.pair();
            match (informed[a.index()], informed[b.index()]) {
                (true, false) => {
                    informed[b.index()] = true;
                    transmissions.push(Transmission {
                        time: t,
                        sender: b,
                        receiver: a,
                    });
                }
                (false, true) => {
                    informed[a.index()] = true;
                    transmissions.push(Transmission {
                        time: t,
                        sender: a,
                        receiver: b,
                    });
                }
                _ => {}
            }
        }
        if t == start {
            break;
        }
        t -= 1;
    }
    transmissions.sort_by_key(|tr| tr.time);
    let completion = transmissions.last().map(|tr| tr.time).unwrap_or(start);
    ConvergecastSchedule {
        start,
        completion,
        transmissions,
    }
}

/// Computes an optimal (earliest-completion) convergecast starting at time
/// `start`, or `None` if no convergecast over `[start, len)` exists.
///
/// For the degenerate single-node graph the schedule is empty with
/// `completion == start`.
pub fn optimal_convergecast(
    seq: &InteractionSequence,
    sink: NodeId,
    start: Time,
) -> Option<ConvergecastSchedule> {
    let n = seq.node_count();
    assert!(sink.index() < n, "sink {sink} out of range for {n} nodes");
    if n <= 1 {
        return Some(ConvergecastSchedule {
            start,
            completion: start,
            transmissions: Vec::new(),
        });
    }
    let len = seq.len() as Time;
    if start >= len {
        return None;
    }
    if !convergecast_feasible(seq, sink, start, len - 1) {
        return None;
    }
    // Binary search the smallest feasible end in [start, len - 1].
    let mut lo = start;
    let mut hi = len - 1;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if convergecast_feasible(seq, sink, start, mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let schedule = build_schedule(seq, sink, start, lo);
    debug_assert_eq!(schedule.completion, lo);
    Some(schedule)
}

/// The paper's `opt(t)`: the ending time of an optimal convergecast on the
/// sequence starting at time `t`, or `None` when no convergecast exists
/// (the paper writes `opt(t) = ∞`).
pub fn opt(seq: &InteractionSequence, sink: NodeId, start: Time) -> Option<Time> {
    optimal_convergecast(seq, sink, start).map(|s| s.completion)
}

/// The paper's `T(i)`: the ending time of `i` successive convergecasts
/// (`T(1) = opt(0)`, `T(i+1) = opt(T(i) + 1)`), truncated at the first
/// index where `opt` becomes infinite.
///
/// Returns the vector `[T(1), …, T(k)]` with `k ≤ max_i`, stopping early
/// when `opt` returns `None` — i.e. the returned vector contains only the
/// *finite* values of `T`; `T(k+1)` (if `k < max_i`) is infinite.
pub fn successive_convergecast_times(
    seq: &InteractionSequence,
    sink: NodeId,
    max_i: usize,
) -> Vec<Time> {
    let mut times = Vec::new();
    let mut start = 0;
    for _ in 0..max_i {
        match opt(seq, sink, start) {
            Some(end) => {
                times.push(end);
                start = end + 1;
            }
            None => break,
        }
    }
    times
}

/// Validates that `schedule` is a correct aggregation schedule for `seq`:
/// every scheduled transmission uses the interaction of its time step,
/// every non-sink node transmits exactly once, the sink never transmits,
/// and every non-sink node's transmission happens strictly before its
/// receiver's own transmission (so the receiver still owns data).
///
/// Used by tests and by the property-based suite; returns a description of
/// the first violation found.
pub fn validate_schedule(
    seq: &InteractionSequence,
    sink: NodeId,
    schedule: &ConvergecastSchedule,
) -> Result<(), String> {
    let n = seq.node_count();
    let mut transmit_time: Vec<Option<Time>> = vec![None; n];
    for tr in &schedule.transmissions {
        let Some(interaction) = seq.get(tr.time) else {
            return Err(format!("no interaction at time {}", tr.time));
        };
        if !interaction.involves(tr.sender) || !interaction.involves(tr.receiver) {
            return Err(format!(
                "transmission {} -> {} at t={} does not match interaction {}",
                tr.sender, tr.receiver, tr.time, interaction
            ));
        }
        if tr.sender == sink {
            return Err("the sink must not transmit".to_string());
        }
        if transmit_time[tr.sender.index()].is_some() {
            return Err(format!("{} transmits more than once", tr.sender));
        }
        transmit_time[tr.sender.index()] = Some(tr.time);
    }
    // Every non-sink node transmits exactly once.
    for (v, time) in transmit_time.iter().enumerate() {
        if NodeId(v) != sink && time.is_none() {
            return Err(format!("node v{v} never transmits"));
        }
    }
    // Receivers must still own data: their own transmission is strictly later.
    for tr in &schedule.transmissions {
        if tr.receiver != sink {
            let receiver_time = transmit_time[tr.receiver.index()]
                .expect("non-sink nodes transmit exactly once (checked above)");
            if receiver_time <= tr.time {
                return Err(format!(
                    "{} receives at t={} but already transmitted at t={}",
                    tr.receiver, tr.time, receiver_time
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interaction::Interaction;

    /// s = 0; nodes 1, 2, 3.
    fn chain_sequence() -> InteractionSequence {
        // 3 -> 2 (t=0), 2 -> 1 (t=1), 1 -> 0 (t=2) is the only convergecast.
        InteractionSequence::from_pairs(4, vec![(2, 3), (1, 2), (0, 1)])
    }

    #[test]
    fn chain_has_unique_convergecast() {
        let seq = chain_sequence();
        let s = optimal_convergecast(&seq, NodeId(0), 0).unwrap();
        assert_eq!(s.completion, 2);
        assert_eq!(s.transmissions.len(), 3);
        validate_schedule(&seq, NodeId(0), &s).unwrap();
        assert_eq!(
            s.transmission_at(0),
            Some(Transmission {
                time: 0,
                sender: NodeId(3),
                receiver: NodeId(2)
            })
        );
        assert_eq!(s.transmission_at(5), None);
    }

    #[test]
    fn reversed_chain_is_infeasible() {
        // 0-1 first, then 1-2, then 2-3: node 3's data can never move toward 0.
        let seq = InteractionSequence::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(opt(&seq, NodeId(0), 0), None);
        assert!(optimal_convergecast(&seq, NodeId(0), 0).is_none());
    }

    #[test]
    fn opt_from_later_start_times() {
        let seq = chain_sequence().repeat(3); // length 9: three chained convergecasts
        assert_eq!(opt(&seq, NodeId(0), 0), Some(2));
        assert_eq!(opt(&seq, NodeId(0), 3), Some(5));
        assert_eq!(opt(&seq, NodeId(0), 1), Some(5));
        assert_eq!(opt(&seq, NodeId(0), 7), None);
        assert_eq!(opt(&seq, NodeId(0), 100), None);
    }

    #[test]
    fn successive_times_match_repeats() {
        let seq = chain_sequence().repeat(3);
        let ts = successive_convergecast_times(&seq, NodeId(0), 10);
        assert_eq!(ts, vec![2, 5, 8]);
        // Cap respected.
        let capped = successive_convergecast_times(&seq, NodeId(0), 2);
        assert_eq!(capped, vec![2, 5]);
    }

    #[test]
    fn star_sequence_completion_time() {
        // Sink 0 meets 1, 2, 3 in order; completion at the last meeting.
        let seq = InteractionSequence::from_pairs(4, vec![(0, 1), (0, 2), (0, 3)]);
        let s = optimal_convergecast(&seq, NodeId(0), 0).unwrap();
        assert_eq!(s.completion, 2);
        validate_schedule(&seq, NodeId(0), &s).unwrap();
    }

    #[test]
    fn schedule_uses_intermediate_aggregation_when_faster() {
        // Nodes 1 and 2 can merge early so that a single later meeting with
        // the sink suffices for both.
        let seq = InteractionSequence::from_pairs(3, vec![(1, 2), (0, 2), (0, 1)]);
        let s = optimal_convergecast(&seq, NodeId(0), 0).unwrap();
        // Optimal completes at time 1: 1 -> 2 at t=0, 2 -> 0 at t=1.
        assert_eq!(s.completion, 1);
        validate_schedule(&seq, NodeId(0), &s).unwrap();
    }

    #[test]
    fn single_node_graph() {
        let seq = InteractionSequence::new(1);
        let s = optimal_convergecast(&seq, NodeId(0), 0).unwrap();
        assert_eq!(s.completion, 0);
        assert!(s.transmissions.is_empty());
        validate_schedule(&seq, NodeId(0), &s).unwrap();
    }

    #[test]
    fn start_beyond_sequence_is_infeasible() {
        let seq = chain_sequence();
        assert_eq!(opt(&seq, NodeId(0), 3), None);
    }

    #[test]
    fn empty_sequence_is_infeasible_for_multiple_nodes() {
        let seq = InteractionSequence::new(3);
        assert_eq!(opt(&seq, NodeId(0), 0), None);
        assert!(successive_convergecast_times(&seq, NodeId(0), 5).is_empty());
    }

    #[test]
    fn validate_rejects_broken_schedules() {
        let seq = chain_sequence();
        let good = optimal_convergecast(&seq, NodeId(0), 0).unwrap();

        // Missing transmission.
        let mut missing = good.clone();
        missing.transmissions.pop();
        assert!(validate_schedule(&seq, NodeId(0), &missing).is_err());

        // Wrong pair at a time step.
        let mut wrong_pair = good.clone();
        wrong_pair.transmissions[0] = Transmission {
            time: 0,
            sender: NodeId(1),
            receiver: NodeId(0),
        };
        assert!(validate_schedule(&seq, NodeId(0), &wrong_pair).is_err());

        // Receiver transmits before receiving (violates ownership).
        let bad_order = ConvergecastSchedule {
            start: 0,
            completion: 2,
            transmissions: vec![
                Transmission {
                    time: 0,
                    sender: NodeId(3),
                    receiver: NodeId(2),
                },
                Transmission {
                    time: 2,
                    sender: NodeId(1),
                    receiver: NodeId(0),
                },
                Transmission {
                    // 2 sends to 1 at t=1 — fine — but swap to make 1 send at t=1
                    // and 2 send at t=2? t=2 is {0,1}, so instead break by making
                    // node 2 "send" at time 1 to node 1 after node 1 already sent.
                    time: 1,
                    sender: NodeId(2),
                    receiver: NodeId(1),
                },
            ],
        };
        // Here node 1 receives at t=1 but transmitted at t=2 > 1, so that part
        // is fine; rebuild a truly broken one: node 1 transmits at t=0? Not an
        // interaction of t=0. Use duplicate sender instead.
        let duplicate_sender = ConvergecastSchedule {
            start: 0,
            completion: 2,
            transmissions: vec![
                Transmission {
                    time: 0,
                    sender: NodeId(3),
                    receiver: NodeId(2),
                },
                Transmission {
                    time: 1,
                    sender: NodeId(2),
                    receiver: NodeId(1),
                },
                Transmission {
                    time: 2,
                    sender: NodeId(1),
                    receiver: NodeId(0),
                },
            ],
        };
        // duplicate_sender is actually the valid schedule; verify validity,
        // then corrupt it with a double transmission by node 3.
        validate_schedule(&seq, NodeId(0), &duplicate_sender).unwrap();
        let _ = bad_order; // bad_order happened to be valid too; covered above.
        let mut double = duplicate_sender;
        double.transmissions[1] = Transmission {
            time: 1,
            sender: NodeId(3),
            receiver: NodeId(1),
        };
        assert!(validate_schedule(&seq, NodeId(0), &double).is_err());
    }

    #[test]
    fn feasibility_is_monotone_in_end_time() {
        let seq = InteractionSequence::from_pairs(
            5,
            vec![(1, 2), (3, 4), (2, 3), (0, 1), (0, 2), (0, 3), (0, 4)],
        );
        let sink = NodeId(0);
        let end_opt = opt(&seq, sink, 0).unwrap();
        for end in 0..seq.len() as Time {
            let feasible = convergecast_feasible(&seq, sink, 0, end);
            assert_eq!(feasible, end >= end_opt, "end={end}");
        }
    }

    #[test]
    fn schedules_have_exactly_n_minus_1_transmissions() {
        let seq = InteractionSequence::from_pairs(
            5,
            vec![
                (1, 2),
                (3, 4),
                (2, 3),
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (1, 2),
            ],
        );
        let s = optimal_convergecast(&seq, NodeId(0), 0).unwrap();
        assert_eq!(s.transmissions.len(), 4);
        validate_schedule(&seq, NodeId(0), &s).unwrap();
        let _ = Interaction::new(NodeId(0), NodeId(1));
    }
}
