//! Compact summaries of trial batches.
//!
//! A [`Summary`] is the unit of reporting used by the simulation runner and
//! the experiment harness: for a batch of trials of one (algorithm, n)
//! configuration it records the moments and quantiles of the measured
//! interaction counts, ready to be rendered into a table row.

use crate::descriptive::Descriptive;

/// Summary of a batch of numeric observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Builds a summary from raw observations. Returns `None` for an empty
    /// or non-finite sample.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        let d = Descriptive::from_slice(values)?;
        Some(Summary {
            count: d.len(),
            mean: d.mean(),
            std_dev: d.std_dev(),
            min: d.min(),
            median: d.median(),
            p95: d.quantile(0.95),
            max: d.max(),
        })
    }

    /// Ratio of this summary's mean to another's (e.g. algorithm vs
    /// baseline). Returns `None` if the other mean is zero.
    pub fn mean_ratio_to(&self, other: &Summary) -> Option<f64> {
        if other.mean == 0.0 {
            None
        } else {
            Some(self.mean / other.mean)
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={:5}  mean={:12.1}  sd={:10.1}  median={:12.1}  p95={:12.1}  max={:12.1}",
            self.count, self.mean, self.std_dev, self.median, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_from_values() {
        let s = Summary::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!(s.p95 >= 4.0);
    }

    #[test]
    fn empty_sample_rejected() {
        assert!(Summary::from_values(&[]).is_none());
    }

    #[test]
    fn ratio_between_summaries() {
        let a = Summary::from_values(&[10.0, 10.0]).unwrap();
        let b = Summary::from_values(&[2.0, 2.0]).unwrap();
        assert_eq!(a.mean_ratio_to(&b), Some(5.0));
        let zero = Summary::from_values(&[0.0, 0.0]).unwrap();
        assert_eq!(a.mean_ratio_to(&zero), None);
    }

    #[test]
    fn display_contains_mean() {
        let s = Summary::from_values(&[2.0, 4.0]).unwrap();
        let text = s.to_string();
        assert!(text.contains("mean="));
        assert!(text.contains("3.0"));
    }
}
