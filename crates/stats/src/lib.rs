//! Statistics substrate for the DODA reproduction.
//!
//! The evaluation of "Distributed Online Data Aggregation in Dynamic
//! Graphs" is a set of asymptotic theorems (expected interaction counts and
//! high-probability bounds). Verifying those empirically requires:
//!
//! * **deterministic randomness** — every experiment must be reproducible
//!   from a seed ([`rng`]);
//! * **closed-form quantities** the proofs use — harmonic numbers and the
//!   expectations of the coupon-collector-like processes ([`harmonic`]);
//! * **descriptive statistics** over repeated trials ([`descriptive`],
//!   [`accumulator`], [`histogram`]);
//! * **scaling-law estimation** — fitting `T(n) ≈ c · n^α` on log–log axes
//!   to check that Gathering grows like `n²`, Waiting Greedy like
//!   `n^{3/2}`, the offline optimum like `n log n`, etc. ([`regression`]);
//! * **tail bounds** used in the paper's proofs (Markov, Chebyshev,
//!   Chernoff) to sanity-check high-probability claims ([`bounds`]);
//! * **bootstrap confidence intervals** for reported ratios ([`bootstrap`]).
//!
//! # Example
//!
//! ```
//! use doda_stats::regression::fit_power_law;
//!
//! // Perfect quadratic data: T(n) = 3 n².
//! let ns = [8.0, 16.0, 32.0, 64.0];
//! let ts: Vec<f64> = ns.iter().map(|n| 3.0 * n * n).collect();
//! let fit = fit_power_law(&ns, &ts).unwrap();
//! assert!((fit.exponent - 2.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulator;
pub mod bootstrap;
pub mod bounds;
pub mod descriptive;
pub mod harmonic;
pub mod histogram;
pub mod regression;
pub mod rng;
pub mod summary;

pub use accumulator::OnlineStats;
pub use descriptive::Descriptive;
pub use regression::{fit_power_law, LinearFit, PowerLawFit};
pub use rng::{seeded_rng, SeedSequence};
pub use summary::Summary;
