//! Harmonic numbers and the closed-form expectations used by the paper.
//!
//! The proofs of Theorems 8 and 9 express expected interaction counts as
//! partial sums of harmonic-like series:
//!
//! * broadcast / convergecast with full knowledge (Thm 8):
//!   `E[X] = (n-1) · H(n-1)`;
//! * Waiting (Thm 9): `E[X_W] = n(n-1)/2 · H(n-1)`;
//! * Gathering (Thm 9): `E[X_G] = n(n-1) · Σ_{i=1}^{n-1} 1/(i(i+1))
//!   = n(n-1) · (1 - 1/n) = (n-1)²`.
//!
//! These exact values are what the experiment harness compares measured
//! averages against (the *shape* check of EXPERIMENTS.md).

/// The `n`-th harmonic number `H(n) = Σ_{i=1}^{n} 1/i` (with `H(0) = 0`).
pub fn harmonic(n: usize) -> f64 {
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

/// Partial harmonic sum `H(b) - H(a) = Σ_{i=a+1}^{b} 1/i` for `a <= b`.
///
/// # Panics
///
/// Panics if `a > b`.
pub fn harmonic_range(a: usize, b: usize) -> f64 {
    assert!(a <= b, "harmonic_range requires a <= b, got a={a}, b={b}");
    ((a + 1)..=b).map(|i| 1.0 / i as f64).sum()
}

/// Expected number of uniformly random interactions for a full-knowledge
/// broadcast/convergecast over `n` nodes (Theorem 8):
/// `(n-1) · H(n-1)`.
pub fn expected_full_knowledge_interactions(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    (n as f64 - 1.0) * harmonic(n - 1)
}

/// Expected number of interactions for the Waiting algorithm (Theorem 9):
/// `n(n-1)/2 · H(n-1)`.
pub fn expected_waiting_interactions(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    nf * (nf - 1.0) / 2.0 * harmonic(n - 1)
}

/// Expected number of interactions for the Gathering algorithm (Theorem 9):
/// `n(n-1) · Σ_{i=1}^{n-1} 1/(i(i+1)) = (n-1)²`.
pub fn expected_gathering_interactions(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    (nf - 1.0) * (nf - 1.0)
}

/// Expected number of interactions before the *last* remaining node meets
/// the sink (the lower-bound argument of Theorem 7): `n(n-1)/2`.
pub fn expected_last_meeting_interactions(n: usize) -> f64 {
    let nf = n as f64;
    nf * (nf - 1.0) / 2.0
}

/// The recommended Waiting Greedy horizon `τ = n^{3/2} · sqrt(log n)`
/// (Corollary 3). Returns at least 1 for small `n`.
pub fn waiting_greedy_tau(n: usize) -> u64 {
    if n < 2 {
        return 1;
    }
    let nf = n as f64;
    let tau = nf.powf(1.5) * nf.ln().max(1.0).sqrt();
    tau.ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_grows_like_log() {
        let h = harmonic(100_000);
        let approx = (100_000f64).ln() + 0.577_215_664_9;
        assert!((h - approx).abs() < 1e-4);
    }

    #[test]
    fn harmonic_range_consistency() {
        let a = 7;
        let b = 23;
        assert!((harmonic_range(a, b) - (harmonic(b) - harmonic(a))).abs() < 1e-12);
        assert_eq!(harmonic_range(5, 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "a <= b")]
    fn harmonic_range_rejects_reversed() {
        let _ = harmonic_range(5, 3);
    }

    #[test]
    fn closed_forms_match_direct_sums() {
        for n in [2usize, 3, 10, 50] {
            let nf = n as f64;
            // Thm 8 derivation: Σ n(n-1) / (2 i (n-i)) = (n-1) H(n-1).
            let broadcast: f64 = (1..n)
                .map(|i| nf * (nf - 1.0) / (2.0 * i as f64 * (nf - i as f64)))
                .sum();
            assert!(
                (broadcast - expected_full_knowledge_interactions(n)).abs() < 1e-9,
                "n={n}"
            );
            // Thm 9 Waiting: Σ n(n-1) / (2 (n-i)).
            let waiting: f64 = (1..n)
                .map(|i| nf * (nf - 1.0) / (2.0 * (nf - i as f64)))
                .sum();
            assert!(
                (waiting - expected_waiting_interactions(n)).abs() < 1e-9,
                "n={n}"
            );
            // Thm 9 Gathering: Σ n(n-1) / ((n-i+1)(n-i)) = (n-1)^2.
            let gathering: f64 = (1..n)
                .map(|i| nf * (nf - 1.0) / ((nf - i as f64 + 1.0) * (nf - i as f64)))
                .sum();
            assert!(
                (gathering - expected_gathering_interactions(n)).abs() < 1e-9,
                "n={n}"
            );
        }
    }

    #[test]
    fn tiny_n_edge_cases() {
        assert_eq!(expected_full_knowledge_interactions(1), 0.0);
        assert_eq!(expected_waiting_interactions(0), 0.0);
        assert_eq!(expected_gathering_interactions(1), 0.0);
        assert_eq!(waiting_greedy_tau(1), 1);
    }

    #[test]
    fn waiting_greedy_tau_is_between_nlogn_and_n2() {
        for n in [16usize, 64, 256, 1024] {
            let tau = waiting_greedy_tau(n) as f64;
            let nf = n as f64;
            assert!(tau > nf * nf.ln(), "tau should exceed n log n for n={n}");
            assert!(tau < nf * nf, "tau should be below n^2 for n={n}");
        }
    }

    #[test]
    fn expected_orderings_match_the_paper() {
        // offline < gathering < waiting for reasonable n.
        for n in [8usize, 32, 128] {
            let offline = expected_full_knowledge_interactions(n);
            let gath = expected_gathering_interactions(n);
            let wait = expected_waiting_interactions(n);
            assert!(offline < gath && gath < wait, "ordering violated for n={n}");
        }
        assert!((expected_last_meeting_interactions(10) - 45.0).abs() < 1e-12);
    }
}
