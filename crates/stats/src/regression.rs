//! Least-squares regression utilities.
//!
//! The experiment harness verifies *asymptotic shapes*: Gathering should
//! terminate in `Θ(n²)` interactions, Waiting Greedy in
//! `Θ(n^{3/2}√log n)`, the offline optimum in `Θ(n log n)`. Fitting a power
//! law `T(n) = c·n^α` on log–log axes and reporting the estimated exponent
//! `α` (plus `R²`) gives an objective, constant-free check.

/// Result of an ordinary-least-squares fit of `y = a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Result of a power-law fit `y = c·x^α` (done in log–log space).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Multiplicative constant `c`.
    pub constant: f64,
    /// Exponent `α`.
    pub exponent: f64,
    /// Coefficient of determination in log space.
    pub r_squared: f64,
}

impl PowerLawFit {
    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.constant * x.powf(self.exponent)
    }
}

/// Ordinary least squares for `y = a + b·x`.
///
/// Returns `None` if fewer than two points are supplied, if the lengths
/// differ, if any value is non-finite, or if all `x` are identical.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite()) {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        intercept,
        slope,
        r_squared,
    })
}

/// Fits `y = c·x^α` by OLS on `(ln x, ln y)`.
///
/// Returns `None` under the same conditions as [`linear_fit`], or if any
/// input is non-positive (logarithms would be undefined).
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> Option<PowerLawFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    if xs.iter().chain(ys).any(|v| !v.is_finite() || *v <= 0.0) {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let lin = linear_fit(&lx, &ly)?;
    Some(PowerLawFit {
        constant: lin.intercept.exp(),
        exponent: lin.slope,
        r_squared: lin.r_squared,
    })
}

/// Fits `y = c · x^α` while dividing out a known `(log x)^β` factor first,
/// i.e. fits `y / (ln x)^beta = c · x^α`.
///
/// Useful to check e.g. that the offline optimum behaves like `n log n`
/// (fit with `beta = 1`, expect exponent ≈ 1) or that Waiting Greedy behaves
/// like `n^{3/2} √log n` (fit with `beta = 0.5`, expect exponent ≈ 1.5).
pub fn fit_power_law_with_log_factor(xs: &[f64], ys: &[f64], beta: f64) -> Option<PowerLawFit> {
    if xs.len() != ys.len() {
        return None;
    }
    let adjusted: Vec<f64> = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let lf = x.ln().max(f64::MIN_POSITIVE).powf(beta);
            y / lf
        })
        .collect();
    fit_power_law(xs, &adjusted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_rejects_degenerate_inputs() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0, f64::NAN], &[2.0, 3.0]).is_none());
    }

    #[test]
    fn power_law_recovers_exponent() {
        let xs = [8.0, 16.0, 32.0, 64.0, 128.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| 0.5 * x.powf(1.5)).collect();
        let fit = fit_power_law(&xs, &ys).unwrap();
        assert!((fit.exponent - 1.5).abs() < 1e-9);
        assert!((fit.constant - 0.5).abs() < 1e-9);
        assert!((fit.predict(256.0) - 0.5 * 256f64.powf(1.5)).abs() < 1e-6);
    }

    #[test]
    fn power_law_rejects_non_positive() {
        assert!(fit_power_law(&[1.0, 2.0], &[0.0, 3.0]).is_none());
        assert!(fit_power_law(&[-1.0, 2.0], &[1.0, 3.0]).is_none());
    }

    #[test]
    fn power_law_with_noise_is_close() {
        // y = 2 n^2 with ±5% multiplicative noise.
        let xs: Vec<f64> = (3..12).map(|k| (1usize << k) as f64).collect();
        let noise = [1.03, 0.97, 1.01, 0.99, 1.05, 0.95, 1.02, 0.98, 1.0];
        let ys: Vec<f64> = xs
            .iter()
            .zip(noise.iter())
            .map(|(x, e)| 2.0 * x * x * e)
            .collect();
        let fit = fit_power_law(&xs, &ys).unwrap();
        assert!(
            (fit.exponent - 2.0).abs() < 0.05,
            "exponent {}",
            fit.exponent
        );
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn log_factor_adjustment_recovers_nlogn() {
        let xs: Vec<f64> = (4..14).map(|k| (1usize << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x.ln()).collect();
        // Plain power-law fit over-estimates the exponent slightly above 1.
        let plain = fit_power_law(&xs, &ys).unwrap();
        assert!(plain.exponent > 1.05);
        // Dividing out log recovers exponent 1 exactly.
        let adjusted = fit_power_law_with_log_factor(&xs, &ys, 1.0).unwrap();
        assert!((adjusted.exponent - 1.0).abs() < 1e-9);
        assert!((adjusted.constant - 3.0).abs() < 1e-9);
    }
}
