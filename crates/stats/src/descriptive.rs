//! Descriptive statistics over a finite sample.

/// Summary statistics of a sample of `f64` observations.
///
/// Construction computes everything eagerly; accessors are free.
///
/// # Example
///
/// ```
/// use doda_stats::Descriptive;
///
/// let d = Descriptive::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(d.mean(), 2.5);
/// assert_eq!(d.min(), 1.0);
/// assert_eq!(d.median(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Descriptive {
    sorted: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Descriptive {
    /// Builds the summary from a slice of observations.
    ///
    /// Returns `None` if the slice is empty or contains non-finite values.
    pub fn from_slice(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mut sorted = values.to_vec();
        // `total_cmp` instead of `partial_cmp(..).expect(..)`: the
        // finiteness check above makes the two equivalent today, but a
        // sort used on measurement data must stay panic-free even if
        // that guard ever loosens.
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let variance = if sorted.len() > 1 {
            sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Some(Descriptive {
            sorted,
            mean,
            variance,
        })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if there are no observations (never true for a
    /// constructed value, kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for a single observation).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.len() as f64).sqrt()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Median (linear interpolation between the two middle elements for an
    /// even sample size).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Quantile by linear interpolation, `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile q={q} outside [0, 1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// A normal-approximation 95% confidence interval for the mean
    /// (`mean ± 1.96 · stderr`).
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean - half, self.mean + half)
    }

    /// Fraction of observations `<= bound`, used for "with high probability
    /// the algorithm terminates within the bound" checks.
    pub fn fraction_within(&self, bound: f64) -> f64 {
        let count = self.sorted.partition_point(|&v| v <= bound);
        count as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let d = Descriptive::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((d.mean() - 5.0).abs() < 1e-12);
        assert!((d.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(d.len(), 8);
        assert!(!d.is_empty());
    }

    #[test]
    fn empty_and_nonfinite_are_rejected() {
        assert!(Descriptive::from_slice(&[]).is_none());
        assert!(Descriptive::from_slice(&[1.0, f64::NAN]).is_none());
        assert!(Descriptive::from_slice(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_observation() {
        let d = Descriptive::from_slice(&[3.5]).unwrap();
        assert_eq!(d.mean(), 3.5);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.median(), 3.5);
        assert_eq!(d.quantile(0.9), 3.5);
        assert_eq!(d.min(), 3.5);
        assert_eq!(d.max(), 3.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let d = Descriptive::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 4.0);
        assert!((d.median() - 2.5).abs() < 1e-12);
        assert!((d.quantile(0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_out_of_range() {
        let d = Descriptive::from_slice(&[1.0, 2.0]).unwrap();
        let _ = d.quantile(1.5);
    }

    #[test]
    fn ci_contains_mean() {
        let d = Descriptive::from_slice(&[10.0, 12.0, 9.0, 11.0, 10.5]).unwrap();
        let (lo, hi) = d.ci95();
        assert!(lo < d.mean() && d.mean() < hi);
    }

    #[test]
    fn fraction_within_bound() {
        let d = Descriptive::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(d.fraction_within(3.0), 0.6);
        assert_eq!(d.fraction_within(0.5), 0.0);
        assert_eq!(d.fraction_within(10.0), 1.0);
    }

    #[test]
    fn median_of_odd_sample() {
        let d = Descriptive::from_slice(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(d.median(), 3.0);
    }
}
