//! Fixed-width histograms for trial outcome distributions.

/// A histogram with uniform bin width over `[lo, hi)`, plus underflow and
/// overflow counters.
///
/// # Example
///
/// ```
/// use doda_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.add(2.5);
/// h.add(7.5);
/// h.add(11.0);
/// assert_eq!(h.counts(), &[0, 1, 0, 1, 0]);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `bins` uniform bins covering `[lo, hi)`.
    ///
    /// Returns `None` if `bins == 0`, if the bounds are non-finite, or if
    /// `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if bins == 0 || !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((x - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `[lo, hi)` range of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index {i} out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Renders a compact text view ("lo..hi: count") used by examples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.counts.iter().enumerate() {
            let (a, b) = self.bin_range(i);
            out.push_str(&format!("[{a:10.1}, {b:10.1}): {c}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 4).is_some());
    }

    #[test]
    fn binning_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add(0.0); // first bin
        h.add(9.999); // last bin
        h.add(10.0); // overflow (range is half-open)
        h.add(-0.1); // underflow
        h.add(f64::NAN); // counted as underflow bucket (non-finite)
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn bin_ranges_tile_the_interval() {
        let h = Histogram::new(0.0, 100.0, 4).unwrap();
        assert_eq!(h.bin_range(0), (0.0, 25.0));
        assert_eq!(h.bin_range(3), (75.0, 100.0));
    }

    #[test]
    fn render_contains_counts() {
        let mut h = Histogram::new(0.0, 4.0, 2).unwrap();
        h.add(1.0);
        h.add(3.0);
        h.add(3.5);
        let text = h.render();
        assert!(text.contains(": 1"));
        assert!(text.contains(": 2"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_range_out_of_bounds() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.bin_range(2);
    }
}
