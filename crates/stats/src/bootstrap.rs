//! Bootstrap confidence intervals.
//!
//! Empirical ratios between algorithms (e.g. "Gathering needs ~`n/log n`
//! times more interactions than the offline optimum") are reported with a
//! percentile-bootstrap confidence interval, which makes the shape claims
//! in EXPERIMENTS.md quantitative without distributional assumptions.

use rand::Rng;

use crate::rng::DodaRng;

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (the statistic on the full sample).
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

/// Computes a percentile-bootstrap confidence interval for an arbitrary
/// statistic of a sample.
///
/// Returns `None` if the sample is empty, `resamples == 0`, or `level` is
/// outside `(0, 1)`.
pub fn bootstrap_ci<F>(
    sample: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    rng: &mut DodaRng,
) -> Option<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    if sample.is_empty() || resamples == 0 || !(0.0 < level && level < 1.0) {
        return None;
    }
    let estimate = statistic(sample);
    let mut stats = Vec::with_capacity(resamples);
    let mut buffer = vec![0.0; sample.len()];
    for _ in 0..resamples {
        for slot in buffer.iter_mut() {
            *slot = sample[rng.gen_range(0..sample.len())];
        }
        stats.push(statistic(&buffer));
    }
    // Total order, not `partial_cmp(..).expect(..)`: the caller's
    // statistic may return NaN (0/0 on a degenerate resample), and a
    // percentile routine must not panic on it. `total_cmp` places NaN
    // by sign bit — negative NaN below every number, positive NaN
    // above — so the sort stays total, deterministic, and panic-free;
    // a NaN percentile is reported as NaN rather than aborting the run.
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((stats.len() as f64 - 1.0) * alpha).round() as usize;
    let hi_idx = ((stats.len() as f64 - 1.0) * (1.0 - alpha)).round() as usize;
    Some(BootstrapCi {
        estimate,
        lower: stats[lo_idx],
        upper: stats[hi_idx.min(stats.len() - 1)],
        level,
    })
}

/// Convenience wrapper: bootstrap CI of the sample mean.
pub fn bootstrap_mean_ci(
    sample: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut DodaRng,
) -> Option<BootstrapCi> {
    bootstrap_ci(
        sample,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        resamples,
        level,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn rejects_degenerate_inputs() {
        let mut rng = seeded_rng(1);
        assert!(bootstrap_mean_ci(&[], 100, 0.95, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 0, 0.95, &mut rng).is_none());
        assert!(bootstrap_mean_ci(&[1.0], 100, 1.5, &mut rng).is_none());
    }

    #[test]
    fn constant_sample_gives_degenerate_interval() {
        let mut rng = seeded_rng(2);
        let ci = bootstrap_mean_ci(&[5.0; 20], 200, 0.95, &mut rng).unwrap();
        assert_eq!(ci.estimate, 5.0);
        assert_eq!(ci.lower, 5.0);
        assert_eq!(ci.upper, 5.0);
    }

    #[test]
    fn interval_brackets_the_estimate() {
        let mut rng = seeded_rng(3);
        let sample: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let ci = bootstrap_mean_ci(&sample, 500, 0.95, &mut rng).unwrap();
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        assert!(ci.upper - ci.lower < 2.0, "CI should be tight for n=200");
    }

    #[test]
    fn bootstrap_is_deterministic_given_seed() {
        let sample: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&sample, 300, 0.9, &mut seeded_rng(9)).unwrap();
        let b = bootstrap_mean_ci(&sample, 300, 0.9, &mut seeded_rng(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn custom_statistic_median_ratio() {
        let mut rng = seeded_rng(4);
        // Ratio of max to min as an arbitrary statistic.
        let sample = [2.0, 4.0, 8.0, 16.0];
        let ci = bootstrap_ci(
            &sample,
            |s| {
                let max = s.iter().cloned().fold(f64::MIN, f64::max);
                let min = s.iter().cloned().fold(f64::MAX, f64::min);
                max / min
            },
            200,
            0.9,
            &mut rng,
        )
        .unwrap();
        assert_eq!(ci.estimate, 8.0);
        assert!(ci.lower >= 1.0);
        assert!(ci.upper <= 8.0 + 1e-9);
    }

    #[test]
    fn nan_statistics_are_sorted_totally_instead_of_panicking() {
        // Regression: the percentile sort used to be
        // `partial_cmp(..).expect("statistics are finite")`, which
        // panicked the moment a resample produced NaN. A statistic
        // computing 0/0 on an all-zero resample does exactly that.
        let nan_prone = |s: &[f64]| {
            let ones = s.iter().filter(|v| **v != 0.0).count() as f64;
            // NaN (0/0) whenever a resample drew only zeros.
            ones / ones * (ones / s.len() as f64)
        };
        let sample = [0.0, 0.0, 0.0, 1.0];
        let mut rng = seeded_rng(11);
        let ci = bootstrap_ci(&sample, nan_prone, 200, 0.95, &mut rng)
            .expect("NaN statistics must not panic the percentile sort");
        // The total order is deterministic bit-for-bit, so the same
        // seed reproduces the same percentiles even when one of them
        // lands on a NaN resample.
        let mut rng = seeded_rng(11);
        let again = bootstrap_ci(&sample, nan_prone, 200, 0.95, &mut rng).unwrap();
        assert_eq!(ci.lower.to_bits(), again.lower.to_bits());
        assert_eq!(ci.upper.to_bits(), again.upper.to_bits());
        // And NaN resamples really did occur, so the sort saw them.
        assert!(ci.lower.is_nan() || ci.upper.is_nan() || ci.lower <= ci.upper);
    }
}
