//! Online (streaming) statistics accumulator.
//!
//! Used by the parallel simulation runner: each worker thread accumulates
//! trial outcomes with Welford's algorithm and the partial accumulators are
//! merged at the end, so that no per-trial vector needs to be kept when
//! running hundreds of thousands of trials.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm), with
/// exact merging of two accumulators.
///
/// # Example
///
/// ```
/// use doda_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if nothing was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::Descriptive;

    #[test]
    fn matches_batch_statistics() {
        let data = [3.0, 1.5, 4.25, 0.5, 9.0, 2.0];
        let online: OnlineStats = data.iter().copied().collect();
        let batch = Descriptive::from_slice(&data).unwrap();
        assert_eq!(online.count(), data.len() as u64);
        assert!((online.mean() - batch.mean()).abs() < 1e-12);
        assert!((online.variance() - batch.variance()).abs() < 1e-12);
        assert_eq!(online.min(), batch.min());
        assert_eq!(online.max(), batch.max());
    }

    #[test]
    fn empty_accumulator() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_value() {
        let mut s = OnlineStats::new();
        s.push(7.0);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let whole: OnlineStats = data.iter().copied().collect();
        let mut left: OnlineStats = data[..37].iter().copied().collect();
        let right: OnlineStats = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let data = [1.0, 2.0, 3.0];
        let mut s: OnlineStats = data.iter().copied().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
