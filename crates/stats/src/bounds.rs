//! Concentration / tail bounds.
//!
//! The paper's high-probability statements are obtained through Chebyshev's
//! inequality applied to the interaction-count random variables (Theorems
//! 8, 9, 10 and Lemma 1). The helpers here compute those bounds so the
//! experiment harness can (a) report the theoretical failure probability
//! alongside the empirical one and (b) test the proof arithmetic itself.

/// Markov bound: `P(X ≥ a) ≤ E[X] / a` for a non-negative variable.
///
/// Returns a probability clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `a <= 0` or `mean < 0`.
pub fn markov_upper_bound(mean: f64, a: f64) -> f64 {
    assert!(a > 0.0, "Markov threshold must be positive, got {a}");
    assert!(mean >= 0.0, "Markov mean must be non-negative, got {mean}");
    (mean / a).min(1.0)
}

/// Chebyshev bound: `P(|X − E[X]| ≥ t) ≤ Var(X) / t²`.
///
/// Returns a probability clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `t <= 0` or `variance < 0`.
pub fn chebyshev_upper_bound(variance: f64, t: f64) -> f64 {
    assert!(t > 0.0, "Chebyshev deviation must be positive, got {t}");
    assert!(
        variance >= 0.0,
        "variance must be non-negative, got {variance}"
    );
    (variance / (t * t)).min(1.0)
}

/// Multiplicative Chernoff bound for a sum of independent 0/1 variables
/// with mean `mu`: `P(X ≥ (1+δ)μ) ≤ exp(−δ²μ / (2+δ))` for `δ > 0`.
///
/// # Panics
///
/// Panics if `mu < 0` or `delta <= 0`.
pub fn chernoff_upper_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0, "mu must be non-negative, got {mu}");
    assert!(delta > 0.0, "delta must be positive, got {delta}");
    (-(delta * delta) * mu / (2.0 + delta)).exp().min(1.0)
}

/// Multiplicative Chernoff bound for the lower tail:
/// `P(X ≤ (1−δ)μ) ≤ exp(−δ²μ / 2)` for `0 < δ < 1`.
///
/// # Panics
///
/// Panics if `mu < 0` or `delta` is outside `(0, 1)`.
pub fn chernoff_lower_tail(mu: f64, delta: f64) -> f64 {
    assert!(mu >= 0.0, "mu must be non-negative, got {mu}");
    assert!(
        (0.0..1.0).contains(&delta) && delta > 0.0,
        "delta must be in (0, 1), got {delta}"
    );
    (-(delta * delta) * mu / 2.0).exp().min(1.0)
}

/// The paper's notion of "with high probability": an event `A_n` holds
/// w.h.p. if `P(A_n) > 1 − o(1/log n)` as `n → ∞` (footnote 1 of the
/// paper). This helper returns the failure-probability budget `1/log n`
/// that empirical failure rates are compared against.
///
/// Returns 1.0 for `n ≤ 2` where the budget is vacuous.
pub fn whp_failure_budget(n: usize) -> f64 {
    if n <= 2 {
        return 1.0;
    }
    1.0 / (n as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_basic() {
        assert_eq!(markov_upper_bound(5.0, 10.0), 0.5);
        assert_eq!(markov_upper_bound(5.0, 2.0), 1.0);
        assert_eq!(markov_upper_bound(0.0, 2.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn markov_rejects_nonpositive_threshold() {
        let _ = markov_upper_bound(1.0, 0.0);
    }

    #[test]
    fn chebyshev_basic() {
        assert_eq!(chebyshev_upper_bound(4.0, 4.0), 0.25);
        assert_eq!(chebyshev_upper_bound(100.0, 5.0), 1.0);
        assert_eq!(chebyshev_upper_bound(0.0, 1.0), 0.0);
    }

    #[test]
    fn chebyshev_matches_theorem_9_waiting_argument() {
        // Thm 9: Var(X_W) ~ n^4 π² / 24, deviation t = n² log n
        // ⇒ failure probability O(1/log² n). Check the arithmetic at n = 1000.
        let n = 1000f64;
        let var = n.powi(4) * std::f64::consts::PI.powi(2) / 24.0;
        let t = n * n * n.ln();
        let bound = chebyshev_upper_bound(var, t);
        let expected = std::f64::consts::PI.powi(2) / (24.0 * n.ln() * n.ln());
        assert!((bound - expected).abs() < 1e-12);
        assert!(bound < 0.01);
    }

    #[test]
    fn chernoff_tails_shrink_with_mu() {
        let small = chernoff_upper_tail(10.0, 0.5);
        let large = chernoff_upper_tail(1000.0, 0.5);
        assert!(large < small);
        assert!(large < 1e-20);
        let lower = chernoff_lower_tail(1000.0, 0.5);
        assert!(lower < 1e-50);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn chernoff_lower_rejects_large_delta() {
        let _ = chernoff_lower_tail(10.0, 1.5);
    }

    #[test]
    fn whp_budget_decreases() {
        assert_eq!(whp_failure_budget(2), 1.0);
        let b10 = whp_failure_budget(10);
        let b1000 = whp_failure_budget(1000);
        assert!(b1000 < b10);
        assert!((b1000 - 1.0 / 1000f64.ln()).abs() < 1e-12);
    }
}
