//! Deterministic random number generation.
//!
//! Every randomized experiment in the reproduction (the randomized
//! adversary, the workload generators, bootstrap resampling) is driven by a
//! ChaCha8 stream seeded explicitly, so that any figure or table can be
//! regenerated bit-for-bit from its seed.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The concrete RNG used across the workspace.
pub type DodaRng = ChaCha8Rng;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use doda_stats::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> DodaRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A deterministic generator of per-trial seeds.
///
/// Experiments typically run many independent trials; `SeedSequence` derives
/// one sub-seed per trial from a single experiment seed so that trials are
/// independent yet reproducible, and so that adding trials never perturbs
/// the seeds of earlier ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    base: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `base`.
    pub fn new(base: u64) -> Self {
        SeedSequence { base }
    }

    /// Returns the seed for trial `index`.
    ///
    /// Uses the SplitMix64 output function, which maps distinct inputs to
    /// well-spread 64-bit outputs.
    pub fn seed(&self, index: u64) -> u64 {
        let mut z = self
            .base
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the RNG for trial `index`.
    pub fn rng(&self, index: u64) -> DodaRng {
        seeded_rng(self.seed(index))
    }

    /// Derives a child sequence (e.g. one per value of `n` in a sweep).
    pub fn child(&self, label: u64) -> SeedSequence {
        SeedSequence {
            base: self.seed(label ^ 0xA5A5_A5A5_A5A5_A5A5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn seed_sequence_is_stable_and_spread() {
        let seq = SeedSequence::new(42);
        let s0 = seq.seed(0);
        let s1 = seq.seed(1);
        assert_ne!(s0, s1);
        // Stability: same index, same seed.
        assert_eq!(seq.seed(0), s0);
        // 1000 trial seeds are all distinct.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(seq.seed(i)));
        }
    }

    #[test]
    fn child_sequences_are_independent() {
        let seq = SeedSequence::new(7);
        let a = seq.child(0);
        let b = seq.child(1);
        assert_ne!(a.seed(0), b.seed(0));
        assert_ne!(a.seed(0), seq.seed(0));
    }

    #[test]
    fn trial_rngs_reproduce() {
        let seq = SeedSequence::new(9);
        let x: u64 = seq.rng(5).gen();
        let y: u64 = seq.rng(5).gen();
        assert_eq!(x, y);
    }
}
