//! E8 — Theorem 8 / Corollary 1: with full knowledge the optimal algorithm
//! terminates in Θ(n log n) interactions (expectation (n−1)·H(n−1)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doda_bench::{mean_interactions, report_line, REPORT_NS, REPORT_TRIALS, TIMED_N};
use doda_sim::AlgorithmSpec;
use doda_stats::harmonic;

fn print_reproduction() {
    report_line(
        "E8",
        "paper",
        "E[offline optimal] = (n-1)·H(n-1) = Θ(n log n) (Thm 8, Cor 1)",
    );
    for &n in REPORT_NS {
        let measured = mean_interactions(AlgorithmSpec::OfflineOptimal, n, REPORT_TRIALS, 0xE8);
        let expected = harmonic::expected_full_knowledge_interactions(n);
        report_line(
            "E8",
            &format!("n={n}"),
            &format!(
                "measured mean {measured:.0} | (n-1)H(n-1) = {expected:.0} | ratio {:.2}",
                measured / expected
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("e08_full_knowledge");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("offline_optimal_batch", TIMED_N), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            mean_interactions(AlgorithmSpec::OfflineOptimal, TIMED_N, 3, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
