//! E4–E6 and E12 — the knowledge/cost results (Theorems 4, 5, 6) and the
//! cost-function machinery of Section 2.3.

use criterion::{criterion_group, criterion_main, Criterion};
use doda_analysis::experiments::{
    e12_cost_function, e4_recurring_edges, e5_tree_underlying, e6_future_knowledge, Effort,
};
use doda_bench::report_line;
use doda_core::convergecast::optimal_convergecast;
use doda_core::cost::cost_of_duration;
use doda_graph::NodeId;
use doda_workloads::{UniformWorkload, Workload};

fn print_reproduction() {
    for report in [
        e4_recurring_edges(Effort::Full),
        e5_tree_underlying(Effort::Full),
        e6_future_knowledge(Effort::Full),
        e12_cost_function(Effort::Full),
    ] {
        report_line(&report.id, "claim", &report.paper_claim);
        report_line(&report.id, "measured", &report.measured);
        report_line(
            &report.id,
            "status",
            if report.passed {
                "consistent"
            } else {
                "MISMATCH"
            },
        );
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("e_cost_function");
    group.sample_size(10);
    let n = 32;
    let seq = UniformWorkload::new(n).generate(8 * n * n, 0xC057);
    group.bench_function("optimal_convergecast_n32", |b| {
        b.iter(|| optimal_convergecast(&seq, NodeId(0), 0).map(|s| s.completion));
    });
    group.bench_function("cost_of_duration_n32", |b| {
        b.iter(|| cost_of_duration(&seq, NodeId(0), Some(seq.len() as u64 / 2), 64));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
