//! E9 — Theorem 9: Waiting needs n(n−1)/2·H(n−1) = O(n² log n) expected
//! interactions, Gathering needs (n−1)² = O(n²).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doda_bench::{mean_interactions, report_line, REPORT_NS, REPORT_TRIALS, TIMED_N};
use doda_sim::AlgorithmSpec;
use doda_stats::harmonic;

fn print_reproduction() {
    report_line(
        "E9",
        "paper",
        "E[Waiting] = n(n-1)/2·H(n-1), E[Gathering] = (n-1)^2 (Thm 9)",
    );
    for &n in REPORT_NS {
        let waiting = mean_interactions(AlgorithmSpec::Waiting, n, REPORT_TRIALS, 0xE9);
        let gathering = mean_interactions(AlgorithmSpec::Gathering, n, REPORT_TRIALS, 0x9E);
        let expected_w = harmonic::expected_waiting_interactions(n);
        let expected_g = harmonic::expected_gathering_interactions(n);
        report_line(
            "E9",
            &format!("n={n}"),
            &format!(
                "Waiting {waiting:.0} (formula {expected_w:.0}, ratio {:.2}) | Gathering {gathering:.0} (formula {expected_g:.0}, ratio {:.2}) | gap {:.2} vs predicted {:.2}",
                waiting / expected_w,
                gathering / expected_g,
                waiting / gathering,
                expected_w / expected_g,
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("e09_waiting_gathering");
    group.sample_size(10);
    for spec in [AlgorithmSpec::Waiting, AlgorithmSpec::Gathering] {
        group.bench_function(BenchmarkId::new(spec.label(), TIMED_N), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                mean_interactions(spec, TIMED_N, 3, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
