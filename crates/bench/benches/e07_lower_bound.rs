//! E7 — Theorem 7: the Ω(n²) lower bound without knowledge, matched by
//! Gathering ((n−1)² expected interactions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doda_bench::{mean_interactions, report_line, REPORT_NS, REPORT_TRIALS, TIMED_N};
use doda_sim::AlgorithmSpec;
use doda_stats::harmonic;

fn print_reproduction() {
    report_line(
        "E7",
        "paper",
        "E[Gathering] = (n-1)^2, optimal without knowledge (Thm 7)",
    );
    for &n in REPORT_NS {
        let measured = mean_interactions(AlgorithmSpec::Gathering, n, REPORT_TRIALS, 0xE7);
        let expected = harmonic::expected_gathering_interactions(n);
        report_line(
            "E7",
            &format!("n={n}"),
            &format!(
                "measured mean {measured:.0} | (n-1)^2 = {expected:.0} | ratio {:.2}",
                measured / expected
            ),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("e07_lower_bound");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("gathering_batch", TIMED_N), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            mean_interactions(AlgorithmSpec::Gathering, TIMED_N, 3, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
