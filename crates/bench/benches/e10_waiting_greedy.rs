//! E10 — Theorem 10 / Corollary 3: Waiting Greedy with
//! τ = n^{3/2}·√(log n) terminates within τ interactions w.h.p.; a τ-sweep
//! shows the max(n·f, n²·log n / f) trade-off around the optimum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doda_analysis::whp::check_within_bound;
use doda_bench::{mean_interactions, report_line, REPORT_TRIALS, TIMED_N};
use doda_sim::AlgorithmSpec;
use doda_stats::harmonic;

fn print_reproduction() {
    report_line(
        "E10",
        "paper",
        "WG with τ = n^{3/2}√log n terminates within τ w.h.p. (Thm 10, Cor 3)",
    );
    // W.h.p. check across n.
    let ns = [32usize, 64, 128];
    let points = check_within_bound(
        AlgorithmSpec::WaitingGreedy { tau: None },
        &ns,
        REPORT_TRIALS,
        0xE10,
        |n| harmonic::waiting_greedy_tau(n) as f64,
    );
    for p in &points {
        report_line(
            "E10",
            &format!("n={}", p.n),
            &format!(
                "{:.0}% of trials terminate within τ = {:.0} (allowed failure 1/log n = {:.2})",
                p.fraction_within * 100.0,
                p.bound,
                p.allowed_failure
            ),
        );
    }
    // τ-sweep at a fixed n: the mean completion time is minimised near the
    // recommended τ; far smaller or larger values degrade it.
    let n = 64;
    let recommended = harmonic::waiting_greedy_tau(n);
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let tau = ((recommended as f64) * factor) as u64;
        let mean = mean_interactions(
            AlgorithmSpec::WaitingGreedy { tau: Some(tau) },
            n,
            REPORT_TRIALS,
            0xA10,
        );
        report_line(
            "E10",
            &format!("n={n}, τ = {factor:.2}×recommended"),
            &format!("mean completion {mean:.0} interactions (τ = {tau})"),
        );
    }
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("e10_waiting_greedy");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("waiting_greedy_batch", TIMED_N), |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            mean_interactions(AlgorithmSpec::WaitingGreedy { tau: None }, TIMED_N, 3, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
