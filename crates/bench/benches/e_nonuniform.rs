//! Ablation — the paper's concluding question 3: does a *non-uniform*
//! randomized adversary change the picture? We compare the algorithms under
//! the uniform adversary and under a Zipf-weighted adversary in which the
//! sink is the most popular node (hub) or the least popular one (remote).

use criterion::{criterion_group, criterion_main, Criterion};
use doda_adversary::WeightedRandomAdversary;
use doda_bench::{report_line, REPORT_TRIALS, TIMED_N};
use doda_core::prelude::*;
use doda_graph::NodeId;
use doda_sim::{run_trial_on_sequence, AlgorithmSpec, TrialConfig};
use doda_stats::Summary;

/// Mean interactions to completion for `spec` under a weighted adversary.
fn mean_under_weights(spec: AlgorithmSpec, weights: &[f64], trials: usize, seed: u64) -> f64 {
    let n = weights.len();
    let mut completions = Vec::new();
    for trial in 0..trials {
        let mut adversary = WeightedRandomAdversary::new(weights.to_vec(), seed + trial as u64);
        let seq = adversary.generate_sequence(16 * n * n);
        let result = run_trial_on_sequence(spec, &seq, &TrialConfig::default());
        if let Some(x) = result.interactions_to_completion() {
            completions.push(x);
        }
    }
    Summary::from_values(&completions)
        .map(|s| s.mean)
        .unwrap_or(f64::NAN)
}

fn print_reproduction() {
    report_line(
        "E-nonuniform",
        "question",
        "concluding remark 3: do non-uniform randomized adversaries alter the bounds?",
    );
    let n = 32;
    let uniform = vec![1.0; n];
    // Popular sink: the sink (node 0) is contacted far more often.
    let popular_sink: Vec<f64> = (0..n).map(|i| if i == 0 { 8.0 } else { 1.0 }).collect();
    // Remote sink: the sink is contacted far less often.
    let remote_sink: Vec<f64> = (0..n)
        .map(|i| if i == 0 { 1.0 / 8.0 } else { 1.0 })
        .collect();
    for spec in [
        AlgorithmSpec::Gathering,
        AlgorithmSpec::Waiting,
        AlgorithmSpec::WaitingGreedy { tau: None },
    ] {
        let u = mean_under_weights(spec, &uniform, REPORT_TRIALS, 0xAB1);
        let p = mean_under_weights(spec, &popular_sink, REPORT_TRIALS, 0xAB2);
        let r = mean_under_weights(spec, &remote_sink, REPORT_TRIALS, 0xAB3);
        report_line(
            "E-nonuniform",
            spec.label(),
            &format!(
                "uniform {u:.0} | popular sink {p:.0} | remote sink {r:.0} interactions (n={n})"
            ),
        );
    }
    let _ = Interaction::new(NodeId(0), NodeId(1));
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("e_nonuniform");
    group.sample_size(10);
    group.bench_function("gathering_under_zipf", |b| {
        let weights: Vec<f64> = (0..TIMED_N).map(|i| 1.0 / (i + 1) as f64).collect();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            mean_under_weights(AlgorithmSpec::Gathering, &weights, 2, seed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
