//! E11 — Theorem 11: with meetTime knowledge Waiting Greedy is optimal; the
//! measured ordering offline < WaitingGreedy < Gathering < Waiting holds at
//! every n, and the fitted exponents match n log n, n^{3/2}√log n, n², n² log n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doda_analysis::report::{exponents_to_markdown, scaling_to_markdown};
use doda_analysis::ScalingStudy;
use doda_bench::{mean_interactions, report_line, TIMED_N};
use doda_sim::AlgorithmSpec;

fn print_reproduction() {
    report_line(
        "E11",
        "paper",
        "ordering offline < WG < Gathering < Waiting; WG is Θ(n^{3/2}√log n) (Thm 11)",
    );
    let study = ScalingStudy {
        ns: vec![16, 32, 64, 128],
        trials: 20,
        seed: 0xE11,
        parallel: true,
    };
    let results = study.run_all(&AlgorithmSpec::randomized_comparison());
    eprintln!("{}", scaling_to_markdown(&results));
    eprintln!("{}", exponents_to_markdown(&results));
    let ordered = doda_analysis::crossover::ordering_holds_everywhere(&results);
    report_line("E11", "ordering holds at every n", &ordered.to_string());
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("e11_meettime_optimality");
    group.sample_size(10);
    for spec in AlgorithmSpec::randomized_comparison() {
        group.bench_function(BenchmarkId::new(spec.label(), TIMED_N), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                mean_interactions(spec, TIMED_N, 2, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
