//! E1–E3 — the adversarial impossibility constructions of Theorems 1–3:
//! no algorithm terminates under them while convergecasts remain possible.

use criterion::{criterion_group, criterion_main, Criterion};
use doda_adversary::{AdaptiveTrap, CycleTrap, ObliviousTrap};
use doda_analysis::experiments::{e1_adaptive_adversary, e2_oblivious_trap, e3_cycle_trap, Effort};
use doda_bench::report_line;
use doda_core::prelude::*;

fn print_reproduction() {
    for report in [
        e1_adaptive_adversary(Effort::Full),
        e2_oblivious_trap(Effort::Full),
        e3_cycle_trap(Effort::Full),
    ] {
        report_line(&report.id, "claim", &report.paper_claim);
        report_line(&report.id, "measured", &report.measured);
        report_line(
            &report.id,
            "status",
            if report.passed {
                "consistent"
            } else {
                "MISMATCH"
            },
        );
    }
}

fn run_gathering_under_adaptive_trap(horizon: u64) -> bool {
    let mut trap = AdaptiveTrap::new();
    let mut algo = Gathering::new();
    engine::run_with_id_sets(
        &mut algo,
        &mut trap,
        AdaptiveTrap::SINK,
        EngineConfig::sweep(horizon),
    )
    .expect("valid decisions")
    .terminated()
}

fn bench(c: &mut Criterion) {
    print_reproduction();
    let mut group = c.benchmark_group("e_adversarial");
    group.sample_size(10);
    group.bench_function("adaptive_trap_10k_interactions", |b| {
        b.iter(|| run_gathering_under_adaptive_trap(10_000));
    });
    group.bench_function("oblivious_trap_materialize_and_cost", |b| {
        b.iter(|| {
            let trap = ObliviousTrap::for_greedy_algorithms(16);
            let seq = trap.materialize(5_000);
            convergecast::successive_convergecast_times(&seq, ObliviousTrap::SINK, 16).len()
        });
    });
    group.bench_function("cycle_trap_vs_spanning_tree_10k", |b| {
        b.iter(|| {
            let underlying = CycleTrap::underlying_graph();
            let mut algo =
                SpanningTreeAggregation::from_underlying_graph(&underlying, CycleTrap::SINK)
                    .expect("connected");
            let mut trap = CycleTrap::new();
            engine::run_with_id_sets(
                &mut algo,
                &mut trap,
                CycleTrap::SINK,
                EngineConfig::sweep(10_000),
            )
            .expect("valid decisions")
            .terminated()
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
