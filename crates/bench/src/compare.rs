//! The perf-regression gate: diff a fresh `BENCH_*.json` run against a
//! committed baseline.
//!
//! CI has run the perf harness on every push since PR 2, but only
//! schema-checked the artifact — a 2x throughput regression merged green.
//! [`compare_reports`] closes that gap: it matches the cells of a fresh
//! run against the committed baseline by identity (algorithm, workload,
//! fault profile, model, n) and flags
//!
//! * **missing cells** — a cell present in the baseline but absent from
//!   the run (a silently dropped scenario is a regression, not a skip);
//! * **throughput regressions** — run throughput below `(1 − tolerance)`
//!   of the baseline's (wall-clock noise is real on shared runners, so
//!   throughput gets the tolerance band);
//! * **determinism regressions** — `completion_rate` or
//!   `mean_interactions` differing at all. These are seeded, parallelism-
//!   independent simulation outputs: any drift means the simulation now
//!   computes different numbers, which must be an explicit baseline
//!   regeneration, never an accident.
//!
//! New cells in the run (a grown grid) are reported informationally and
//! never fail the gate; regenerating the committed baseline is the
//! sanctioned way to move the trajectory.
//!
//! **Hardware caveat.** `throughput_ips` is absolute, so the band is only
//! as meaningful as the hardware match between the run and the committed
//! baseline: a faster CI runner inflates every ratio (the gate goes
//! lenient, never spuriously red), a slower one deflates them. The
//! [`CompareSummary::median_throughput_ratio`] calibration factor is
//! computed and printed on every comparison so a drifting hardware gap is
//! visible, and the committed baseline should be regenerated on hardware
//! comparable to where the gate runs. The deterministic columns are
//! hardware-independent and enforced strictly everywhere.

use crate::json::Json;
use crate::perf::{cell_identity, validate_report};

/// The outcome of one report comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareSummary {
    /// Number of cells matched between run and baseline.
    pub compared: usize,
    /// Baseline cells with no matching run cell.
    pub missing: Vec<String>,
    /// Human-readable regression descriptions (empty = gate passes).
    pub regressions: Vec<String>,
    /// Run cells with no baseline counterpart (informational).
    pub new_cells: Vec<String>,
    /// The median per-cell `run / baseline` throughput ratio — the
    /// machine-calibration factor. Throughput is absolute and therefore
    /// hardware-dependent: a ratio far from 1.0 across the board means
    /// the run and the baseline were measured on different hardware, and
    /// the throughput band is measuring that gap as much as the code.
    /// Surfaced so operators notice when the committed baseline should be
    /// regenerated on hardware comparable to where the gate runs; the
    /// deterministic columns are hardware-independent and always strict.
    pub median_throughput_ratio: Option<f64>,
}

impl CompareSummary {
    /// `true` iff the gate passes: nothing missing, nothing regressed.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.regressions.is_empty()
    }
}

/// The identity key a cell is matched under.
fn key_of(cell: &Json) -> Option<String> {
    let mut key = String::new();
    for field in ["algorithm", "workload", "fault_profile", "model"] {
        key.push_str(cell.get(field)?.as_str()?);
        key.push('\u{1f}');
    }
    key.push_str(&cell.get("n")?.as_f64()?.to_string());
    Some(key)
}

fn cells(doc: &Json) -> &[Json] {
    doc.get("results")
        .and_then(Json::as_array)
        .expect("validated reports carry a results array")
}

/// Compares a fresh `run` report against a `baseline` report with a
/// throughput tolerance of `tolerance_pct` percent.
///
/// Both documents must pass [`validate_report`] first; the comparison is
/// then per matched cell (see the module docs for the exact rules).
///
/// # Errors
///
/// Returns an error when either document fails schema validation, when
/// `tolerance_pct` is not a finite percentage in `[0, 100)`, or when the
/// two reports share **no** cell at all — a gate that compares nothing
/// would pass vacuously forever, which is exactly the silent-green
/// failure mode this exists to kill.
pub fn compare_reports(
    run: &Json,
    baseline: &Json,
    tolerance_pct: f64,
) -> Result<CompareSummary, String> {
    if !tolerance_pct.is_finite() || !(0.0..100.0).contains(&tolerance_pct) {
        return Err(format!(
            "tolerance must be a percentage in [0, 100), got {tolerance_pct}"
        ));
    }
    validate_report(run).map_err(|e| format!("run report: {e}"))?;
    validate_report(baseline).map_err(|e| format!("baseline report: {e}"))?;

    let run_cells = cells(run);
    let baseline_cells = cells(baseline);
    let find_run = |key: &str| {
        run_cells
            .iter()
            .find(|cell| key_of(cell).as_deref() == Some(key))
    };

    let mut summary = CompareSummary {
        compared: 0,
        missing: Vec::new(),
        regressions: Vec::new(),
        new_cells: Vec::new(),
        median_throughput_ratio: None,
    };
    let mut throughput_ratios = Vec::new();
    for (i, base) in baseline_cells.iter().enumerate() {
        let key = key_of(base).expect("validated cells have identity fields");
        let who = cell_identity(i, base);
        let Some(fresh) = find_run(&key) else {
            summary.missing.push(who);
            continue;
        };
        summary.compared += 1;
        let field = |cell: &Json, name: &str| cell.get(name).and_then(Json::as_f64);

        // Throughput: noisy and hardware-dependent, so it gets the
        // tolerance band (and the board-wide ratio is reported back as
        // the calibration factor).
        if let (Some(was), Some(now)) = (
            field(base, "throughput_ips"),
            field(fresh, "throughput_ips"),
        ) {
            if was > 0.0 {
                throughput_ratios.push(now / was);
            }
            let floor = was * (1.0 - tolerance_pct / 100.0);
            if now < floor {
                summary.regressions.push(format!(
                    "{who}: throughput {now:.0} i/s is {:.1}% below baseline {was:.0} i/s \
                     (tolerance {tolerance_pct}%)",
                    (1.0 - now / was) * 100.0,
                ));
            }
        }

        // Deterministic simulation outputs: any drift is a regression
        // until the baseline is explicitly regenerated.
        if field(base, "completion_rate") != field(fresh, "completion_rate") {
            summary.regressions.push(format!(
                "{who}: completion_rate changed from {:?} to {:?} — seeded outputs may only \
                 move with a baseline regeneration",
                field(base, "completion_rate"),
                field(fresh, "completion_rate"),
            ));
        }
        let mean = |cell: &Json| field(cell, "mean_interactions");
        if mean(base) != mean(fresh) {
            summary.regressions.push(format!(
                "{who}: mean_interactions changed from {:?} to {:?} — seeded outputs may only \
                 move with a baseline regeneration",
                mean(base),
                mean(fresh),
            ));
        }
    }
    for (i, fresh) in run_cells.iter().enumerate() {
        let key = key_of(fresh).expect("validated cells have identity fields");
        if !baseline_cells
            .iter()
            .any(|base| key_of(base).as_deref() == Some(&key))
        {
            summary.new_cells.push(cell_identity(i, fresh));
        }
    }
    if summary.compared == 0 {
        return Err(
            "the run and the baseline share no cell — the gate would pass vacuously; \
             compare a run of the same grid (CI runs --baseline against the committed \
             BENCH_baseline.json)"
                .to_string(),
        );
    }
    if !throughput_ratios.is_empty() {
        throughput_ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        summary.median_throughput_ratio = Some(throughput_ratios[throughput_ratios.len() / 2]);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{run_grid, PerfGrid};
    use doda_sim::{AlgorithmSpec, Scenario};

    fn tiny_report() -> Json {
        let json = run_grid(&PerfGrid {
            name: "tiny".to_string(),
            ns: vec![8],
            trials: 2,
            seed: 1,
            algorithms: vec![AlgorithmSpec::Gathering, AlgorithmSpec::Waiting],
            scenarios: vec![Scenario::Uniform.into(), Scenario::RandomMatching.into()],
            parallel: false,
            scale_cells: Vec::new(),
        })
        .to_json();
        Json::parse(&json).expect("emitted reports parse")
    }

    /// Multiplies the named numeric field of every cell by `factor`.
    fn scale_field(doc: &Json, name: &str, factor: f64) -> Json {
        fn walk(value: &Json, name: &str, factor: f64) -> Json {
            match value {
                Json::Object(fields) => Json::Object(
                    fields
                        .iter()
                        .map(|(k, v)| {
                            if k == name {
                                let scaled = v.as_f64().expect("numeric field") * factor;
                                (k.clone(), Json::Num(scaled))
                            } else {
                                (k.clone(), walk(v, name, factor))
                            }
                        })
                        .collect(),
                ),
                Json::Array(items) => {
                    Json::Array(items.iter().map(|v| walk(v, name, factor)).collect())
                }
                other => other.clone(),
            }
        }
        walk(doc, name, factor)
    }

    #[test]
    fn identical_reports_pass() {
        let report = tiny_report();
        let summary = compare_reports(&report, &report, 10.0).unwrap();
        assert!(summary.passed());
        assert_eq!(summary.compared, 4);
        assert!(summary.missing.is_empty());
        assert!(summary.new_cells.is_empty());
        // Self-comparison: the machine calibration factor is exactly 1.
        assert_eq!(summary.median_throughput_ratio, Some(1.0));
    }

    #[test]
    fn calibration_factor_reflects_a_board_wide_hardware_gap() {
        let baseline = tiny_report();
        let faster_machine = scale_field(&baseline, "throughput_ips", 3.0);
        let summary = compare_reports(&faster_machine, &baseline, 20.0).unwrap();
        assert!(summary.passed());
        let ratio = summary.median_throughput_ratio.unwrap();
        assert!((ratio - 3.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn throughput_noise_within_tolerance_passes_but_a_real_slowdown_fails() {
        let baseline = tiny_report();
        let slightly_slower = scale_field(&baseline, "throughput_ips", 0.92);
        let summary = compare_reports(&slightly_slower, &baseline, 20.0).unwrap();
        assert!(summary.passed(), "{:?}", summary.regressions);

        let halved = scale_field(&baseline, "throughput_ips", 0.5);
        let summary = compare_reports(&halved, &baseline, 20.0).unwrap();
        assert!(!summary.passed());
        assert_eq!(summary.compared, 4);
        assert_eq!(summary.regressions.len(), 4);
        let message = &summary.regressions[0];
        assert!(message.contains("throughput"), "{message}");
        assert!(message.contains("algorithm="), "{message}");

        // Faster is never a regression.
        let doubled = scale_field(&baseline, "throughput_ips", 2.0);
        assert!(compare_reports(&doubled, &baseline, 20.0).unwrap().passed());
    }

    #[test]
    fn deterministic_outputs_must_match_exactly() {
        let baseline = tiny_report();
        let drifted = scale_field(&baseline, "mean_interactions", 1.001);
        let summary = compare_reports(&drifted, &baseline, 50.0).unwrap();
        assert!(!summary.passed());
        assert!(summary.regressions[0].contains("mean_interactions"));
    }

    #[test]
    fn missing_cells_fail_and_new_cells_inform() {
        let baseline = tiny_report();
        // A run of a subset grid: the random-matching cells disappear.
        let subset = run_grid(&PerfGrid {
            name: "tiny".to_string(),
            ns: vec![8],
            trials: 2,
            seed: 1,
            algorithms: vec![AlgorithmSpec::Gathering, AlgorithmSpec::Waiting],
            scenarios: vec![Scenario::Uniform.into()],
            parallel: false,
            scale_cells: Vec::new(),
        })
        .to_json();
        let subset = Json::parse(&subset).unwrap();
        let summary = compare_reports(&subset, &baseline, 50.0).unwrap();
        assert!(!summary.passed());
        assert_eq!(summary.compared, 2);
        assert_eq!(summary.missing.len(), 2);
        assert!(summary.missing[0].contains("random-matching"));

        // The other direction: a grown run only informs.
        let summary = compare_reports(&baseline, &subset, 50.0).unwrap();
        assert!(summary.passed());
        assert_eq!(summary.new_cells.len(), 2);
    }

    #[test]
    fn disjoint_reports_and_bad_tolerances_are_errors() {
        let baseline = tiny_report();
        let other = run_grid(&PerfGrid {
            name: "other".to_string(),
            ns: vec![16],
            trials: 2,
            seed: 1,
            algorithms: vec![AlgorithmSpec::Gathering],
            scenarios: vec![Scenario::Uniform.into()],
            parallel: false,
            scale_cells: Vec::new(),
        })
        .to_json();
        let other = Json::parse(&other).unwrap();
        let err = compare_reports(&other, &baseline, 10.0).unwrap_err();
        assert!(err.contains("share no cell"), "{err}");

        for bad in [-1.0, 100.0, f64::NAN] {
            assert!(compare_reports(&baseline, &baseline, bad).is_err());
        }
        let err = compare_reports(&Json::parse("{}").unwrap(), &baseline, 10.0).unwrap_err();
        assert!(err.starts_with("run report:"), "{err}");
    }
}
