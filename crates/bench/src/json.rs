//! A dependency-free JSON value, writer and parser.
//!
//! The perf harness emits and validates `BENCH_*.json` trajectory files;
//! the build environment is offline (no `serde`), so this module provides
//! the minimal JSON subset those files need: objects, arrays, strings,
//! numbers, booleans and null. Serialisation is deterministic (object keys
//! keep insertion order) and the parser accepts exactly standard JSON —
//! enough for CI to round-trip and schema-check every emitted artifact.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; parsed as `f64`.
    Num(f64),
    /// An exact unsigned integer (serialised without a decimal point, so
    /// u64 values like seeds and git hashes survive round-trips textually).
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved on serialisation.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Creates a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, for `Num` and `Uint`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Uint(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The string value, for `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, for `Array`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error,
    /// with its byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                debug_assert!(x.is_finite(), "JSON numbers must be finite");
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    // Keep integral floats readable and round-trippable.
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Uint(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Pretty-prints a JSON value with two-space indentation — the format of
/// the committed `BENCH_*.json` files (diff-friendly in review).
pub fn pretty(value: &Json) -> String {
    let mut out = String::new();
    pretty_into(value, 0, &mut out);
    out.push('\n');
    out
}

fn pretty_into(value: &Json, indent: usize, out: &mut String) {
    const PAD: &str = "  ";
    match value {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                pretty_into(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Json::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, field)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&PAD.repeat(indent + 1));
                out.push_str(&Json::str(key).to_string());
                out.push_str(": ");
                pretty_into(field, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogate pairs are not needed by our schema;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Object(vec![
            ("name".to_string(), Json::str("doda")),
            ("version".to_string(), Json::Uint(1)),
            ("rate".to_string(), Json::Num(0.5)),
            ("whole".to_string(), Json::Num(3.0)),
            ("none".to_string(), Json::Null),
            ("ok".to_string(), Json::Bool(true)),
            (
                "items".to_string(),
                Json::Array(vec![Json::Uint(1), Json::str("a\"b\\c\n")]),
            ),
        ]);
        let compact = doc.to_string();
        assert_eq!(Json::parse(&compact).unwrap(), doc);
        let pretty = pretty(&doc);
        assert_eq!(Json::parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 1, "b": "x", "c": [2.5], "d": null}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("c").and_then(Json::as_array).map(<[_]>::len),
            Some(1)
        );
        assert!(doc.get("d").unwrap().is_null());
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn large_integers_survive_textually() {
        let seed = u64::MAX;
        let text = Json::Uint(seed).to_string();
        assert_eq!(text, "18446744073709551615");
        assert_eq!(Json::parse(&text).unwrap(), Json::Uint(seed));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nul", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn negative_and_exponent_numbers_parse() {
        assert_eq!(Json::parse("-3").unwrap().as_f64(), Some(-3.0));
        assert_eq!(Json::parse("2e3").unwrap().as_f64(), Some(2000.0));
        assert_eq!(Json::parse("-0.25").unwrap().as_f64(), Some(-0.25));
    }
}
