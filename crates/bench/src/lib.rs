//! Shared helpers for the benchmark harness.
//!
//! Each bench target reproduces one experiment of the paper (see
//! DESIGN.md §5): before Criterion starts timing, the target prints the
//! reproduced table (mean interaction counts, fitted exponents, w.h.p.
//! fractions, …) to stderr so that `cargo bench` output doubles as the raw
//! material of EXPERIMENTS.md; the timed portion then measures the cost of
//! regenerating a representative slice of that table.
//!
//! Besides the criterion targets, the crate hosts the machine-readable
//! perf harness: [`perf`] runs pinned scenario grids and the `doda-bench`
//! binary (`src/bin/doda-bench.rs`) emits/validates `BENCH_*.json`
//! trajectory files; [`compare`] is the perf-regression gate that diffs a
//! fresh run against the committed baseline (CI fails on regressions
//! beyond tolerance); [`json`] is the dependency-free JSON support
//! beneath it all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod json;
pub mod memory;
pub mod perf;

use doda_sim::{AlgorithmSpec, BatchConfig, Scenario, Sweep};

/// The node counts used by the printed reproduction tables.
pub const REPORT_NS: &[usize] = &[16, 32, 64, 128];

/// The (smaller) node count used inside the timed Criterion loops, so that
/// `cargo bench` stays fast while still exercising the full code path.
pub const TIMED_N: usize = 32;

/// Number of trials behind each printed mean.
pub const REPORT_TRIALS: usize = 20;

// Compile-time pins: the timed loops must stay non-trivial and the printed
// means statistically meaningful.
const _: () = assert!(TIMED_N >= 16);
const _: () = assert!(REPORT_TRIALS >= 10);

/// Runs one batch against the uniform randomized adversary and returns the
/// mean number of interactions to completion.
pub fn mean_interactions(spec: AlgorithmSpec, n: usize, trials: usize, seed: u64) -> f64 {
    let config = BatchConfig {
        n,
        trials,
        horizon: None,
        seed,
        parallel: true,
    };
    Sweep::scenario(spec, Scenario::Uniform)
        .config(&config)
        .run_summarized()
        .0
        .interactions
        .mean
}

/// Prints a `label: value` line of the reproduction table to stderr.
pub fn report_line(experiment: &str, label: &str, value: &str) {
    eprintln!("[{experiment}] {label}: {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_interactions_is_positive() {
        let mean = mean_interactions(AlgorithmSpec::Gathering, 8, 3, 1);
        assert!(mean >= 7.0);
    }

    #[test]
    fn constants_are_sane() {
        assert!(REPORT_NS.windows(2).all(|w| w[0] < w[1]));
    }
}
