//! The machine-readable perf harness behind the `doda-bench` binary.
//!
//! A [`Scenario`] pins a grid of (algorithm × workload × n) cells; running
//! it executes every cell through the sharded sweep runner and produces a
//! [`PerfReport`] that serialises to `BENCH_<scenario>.json`. Every PR
//! extends the perf trajectory by re-running a scenario and comparing the
//! emitted file against the committed baseline; CI runs the `smoke`
//! scenario on every push and schema-checks the artifact with
//! [`validate_report`].

use std::time::Instant;

use doda_sim::runner::{run_trials, BatchConfig};
use doda_sim::AlgorithmSpec;
use doda_stats::Summary;
use doda_workloads::{UniformWorkload, VehicularWorkload, Workload, ZipfWorkload};

use crate::json::{pretty, Json};

/// Version of the `BENCH_*.json` schema emitted by [`PerfReport::to_json`].
pub const SCHEMA_VERSION: u64 = 1;

/// The workload families covered by the perf grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Uniform random contacts (the paper's randomized adversary).
    Uniform,
    /// Zipf-popularity contacts (exponent 1.2).
    Zipf,
    /// The vehicular grid scenario workload.
    Vehicular,
}

impl WorkloadKind {
    /// All workload kinds, in grid order.
    pub fn all() -> [WorkloadKind; 3] {
        [
            WorkloadKind::Uniform,
            WorkloadKind::Zipf,
            WorkloadKind::Vehicular,
        ]
    }

    /// The label used in JSON records.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Zipf => "zipf",
            WorkloadKind::Vehicular => "vehicular",
        }
    }

    /// Builds the workload over `n` nodes.
    pub fn build(&self, n: usize) -> Box<dyn Workload + Sync> {
        match self {
            WorkloadKind::Uniform => Box::new(UniformWorkload::new(n)),
            WorkloadKind::Zipf => Box::new(ZipfWorkload::new(n, 1.2)),
            WorkloadKind::Vehicular => {
                // A square-ish grid: side ≈ √n keeps the road density
                // comparable across node counts.
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                Box::new(VehicularWorkload::new(n, side))
            }
        }
    }
}

/// A pinned perf scenario: the grid plus the execution parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario label; the emitted file is `BENCH_<name>.json`.
    pub name: String,
    /// Node counts of the grid.
    pub ns: Vec<usize>,
    /// Trials per cell.
    pub trials: usize,
    /// Root seed; each cell derives an independent sub-seed.
    pub seed: u64,
    /// Algorithms of the grid.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Workload families of the grid.
    pub workloads: Vec<WorkloadKind>,
    /// Whether cells run their trials through the sharded parallel runner.
    pub parallel: bool,
}

impl Scenario {
    /// The tiny grid CI runs on every push (`doda-bench --smoke`).
    pub fn smoke() -> Scenario {
        Scenario {
            name: "smoke".to_string(),
            ns: vec![8, 16],
            trials: 3,
            seed: 0xD0DA,
            algorithms: vec![AlgorithmSpec::Gathering, AlgorithmSpec::Waiting],
            workloads: vec![WorkloadKind::Uniform, WorkloadKind::Zipf],
            parallel: true,
        }
    }

    /// The committed perf-trajectory grid (`doda-bench --baseline`):
    /// online algorithms × {uniform, zipf, vehicular} × n ∈ {32, 128, 512}.
    pub fn baseline() -> Scenario {
        Scenario {
            name: "baseline".to_string(),
            ns: vec![32, 128, 512],
            trials: 4,
            seed: 0xD0DA,
            algorithms: vec![
                AlgorithmSpec::Gathering,
                AlgorithmSpec::Waiting,
                AlgorithmSpec::WaitingGreedy { tau: None },
            ],
            workloads: WorkloadKind::all().to_vec(),
            parallel: true,
        }
    }
}

/// The measurements of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Workload label.
    pub workload: String,
    /// Node count.
    pub n: usize,
    /// Trials run.
    pub trials: usize,
    /// Trials that completed the aggregation within the horizon.
    pub completed: usize,
    /// `completed / trials`.
    pub completion_rate: f64,
    /// Mean interactions to completion over completed trials (`None` when
    /// no trial completed).
    pub mean_interactions: Option<f64>,
    /// Total interactions processed by the engine across all trials —
    /// the work units behind the throughput figure.
    pub total_interactions: u64,
    /// Wall-clock spent on the cell (trial execution plus sequence
    /// generation), in seconds.
    pub elapsed_secs: f64,
    /// Engine throughput: `total_interactions / elapsed_secs`.
    pub throughput_ips: f64,
}

/// A full perf report, serialisable to `BENCH_<scenario>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Scenario label.
    pub scenario: String,
    /// `git rev-parse --short=12 HEAD` at measurement time, or `"unknown"`.
    pub git_rev: String,
    /// The scenario's root seed.
    pub seed: u64,
    /// Wall-clock of the whole scenario, in seconds.
    pub wall_clock_secs: f64,
    /// One record per grid cell.
    pub results: Vec<CellResult>,
}

impl PerfReport {
    /// The canonical file name, `BENCH_<scenario>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.scenario)
    }

    /// Serialises the report (pretty-printed, schema-versioned).
    pub fn to_json(&self) -> String {
        let results = self
            .results
            .iter()
            .map(|cell| {
                Json::Object(vec![
                    ("algorithm".to_string(), Json::str(&cell.algorithm)),
                    ("workload".to_string(), Json::str(&cell.workload)),
                    ("n".to_string(), Json::Uint(cell.n as u64)),
                    ("trials".to_string(), Json::Uint(cell.trials as u64)),
                    ("completed".to_string(), Json::Uint(cell.completed as u64)),
                    (
                        "completion_rate".to_string(),
                        Json::Num(cell.completion_rate),
                    ),
                    (
                        "mean_interactions".to_string(),
                        cell.mean_interactions.map_or(Json::Null, Json::Num),
                    ),
                    (
                        "total_interactions".to_string(),
                        Json::Uint(cell.total_interactions),
                    ),
                    ("elapsed_secs".to_string(), Json::Num(cell.elapsed_secs)),
                    ("throughput_ips".to_string(), Json::Num(cell.throughput_ips)),
                ])
            })
            .collect();
        let doc = Json::Object(vec![
            ("schema_version".to_string(), Json::Uint(SCHEMA_VERSION)),
            ("scenario".to_string(), Json::str(&self.scenario)),
            ("git_rev".to_string(), Json::str(&self.git_rev)),
            ("seed".to_string(), Json::Uint(self.seed)),
            (
                "wall_clock_secs".to_string(),
                Json::Num(self.wall_clock_secs),
            ),
            ("results".to_string(), Json::Array(results)),
        ]);
        pretty(&doc)
    }
}

/// Runs every cell of `scenario` and collects the perf report.
pub fn run_scenario(scenario: &Scenario) -> PerfReport {
    let started = Instant::now();
    let mut results = Vec::new();
    let mut cell_index = 0u64;
    for kind in &scenario.workloads {
        for &n in &scenario.ns {
            let workload = kind.build(n);
            for &spec in &scenario.algorithms {
                results.push(run_cell(scenario, spec, &*workload, kind, n, cell_index));
                cell_index += 1;
            }
        }
    }
    PerfReport {
        scenario: scenario.name.clone(),
        git_rev: git_rev(),
        seed: scenario.seed,
        wall_clock_secs: started.elapsed().as_secs_f64(),
        results,
    }
}

fn run_cell(
    scenario: &Scenario,
    spec: AlgorithmSpec,
    workload: &(dyn Workload + Sync),
    kind: &WorkloadKind,
    n: usize,
    cell_index: u64,
) -> CellResult {
    let config = BatchConfig {
        n,
        trials: scenario.trials,
        horizon: None,
        seed: doda_stats::rng::SeedSequence::new(scenario.seed)
            .child(cell_index)
            .seed(0),
        parallel: scenario.parallel,
    };
    let cell_start = Instant::now();
    let raw = run_trials(spec, workload, &config);
    let elapsed_secs = cell_start.elapsed().as_secs_f64();
    let completions: Vec<f64> = raw
        .iter()
        .filter_map(|r| r.interactions_to_completion())
        .collect();
    let total_interactions: u64 = raw.iter().map(|r| r.interactions_processed).sum();
    CellResult {
        algorithm: spec.label().to_string(),
        workload: kind.name().to_string(),
        n,
        trials: raw.len(),
        completed: completions.len(),
        completion_rate: completions.len() as f64 / raw.len().max(1) as f64,
        mean_interactions: Summary::from_values(&completions).map(|s| s.mean),
        total_interactions,
        elapsed_secs,
        throughput_ips: total_interactions as f64 / elapsed_secs.max(1e-9),
    }
}

/// The current short git revision, or `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Schema-checks a parsed `BENCH_*.json` document.
///
/// # Errors
///
/// Returns a description of the first violation: missing or mistyped
/// field, wrong schema version, empty results, or out-of-range rate.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing numeric field: schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
        ));
    }
    for field in ["scenario", "git_rev"] {
        doc.get(field)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string field: {field}"))?;
    }
    for field in ["seed", "wall_clock_secs"] {
        doc.get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field: {field}"))?;
    }
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or("missing array field: results")?;
    if results.is_empty() {
        return Err("results must not be empty".to_string());
    }
    for (i, cell) in results.iter().enumerate() {
        for field in ["algorithm", "workload"] {
            cell.get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("results[{i}]: missing string field: {field}"))?;
        }
        for field in [
            "n",
            "trials",
            "completed",
            "completion_rate",
            "total_interactions",
            "elapsed_secs",
            "throughput_ips",
        ] {
            cell.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("results[{i}]: missing numeric field: {field}"))?;
        }
        let mean = cell
            .get("mean_interactions")
            .ok_or_else(|| format!("results[{i}]: missing field: mean_interactions"))?;
        if !mean.is_null() && mean.as_f64().is_none() {
            return Err(format!(
                "results[{i}]: mean_interactions must be a number or null"
            ));
        }
        let rate = cell
            .get("completion_rate")
            .and_then(Json::as_f64)
            .expect("checked above");
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!(
                "results[{i}]: completion_rate {rate} outside [0, 1]"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_emits_a_valid_schema() {
        let report = run_scenario(&Scenario::smoke());
        assert_eq!(report.file_name(), "BENCH_smoke.json");
        assert_eq!(report.results.len(), 2 * 2 * 2);
        let doc = Json::parse(&report.to_json()).expect("emitted JSON parses");
        validate_report(&doc).expect("emitted JSON passes the schema check");
    }

    #[test]
    fn smoke_scenario_is_deterministic_in_its_measurements() {
        // Wall-clock fields vary run to run; the measured simulation
        // quantities must not.
        let a = run_scenario(&Scenario::smoke());
        let b = run_scenario(&Scenario::smoke());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.algorithm, y.algorithm);
            assert_eq!(x.workload, y.workload);
            assert_eq!(x.n, y.n);
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.mean_interactions, y.mean_interactions);
            assert_eq!(x.total_interactions, y.total_interactions);
        }
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let good = run_scenario(&Scenario {
            trials: 2,
            ns: vec![8],
            algorithms: vec![AlgorithmSpec::Gathering],
            workloads: vec![WorkloadKind::Uniform],
            ..Scenario::smoke()
        })
        .to_json();
        let doc = Json::parse(&good).unwrap();
        validate_report(&doc).unwrap();

        for (breaker, expected) in [
            (r#"{"schema_version": 1}"#, "missing string field: scenario"),
            (r#"{"schema_version": 9}"#, "unsupported schema_version"),
            (r#"{}"#, "missing numeric field: schema_version"),
        ] {
            let err = validate_report(&Json::parse(breaker).unwrap()).unwrap_err();
            assert!(err.contains(expected), "{err} !~ {expected}");
        }
        // Empty results array is rejected.
        let Json::Object(mut fields) = Json::parse(&good).unwrap() else {
            unreachable!("reports are objects");
        };
        for (key, value) in &mut fields {
            if key == "results" {
                *value = Json::Array(Vec::new());
            }
        }
        let err = validate_report(&Json::Object(fields)).unwrap_err();
        assert!(err.contains("results must not be empty"), "{err}");
    }

    #[test]
    fn workload_kinds_build_over_any_n() {
        for kind in WorkloadKind::all() {
            for n in [8, 32, 100] {
                let w = kind.build(n);
                assert_eq!(w.node_count(), n, "{}", kind.name());
            }
        }
    }
}
