//! The machine-readable perf harness behind the `doda-bench` binary.
//!
//! A [`PerfGrid`] pins a grid of (algorithm × scenario × n) cells over the
//! unified [`Scenario`] registry — synthetic workloads *and* the
//! oblivious/adaptive adversaries; running it executes every cell through
//! the sharded [`Sweep`] builder and produces a [`PerfReport`] that
//! serialises to `BENCH_<grid>.json`. Each cell records its execution
//! `mode` — the tier [`doda_sim::ExecutionTier::Auto`] resolved for it:
//! `"lanes"` for knowledge-free fault-free pairwise cells (up to 64 trials
//! stepped in lockstep through bit-lane state), `"rounds"` for round
//! scenarios (one matching applied per synchronous round), `"streamed"`
//! for the remaining knowledge-free cells (the engine pulls interactions
//! straight from the source, `O(n)` memory at any horizon) and
//! `"materialized"` for algorithms whose oracles force sequence
//! generation. Every PR extends the perf trajectory by re-running a grid
//! and comparing the emitted file against the committed baseline; CI runs
//! the `smoke` grid on every push and schema-checks the artifact with
//! [`validate_report`].

use std::time::Instant;

use doda_core::fault::FaultProfile;
use doda_sim::runner::BatchConfig;
use doda_sim::{AlgorithmSpec, ExecutionTier, FaultedScenario, Scenario, Sweep};
use doda_stats::Summary;

use crate::json::{pretty, Json};

/// Version of the `BENCH_*.json` schema emitted by [`PerfReport::to_json`].
///
/// Version history: 1 = workload-only grids; 2 = unified scenario grids
/// with the per-cell `"mode"` (`"streamed" | "materialized"`) field;
/// 3 = fault-model grids with the per-cell `"fault_profile"` column and
/// the `"aggregated"` / `"aggregated_survivors"` completion split
/// (`completed = aggregated + aggregated_survivors`); 4 = round-model
/// grids with the per-cell `"model"` (`"pairwise" | "rounds"`) column;
/// 5 = execution-tier grids: `"mode"` now names the tier the sweep
/// actually ran (`"streamed" | "materialized" | "lanes" | "rounds"`), so
/// knowledge-free fault-free pairwise cells report `"lanes"` and round
/// cells report `"rounds"` instead of overloading `"streamed"`;
/// 6 = scale grids: explicitly pinned large-n [`ScaleCell`]s join the
/// cross product, every cell carries `"peak_mem_bytes"` (the process
/// heap high-water growth while the cell ran; 0 when no tracking
/// allocator is installed), the envelope declares the full node-count
/// grid under `"ns"` (validation rejects cells at undeclared `n`), and
/// `"mode"` admits `"hierarchical"` (seeded aggregator election,
/// per-cluster aggregation, then an aggregator-only final phase);
/// 7 = byzantine grids: every cell carries the `"byzantine_profile"`
/// column (the scenario's Byzantine plan label, `"none"` when honest) —
/// byzantine cells run the audited streamed path, so the lane, rounds
/// and hierarchical tiers are byzantine-free by contract (validation
/// rejects cells claiming otherwise).
pub const SCHEMA_VERSION: u64 = 7;

/// A pinned perf grid: the cells plus the execution parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfGrid {
    /// Grid label; the emitted file is `BENCH_<name>.json`.
    pub name: String,
    /// Node counts of the grid.
    pub ns: Vec<usize>,
    /// Trials per cell.
    pub trials: usize,
    /// Root seed; each cell derives an independent sub-seed.
    pub seed: u64,
    /// Algorithms of the grid.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Scenarios of the grid: workloads and adversaries alike, each
    /// optionally carrying a fault plan (plain [`Scenario`]s convert via
    /// `.into()`).
    pub scenarios: Vec<FaultedScenario>,
    /// Whether cells run their trials through the sharded parallel runner.
    pub parallel: bool,
    /// Explicitly pinned large-n cells run in addition to the cross
    /// product. Million-node cells cannot inherit the unbounded-horizon
    /// defaults of the small-n grid, so each pins its own interaction
    /// budget, execution tier and trial count.
    pub scale_cells: Vec<ScaleCell>,
}

/// One explicitly pinned large-n grid cell (see [`PerfGrid::scale_cells`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleCell {
    /// Algorithm of the cell.
    pub spec: AlgorithmSpec,
    /// Scenario of the cell (fault-free: the scale regime tracks the
    /// engine's O(n) claims, not the fault layer's).
    pub scenario: Scenario,
    /// Node count.
    pub n: usize,
    /// Interaction budget per trial — flat aggregation at these node
    /// counts needs `Θ(n²)` interactions, so large-n flat cells are
    /// throughput/memory cells that deliberately starve at the budget.
    pub horizon: usize,
    /// Execution tier the cell pins (the cross-product cells always use
    /// [`ExecutionTier::Auto`]; the hierarchical tier is never
    /// auto-selected, so its cells must pin it here).
    pub tier: ExecutionTier,
    /// Trials for the cell.
    pub trials: usize,
}

impl PerfGrid {
    /// The tiny grid CI runs on every push (`doda-bench --smoke`).
    pub fn smoke() -> PerfGrid {
        PerfGrid {
            name: "smoke".to_string(),
            ns: vec![8, 16],
            trials: 3,
            seed: 0xD0DA,
            algorithms: vec![AlgorithmSpec::Gathering, AlgorithmSpec::Waiting],
            scenarios: vec![
                Scenario::Uniform.into(),
                Scenario::Zipf { exponent: 1.2 }.into(),
                Scenario::AdaptiveIsolator.into(),
                Scenario::Uniform.with_faults(FaultProfile::crash(0.002)),
                Scenario::RandomMatching.into(),
            ],
            parallel: true,
            scale_cells: vec![ScaleCell {
                spec: AlgorithmSpec::Gathering,
                scenario: Scenario::Uniform,
                n: 2_048,
                horizon: 2_000_000,
                tier: ExecutionTier::Hierarchical,
                trials: 1,
            }],
        }
    }

    /// The committed perf-trajectory grid (`doda-bench --baseline`):
    /// online algorithms × {uniform, zipf, vehicular, oblivious-trap,
    /// adaptive-isolator, uniform+crash, vehicular+churn, random-matching,
    /// tournament, round-isolator} × n ∈ {32, 128, 512}. Adaptive cells
    /// are skipped for algorithms that require materialisation.
    pub fn baseline() -> PerfGrid {
        PerfGrid {
            name: "baseline".to_string(),
            ns: vec![32, 128, 512],
            trials: 4,
            seed: 0xD0DA,
            algorithms: vec![
                AlgorithmSpec::Gathering,
                AlgorithmSpec::Waiting,
                AlgorithmSpec::WaitingGreedy { tau: None },
            ],
            scenarios: vec![
                Scenario::Uniform.into(),
                Scenario::Zipf { exponent: 1.2 }.into(),
                Scenario::Vehicular.into(),
                Scenario::ObliviousTrap.into(),
                Scenario::AdaptiveIsolator.into(),
                Scenario::Uniform.with_faults(FaultProfile::crash(0.002)),
                Scenario::Vehicular.with_faults(FaultProfile::churn(0.002, 0.004)),
                Scenario::RandomMatching.into(),
                Scenario::Tournament.into(),
                Scenario::RoundIsolator.into(),
            ],
            parallel: true,
            scale_cells: vec![
                // Flat pairwise at n = 10^5: a budgeted throughput/memory
                // cell (flat completion needs Θ(n²) interactions).
                ScaleCell {
                    spec: AlgorithmSpec::Gathering,
                    scenario: Scenario::Uniform,
                    n: 100_000,
                    horizon: 2_000_000,
                    tier: ExecutionTier::Auto,
                    trials: 1,
                },
                // CSR-backed round matchings at n = 10^5: the O(n)-per-round
                // torus contact process, equally budgeted.
                ScaleCell {
                    spec: AlgorithmSpec::Gathering,
                    scenario: Scenario::TorusContact,
                    n: 100_000,
                    horizon: 2_000_000,
                    tier: ExecutionTier::Auto,
                    trials: 1,
                },
                // Hierarchical at n = 10^4: O(n^{3/2}) interactions make
                // completion feasible where flat aggregation starves.
                ScaleCell {
                    spec: AlgorithmSpec::Gathering,
                    scenario: Scenario::Uniform,
                    n: 10_000,
                    horizon: 8_000_000,
                    tier: ExecutionTier::Hierarchical,
                    trials: 1,
                },
            ],
        }
    }

    /// The number of runnable cells (incompatible algorithm × adaptive
    /// scenario combinations are skipped).
    pub fn cell_count(&self) -> usize {
        self.scenarios
            .iter()
            .map(|scenario| {
                self.algorithms
                    .iter()
                    .filter(|spec| scenario.supports(**spec))
                    .count()
            })
            .sum::<usize>()
            * self.ns.len()
            + self.scale_cells.len()
    }

    /// The full declared node-count grid: the cross-product `ns` plus the
    /// scale-cell node counts, sorted and deduplicated. This is what the
    /// emitted report declares under `"ns"`, and validation rejects any
    /// cell whose `n` falls outside it.
    pub fn declared_ns(&self) -> Vec<usize> {
        let mut ns = self.ns.clone();
        ns.extend(self.scale_cells.iter().map(|cell| cell.n));
        ns.sort_unstable();
        ns.dedup();
        ns
    }
}

/// The measurements of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Scenario label (kept under the `workload` key in the JSON for
    /// trajectory continuity).
    pub workload: String,
    /// The fault plan label of the cell's scenario (`"none"` when
    /// fault-free).
    pub fault_profile: String,
    /// The Byzantine plan label of the cell's scenario (`"none"` when
    /// every node is honest). Byzantine cells run the audited streamed
    /// path and never the lane, rounds or hierarchical tiers.
    pub byzantine_profile: String,
    /// The execution tier the sweep resolved for the cell: `"lanes"`
    /// (lockstep bit-lane batches), `"rounds"` (native batched rounds),
    /// `"streamed"` (scalar pull loop, `O(n)` memory), `"materialized"`
    /// (oracle construction forced sequence generation) or
    /// `"hierarchical"` (clustered two-phase aggregation, pinned by a
    /// [`ScaleCell`] — never auto-selected).
    pub mode: &'static str,
    /// Interaction model of the cell's scenario: `"pairwise"` (one
    /// interaction per step, the paper's adversary) or `"rounds"` (one
    /// matching of disjoint interactions per synchronous round).
    pub model: &'static str,
    /// Node count.
    pub n: usize,
    /// Trials run.
    pub trials: usize,
    /// Trials that completed the aggregation within the horizon
    /// (`aggregated + aggregated_survivors`).
    pub completed: usize,
    /// Trials in which the sink aggregated every datum introduced.
    pub aggregated: usize,
    /// Trials that terminated over the survivors only (some data lost to
    /// faults first); always 0 for fault-free cells.
    pub aggregated_survivors: usize,
    /// `completed / trials`.
    pub completion_rate: f64,
    /// Mean interactions to completion over completed trials (`None` when
    /// no trial completed).
    pub mean_interactions: Option<f64>,
    /// Total interactions processed by the engine across all trials —
    /// the work units behind the throughput figure.
    pub total_interactions: u64,
    /// Wall-clock spent on the cell (trial execution plus stream/sequence
    /// generation), in seconds.
    pub elapsed_secs: f64,
    /// Engine throughput: `total_interactions / elapsed_secs`.
    pub throughput_ips: f64,
    /// Growth of the process heap high-water mark while the cell ran, in
    /// bytes — 0 when no tracking allocator is installed (library tests);
    /// the `doda-bench` binary always installs one (see
    /// [`crate::memory`]).
    pub peak_mem_bytes: u64,
}

/// A full perf report, serialisable to `BENCH_<grid>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Grid label (the `scenario` key of the JSON envelope, predating the
    /// unified scenario registry).
    pub scenario: String,
    /// `git rev-parse --short=12 HEAD` at measurement time, or `"unknown"`.
    pub git_rev: String,
    /// The grid's root seed.
    pub seed: u64,
    /// The declared node-count grid (see [`PerfGrid::declared_ns`]): a
    /// cell at an `n` outside this list fails validation.
    pub ns: Vec<usize>,
    /// Wall-clock of the whole grid, in seconds.
    pub wall_clock_secs: f64,
    /// One record per runnable grid cell.
    pub results: Vec<CellResult>,
}

impl PerfReport {
    /// The canonical file name, `BENCH_<grid>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.scenario)
    }

    /// Serialises the report (pretty-printed, schema-versioned).
    pub fn to_json(&self) -> String {
        let results = self
            .results
            .iter()
            .map(|cell| {
                Json::Object(vec![
                    ("algorithm".to_string(), Json::str(&cell.algorithm)),
                    ("workload".to_string(), Json::str(&cell.workload)),
                    ("fault_profile".to_string(), Json::str(&cell.fault_profile)),
                    (
                        "byzantine_profile".to_string(),
                        Json::str(&cell.byzantine_profile),
                    ),
                    ("mode".to_string(), Json::str(cell.mode)),
                    ("model".to_string(), Json::str(cell.model)),
                    ("n".to_string(), Json::Uint(cell.n as u64)),
                    ("trials".to_string(), Json::Uint(cell.trials as u64)),
                    ("completed".to_string(), Json::Uint(cell.completed as u64)),
                    ("aggregated".to_string(), Json::Uint(cell.aggregated as u64)),
                    (
                        "aggregated_survivors".to_string(),
                        Json::Uint(cell.aggregated_survivors as u64),
                    ),
                    (
                        "completion_rate".to_string(),
                        Json::Num(cell.completion_rate),
                    ),
                    (
                        "mean_interactions".to_string(),
                        cell.mean_interactions.map_or(Json::Null, Json::Num),
                    ),
                    (
                        "total_interactions".to_string(),
                        Json::Uint(cell.total_interactions),
                    ),
                    ("elapsed_secs".to_string(), Json::Num(cell.elapsed_secs)),
                    ("throughput_ips".to_string(), Json::Num(cell.throughput_ips)),
                    (
                        "peak_mem_bytes".to_string(),
                        Json::Uint(cell.peak_mem_bytes),
                    ),
                ])
            })
            .collect();
        let doc = Json::Object(vec![
            ("schema_version".to_string(), Json::Uint(SCHEMA_VERSION)),
            ("scenario".to_string(), Json::str(&self.scenario)),
            ("git_rev".to_string(), Json::str(&self.git_rev)),
            ("seed".to_string(), Json::Uint(self.seed)),
            (
                "ns".to_string(),
                Json::Array(self.ns.iter().map(|&n| Json::Uint(n as u64)).collect()),
            ),
            (
                "wall_clock_secs".to_string(),
                Json::Num(self.wall_clock_secs),
            ),
            ("results".to_string(), Json::Array(results)),
        ]);
        pretty(&doc)
    }
}

/// Runs every runnable cell of `grid` and collects the perf report.
pub fn run_grid(grid: &PerfGrid) -> PerfReport {
    let started = Instant::now();
    let mut results = Vec::new();
    let mut cell_index = 0u64;
    for scenario in &grid.scenarios {
        for &n in &grid.ns {
            for &spec in &grid.algorithms {
                if !scenario.supports(spec) {
                    // Adaptive streams cannot feed materialising oracles;
                    // the cell is skipped rather than faked.
                    continue;
                }
                let shape = CellShape {
                    spec,
                    scenario: *scenario,
                    n,
                    trials: grid.trials,
                    horizon: None,
                    tier: ExecutionTier::Auto,
                };
                results.push(run_cell(grid, shape, cell_index));
                cell_index += 1;
            }
        }
    }
    for cell in &grid.scale_cells {
        let shape = CellShape {
            spec: cell.spec,
            scenario: cell.scenario.into(),
            n: cell.n,
            trials: cell.trials,
            horizon: Some(cell.horizon),
            tier: cell.tier,
        };
        results.push(run_cell(grid, shape, cell_index));
        cell_index += 1;
    }
    PerfReport {
        scenario: grid.name.clone(),
        git_rev: git_rev(),
        seed: grid.seed,
        ns: grid.declared_ns(),
        wall_clock_secs: started.elapsed().as_secs_f64(),
        results,
    }
}

/// The resolved execution shape of one cell — the cross-product cells
/// and the pinned [`ScaleCell`]s flow through the same measurement path.
struct CellShape {
    spec: AlgorithmSpec,
    scenario: FaultedScenario,
    n: usize,
    trials: usize,
    horizon: Option<usize>,
    tier: ExecutionTier,
}

fn run_cell(grid: &PerfGrid, shape: CellShape, cell_index: u64) -> CellResult {
    let CellShape {
        spec,
        scenario,
        n,
        trials,
        horizon,
        tier,
    } = shape;
    let config = BatchConfig {
        n,
        trials,
        horizon,
        seed: doda_stats::rng::SeedSequence::new(grid.seed)
            .child(cell_index)
            .seed(0),
        parallel: grid.parallel,
    };
    let sweep = Sweep::scenario(spec, scenario).config(&config).tier(tier);
    let mode = sweep.path_label();
    // Bracket the cell's heap growth when a tracking allocator is
    // installed; without one the counters never move and the column
    // degrades to 0 instead of lying.
    let mem_floor = crate::memory::tracking().then(crate::memory::reset_peak);
    let cell_start = Instant::now();
    let raw = sweep.run();
    let mut elapsed_secs = cell_start.elapsed().as_secs_f64();
    // One wall-clock sample on a shared runner can be dominated by a
    // scheduling spike, so every cell is timed at least twice (best-of,
    // identical deterministic results), and fast cells — which finish
    // well under the noise floor — keep re-timing until enough wall
    // clock has accumulated to trust the minimum.
    let mut spent = elapsed_secs;
    let mut reps = 1;
    while (reps < 2 || spent < 0.25) && elapsed_secs > 0.0 {
        let rep_start = Instant::now();
        let rerun = sweep.run();
        let rep_secs = rep_start.elapsed().as_secs_f64();
        assert_eq!(
            rerun, raw,
            "a re-timed cell must reproduce byte-identically"
        );
        elapsed_secs = elapsed_secs.min(rep_secs);
        spent += rep_secs;
        reps += 1;
    }
    let peak_mem_bytes = mem_floor
        .map(|floor| crate::memory::peak_bytes().saturating_sub(floor) as u64)
        .unwrap_or(0);
    let completions: Vec<f64> = raw
        .iter()
        .filter_map(|r| r.interactions_to_completion())
        .collect();
    let aggregated = raw.iter().filter(|r| r.fully_aggregated()).count();
    let total_interactions: u64 = raw.iter().map(|r| r.interactions_processed).sum();
    CellResult {
        algorithm: spec.label().to_string(),
        workload: scenario.base.name().to_string(),
        fault_profile: scenario.fault_label(),
        byzantine_profile: scenario.byzantine_label(),
        mode,
        model: if scenario.is_round() {
            "rounds"
        } else {
            "pairwise"
        },
        n,
        trials: raw.len(),
        completed: completions.len(),
        aggregated,
        aggregated_survivors: completions.len() - aggregated,
        completion_rate: completions.len() as f64 / raw.len().max(1) as f64,
        mean_interactions: Summary::from_values(&completions).map(|s| s.mean),
        total_interactions,
        elapsed_secs,
        throughput_ips: total_interactions as f64 / elapsed_secs.max(1e-9),
        peak_mem_bytes,
    }
}

/// The current short git revision, or `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The identity of a grid cell, as rendered in validation and comparison
/// messages: the index plus whatever identifying columns are readable, so
/// a failure names the offending cell instead of forcing a by-hand bisect
/// of the JSON.
pub(crate) fn cell_identity(i: usize, cell: &Json) -> String {
    let mut parts = Vec::new();
    for field in [
        "algorithm",
        "workload",
        "fault_profile",
        "byzantine_profile",
        "n",
    ] {
        if let Some(value) = cell.get(field) {
            let rendered = match value {
                Json::Str(s) => s.clone(),
                other => other.to_string(),
            };
            // Skip the noise columns when they carry no information.
            if field.ends_with("_profile") && rendered == "none" {
                continue;
            }
            parts.push(format!("{field}={rendered}"));
        }
    }
    if parts.is_empty() {
        format!("results[{i}]")
    } else {
        format!("results[{i}] ({})", parts.join(", "))
    }
}

/// Schema-checks a parsed `BENCH_*.json` document.
///
/// # Errors
///
/// Returns a description of the first violation — missing or mistyped
/// field, wrong schema version, empty results, invalid mode or model, an
/// out-of-range rate, or a completion split that does not add up
/// (`aggregated + aggregated_survivors != completed`) — naming the
/// offending cell by its identifying columns (algorithm, workload, fault
/// profile, n), not just its index.
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing numeric field: schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
        ));
    }
    for field in ["scenario", "git_rev"] {
        doc.get(field)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing string field: {field}"))?;
    }
    for field in ["seed", "wall_clock_secs"] {
        doc.get(field)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing numeric field: {field}"))?;
    }
    let declared_ns: Vec<f64> = doc
        .get("ns")
        .and_then(Json::as_array)
        .ok_or("missing array field: ns")?
        .iter()
        .map(|n| n.as_f64().ok_or("ns entries must be numeric"))
        .collect::<Result<_, _>>()?;
    if declared_ns.is_empty() {
        return Err("the declared node-count grid 'ns' must not be empty".to_string());
    }
    let results = doc
        .get("results")
        .and_then(Json::as_array)
        .ok_or("missing array field: results")?;
    if results.is_empty() {
        return Err("results must not be empty".to_string());
    }
    for (i, cell) in results.iter().enumerate() {
        let who = || cell_identity(i, cell);
        for field in [
            "algorithm",
            "workload",
            "fault_profile",
            "byzantine_profile",
            "mode",
            "model",
        ] {
            cell.get(field)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{}: missing string field: {field}", who()))?;
        }
        let mode = cell.get("mode").and_then(Json::as_str).expect("checked");
        if ![
            "streamed",
            "materialized",
            "lanes",
            "rounds",
            "hierarchical",
        ]
        .contains(&mode)
        {
            return Err(format!(
                "{}: mode '{mode}' must be 'streamed', 'materialized', 'lanes', 'rounds' \
                 or 'hierarchical'",
                who()
            ));
        }
        let model = cell.get("model").and_then(Json::as_str).expect("checked");
        if model != "pairwise" && model != "rounds" {
            return Err(format!(
                "{}: model '{model}' must be 'pairwise' or 'rounds'",
                who()
            ));
        }
        let fault_label = cell
            .get("fault_profile")
            .and_then(Json::as_str)
            .expect("checked");
        let byzantine_label = cell
            .get("byzantine_profile")
            .and_then(Json::as_str)
            .expect("checked");
        // The lane tier is fault-free and pairwise by contract; the round
        // tier only exists for round scenarios. A cell claiming otherwise
        // was not produced by the sweep's tier resolution.
        if mode == "lanes" && (fault_label != "none" || model != "pairwise") {
            return Err(format!(
                "{}: a lane cell must be fault-free and pairwise",
                who()
            ));
        }
        if mode == "rounds" && model != "rounds" {
            return Err(format!(
                "{}: a rounds-mode cell must carry the rounds model",
                who()
            ));
        }
        // The hierarchical tier re-instantiates the scenario family at
        // cluster size and is fault-free by contract; only pairwise
        // fault-free cells can have run on it.
        if mode == "hierarchical" && (fault_label != "none" || model != "pairwise") {
            return Err(format!(
                "{}: a hierarchical cell must be fault-free and pairwise",
                who()
            ));
        }
        // Byzantine plans run on the audited scalar paths only: a cell
        // claiming a fast tier *and* a Byzantine plan was not produced by
        // the sweep's tier resolution.
        if byzantine_label != "none" && ["lanes", "rounds", "hierarchical"].contains(&mode) {
            return Err(format!(
                "{}: a byzantine cell cannot run on the {mode} tier (honest by contract)",
                who()
            ));
        }
        for field in [
            "n",
            "trials",
            "completed",
            "aggregated",
            "aggregated_survivors",
            "completion_rate",
            "total_interactions",
            "elapsed_secs",
            "throughput_ips",
            "peak_mem_bytes",
        ] {
            cell.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{}: missing numeric field: {field}", who()))?;
        }
        let numeric = |field: &str| cell.get(field).and_then(Json::as_f64).expect("checked");
        if !declared_ns.contains(&numeric("n")) {
            return Err(format!(
                "{}: n={} is not in the declared node-count grid",
                who(),
                numeric("n")
            ));
        }
        if numeric("aggregated") + numeric("aggregated_survivors") != numeric("completed") {
            return Err(format!(
                "{}: aggregated + aggregated_survivors must equal completed",
                who()
            ));
        }
        let fault_profile = cell
            .get("fault_profile")
            .and_then(Json::as_str)
            .expect("checked");
        if fault_profile == "none" && numeric("aggregated_survivors") != 0.0 {
            return Err(format!(
                "{}: a fault-free cell cannot report survivor-only completions",
                who()
            ));
        }
        let mean = cell
            .get("mean_interactions")
            .ok_or_else(|| format!("{}: missing field: mean_interactions", who()))?;
        if !mean.is_null() && mean.as_f64().is_none() {
            return Err(format!(
                "{}: mean_interactions must be a number or null",
                who()
            ));
        }
        let rate = cell
            .get("completion_rate")
            .and_then(Json::as_f64)
            .expect("checked above");
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{}: completion_rate {rate} outside [0, 1]", who()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_emits_a_valid_schema() {
        let report = run_grid(&PerfGrid::smoke());
        assert_eq!(report.file_name(), "BENCH_smoke.json");
        // 2 algorithms x 5 scenarios x 2 node counts, all compatible (both
        // smoke algorithms are knowledge-free), plus one pinned
        // hierarchical scale cell.
        assert_eq!(report.results.len(), PerfGrid::smoke().cell_count());
        assert_eq!(report.results.len(), 2 * 5 * 2 + 1);
        let doc = Json::parse(&report.to_json()).expect("emitted JSON parses");
        validate_report(&doc).expect("emitted JSON passes the schema check");
        // The mode column names the resolved execution tier: fault-free
        // pairwise cells of the lane-kernel algorithms run on lanes, round
        // scenarios on the native round path, faulted cells fall back to
        // the scalar streamed reference, and the pinned scale cell reports
        // the hierarchical tier it requested.
        for cell in &report.results {
            let expected = if cell.n == 2_048 {
                "hierarchical"
            } else if cell.fault_profile != "none" {
                "streamed"
            } else if cell.model == "rounds" {
                "rounds"
            } else {
                "lanes"
            };
            assert_eq!(
                cell.mode, expected,
                "{} x {}",
                cell.algorithm, cell.workload
            );
        }
        // The hierarchical scale cell genuinely completes: clustered
        // aggregation needs O(n^{3/2}) interactions, well inside its
        // budget at n = 2048.
        let scale = report.results.last().expect("scale cell present");
        assert_eq!(scale.mode, "hierarchical");
        assert_eq!(scale.completion_rate, 1.0);
        // The declared grid covers the cross product and the scale cell.
        assert_eq!(report.ns, vec![8, 16, 2_048]);
        // The fault axis is present: fault-free cells say "none", the
        // faulted cells carry the plan label and a consistent split.
        assert!(report
            .results
            .iter()
            .any(|c| c.fault_profile == "crash(0.002)"));
        // The round axis is present, and only round scenarios carry it.
        assert!(report
            .results
            .iter()
            .any(|c| c.model == "rounds" && c.workload == "random-matching"));
        for cell in &report.results {
            assert_eq!(cell.completed, cell.aggregated + cell.aggregated_survivors);
            if cell.fault_profile == "none" {
                assert_eq!(cell.aggregated_survivors, 0);
            }
            assert_eq!(cell.model == "rounds", cell.workload == "random-matching");
        }
    }

    #[test]
    fn smoke_grid_is_deterministic_in_its_measurements() {
        // Wall-clock fields vary run to run; the measured simulation
        // quantities must not.
        let a = run_grid(&PerfGrid::smoke());
        let b = run_grid(&PerfGrid::smoke());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.algorithm, y.algorithm);
            assert_eq!(x.workload, y.workload);
            assert_eq!(x.mode, y.mode);
            assert_eq!(x.n, y.n);
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.mean_interactions, y.mean_interactions);
            assert_eq!(x.total_interactions, y.total_interactions);
        }
    }

    #[test]
    fn baseline_grid_skips_adaptive_cells_for_materializing_specs() {
        let grid = PerfGrid::baseline();
        // 3 algorithms x 10 scenarios x 3 node counts, minus the
        // WaitingGreedy x adaptive-isolator column (3 cells), plus the
        // three pinned scale cells. The round scenarios are non-adaptive,
        // so they admit every algorithm.
        assert_eq!(grid.cell_count(), 3 * 10 * 3 - 3 + 3);
        assert_eq!(grid.declared_ns(), vec![32, 128, 512, 10_000, 100_000]);
    }

    #[test]
    fn adaptive_cells_run_and_report_modes() {
        let report = run_grid(&PerfGrid {
            name: "adaptive-mini".to_string(),
            ns: vec![8],
            trials: 2,
            seed: 1,
            algorithms: vec![
                AlgorithmSpec::Gathering,
                AlgorithmSpec::WaitingGreedy { tau: None },
            ],
            scenarios: vec![Scenario::Uniform.into(), Scenario::AdaptiveIsolator.into()],
            parallel: false,
            scale_cells: Vec::new(),
        });
        // uniform admits both; adaptive-isolator only Gathering.
        assert_eq!(report.results.len(), 3);
        let modes: Vec<(&str, &str)> = report
            .results
            .iter()
            .map(|c| (c.workload.as_str(), c.mode))
            .collect();
        assert!(modes.contains(&("uniform", "lanes")));
        assert!(modes.contains(&("uniform", "materialized")));
        // Adaptive adversaries run on lanes too: the lane engine maintains
        // per-lane ownership views identical to the scalar engine's.
        assert!(modes.contains(&("adaptive-isolator", "lanes")));
        // The adaptive cell completes under Gathering (the isolator's
        // release rule) — adaptive adversaries are genuinely sweepable.
        let adaptive = report
            .results
            .iter()
            .find(|c| c.workload == "adaptive-isolator")
            .unwrap();
        assert_eq!(adaptive.completion_rate, 1.0);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        let good = run_grid(&PerfGrid {
            trials: 2,
            ns: vec![8],
            algorithms: vec![AlgorithmSpec::Gathering],
            scenarios: vec![Scenario::Uniform.into()],
            scale_cells: Vec::new(),
            ..PerfGrid::smoke()
        })
        .to_json();
        let doc = Json::parse(&good).unwrap();
        validate_report(&doc).unwrap();

        for (breaker, expected) in [
            (r#"{"schema_version": 7}"#, "missing string field: scenario"),
            (r#"{"schema_version": 9}"#, "unsupported schema_version"),
            (r#"{"schema_version": 6}"#, "unsupported schema_version"),
            (r#"{}"#, "missing numeric field: schema_version"),
        ] {
            let err = validate_report(&Json::parse(breaker).unwrap()).unwrap_err();
            assert!(err.contains(expected), "{err} !~ {expected}");
        }
        // Empty results array is rejected.
        let Json::Object(mut fields) = Json::parse(&good).unwrap() else {
            unreachable!("reports are objects");
        };
        for (key, value) in &mut fields {
            if key == "results" {
                *value = Json::Array(Vec::new());
            }
        }
        let err = validate_report(&Json::Object(fields)).unwrap_err();
        assert!(err.contains("results must not be empty"), "{err}");
        // A bogus mode is rejected. The tiny Gathering x uniform grid runs
        // its cell on the lane tier.
        let bad_mode = good.replace("\"lanes\"", "\"telepathic\"");
        assert_ne!(bad_mode, good, "fixture must contain a lane cell");
        let err = validate_report(&Json::parse(&bad_mode).unwrap()).unwrap_err();
        assert!(
            err.contains("must be 'streamed', 'materialized', 'lanes', 'rounds' or 'hierarchical'"),
            "{err}"
        );
        // A cell at a node count the envelope never declared is rejected
        // (the cell key is "n"; the declared grid array is "ns").
        let off_grid = good.replace("\"n\": 8", "\"n\": 9");
        assert_ne!(off_grid, good, "fixture must contain the field");
        let err = validate_report(&Json::parse(&off_grid).unwrap()).unwrap_err();
        assert!(err.contains("not in the declared node-count grid"), "{err}");
        // A hierarchical cell claiming a fault plan or the rounds model
        // contradicts the hierarchical tier's contract.
        let faulted_hier = good.replace("\"lanes\"", "\"hierarchical\"").replace(
            "\"fault_profile\": \"none\"",
            "\"fault_profile\": \"crash(0.1)\"",
        );
        let err = validate_report(&Json::parse(&faulted_hier).unwrap()).unwrap_err();
        assert!(
            err.contains("hierarchical cell must be fault-free"),
            "{err}"
        );
        // A lane cell claiming a fault plan contradicts the lane tier's
        // fault-free contract.
        let faulted_lane = good.replace(
            "\"fault_profile\": \"none\"",
            "\"fault_profile\": \"crash(0.1)\"",
        );
        assert_ne!(faulted_lane, good, "fixture must contain the field");
        let err = validate_report(&Json::parse(&faulted_lane).unwrap()).unwrap_err();
        assert!(err.contains("lane cell must be fault-free"), "{err}");
        // A rounds-mode cell over a pairwise scenario is equally impossible.
        let pairwise_rounds = good.replace("\"lanes\"", "\"rounds\"");
        let err = validate_report(&Json::parse(&pairwise_rounds).unwrap()).unwrap_err();
        assert!(err.contains("rounds-mode cell"), "{err}");
        // A completion split that does not add up is rejected. The tiny
        // grid completes every trial, so "completed": 2 pairs with
        // "aggregated": 2; corrupting the latter breaks the identity.
        let bad_split = good.replace("\"aggregated\": 2", "\"aggregated\": 1");
        assert_ne!(bad_split, good, "fixture must contain the field");
        let err = validate_report(&Json::parse(&bad_split).unwrap()).unwrap_err();
        assert!(err.contains("must equal completed"), "{err}");
        // A fault-free cell claiming survivor completions is rejected.
        let bad_survivors = good
            .replace("\"aggregated\": 2", "\"aggregated\": 1")
            .replace("\"aggregated_survivors\": 0", "\"aggregated_survivors\": 1");
        let err = validate_report(&Json::parse(&bad_survivors).unwrap()).unwrap_err();
        assert!(err.contains("fault-free cell"), "{err}");
        // A bogus interaction model is rejected.
        let bad_model = good.replace("\"pairwise\"", "\"telepathic\"");
        let err = validate_report(&Json::parse(&bad_model).unwrap()).unwrap_err();
        assert!(err.contains("must be 'pairwise' or 'rounds'"), "{err}");
        // A Byzantine cell claiming an honest-by-contract tier is rejected.
        let byzantine_lane = good.replace(
            "\"byzantine_profile\": \"none\"",
            "\"byzantine_profile\": \"forge(0.1)\"",
        );
        assert_ne!(byzantine_lane, good, "fixture must contain the field");
        let err = validate_report(&Json::parse(&byzantine_lane).unwrap()).unwrap_err();
        assert!(
            err.contains("byzantine cell cannot run on the lanes tier"),
            "{err}"
        );
    }

    #[test]
    fn validator_errors_name_the_offending_cell() {
        // Cell failures identify the cell by its columns, not just the
        // index — a 90-cell baseline cannot be bisected by hand.
        let report = run_grid(&PerfGrid {
            trials: 2,
            ns: vec![8],
            algorithms: vec![AlgorithmSpec::Gathering],
            scenarios: vec![Scenario::Uniform.into()],
            scale_cells: Vec::new(),
            ..PerfGrid::smoke()
        })
        .to_json();
        let broken = report.replace("\"completion_rate\": 1.0", "\"completion_rate\": 7.5");
        assert_ne!(broken, report, "fixture must contain the field");
        let err = validate_report(&Json::parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("results[0]"), "{err}");
        assert!(err.contains("algorithm=Gathering"), "{err}");
        assert!(err.contains("workload=uniform"), "{err}");
        assert!(err.contains("n=8"), "{err}");
        assert!(err.contains("completion_rate"), "{err}");
        // The redundant fault_profile=none column is elided.
        assert!(!err.contains("fault_profile"), "{err}");
    }
}
