//! `doda-bench` — the machine-readable perf harness.
//!
//! Runs a pinned perf grid (algorithms × scenarios × node counts) through
//! the sharded [`Sweep`] builder and emits `BENCH_<grid>.json`, the
//! perf-trajectory artifact CI uploads on every push and PRs extend over
//! time. Also validates existing artifacts, measures the lane tier's
//! speedup over the scalar reference, and guards the streaming path's
//! `O(n)`-memory claim with a long-horizon run.
//!
//! ```text
//! doda-bench --baseline              # full grid  -> BENCH_baseline.json
//! doda-bench --smoke                 # tiny grid  -> BENCH_smoke.json (CI)
//! doda-bench --out-dir perf --smoke  # write into ./perf/
//! doda-bench --validate FILE.json    # schema-check an artifact
//! doda-bench --compare RUN BASE --tolerance 40
//!                                    # perf-regression gate (CI)
//! doda-bench --compare-runners       # lane tier vs scalar tier speedup
//! doda-bench --lane-guard            # enforce >= 1.5x lane speedup (CI)
//! doda-bench --stream-guard          # 10^7-interaction streamed sweeps
//! doda-bench --fault-guard           # 10^6-interaction faulted sweeps
//! doda-bench --round-guard           # 10^6-interaction round sweeps
//! doda-bench --service-guard         # 1000 sessions over the loopback wire
//! doda-bench --scale-guard           # O(n) memory + throughput at n = 10^6
//! doda-bench --algebra-guard         # sketch aggregates: less memory, bounded error
//! doda-bench --byzantine-guard       # lying nodes: detected / tolerated verdicts
//! doda-bench --guard-summary DIR     # one-line table over BENCH_guard_*.json
//! ```
//!
//! Every guard prints its detail lines, then a one-line summary, and —
//! when `--out-dir` is given — drops a `BENCH_guard_<name>.json` record
//! (`guard`, `passed`, `summary`) next to the grid artifacts, so CI can
//! upload one artifact covering every gate and render a summary table
//! with `--guard-summary`.

// The one unsafe block of the workspace: the tracking global allocator
// below wraps `System` to feed the `doda_bench::memory` counters behind
// the `peak_mem_bytes` column and the `--scale-guard` memory gate.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use doda_bench::compare::compare_reports;
use doda_bench::json::Json;
use doda_bench::perf::{run_grid, validate_report, PerfGrid};
use doda_core::algebra::AggregateSummary;
use doda_core::byzantine::{ByzantineProfile, Verdict};
use doda_core::fault::FaultProfile;
use doda_core::sequence::StepEvent;
use doda_core::Interaction;
use doda_graph::NodeId;
use doda_service::prelude::*;
use doda_sim::runner::BatchConfig;
use doda_sim::{AggregateKind, AlgorithmSpec, ExecutionTier, Scenario, Sweep};

/// A thin [`System`] wrapper that reports every allocation event to
/// [`doda_bench::memory`], so every grid cell carries a real
/// `peak_mem_bytes` and `--scale-guard` can assert the `O(n)` memory
/// claim on actual heap high-water marks.
struct TrackingAllocator;

// SAFETY: every method delegates directly to `System` and only adds
// bookkeeping on the reported sizes; the allocation contract is exactly
// `System`'s.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            doda_bench::memory::record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        doda_bench::memory::record_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            doda_bench::memory::record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            doda_bench::memory::record_dealloc(layout.size());
            doda_bench::memory::record_alloc(new_size);
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOCATOR: TrackingAllocator = TrackingAllocator;

struct Args {
    grid: PerfGrid,
    out_dir: PathBuf,
    validate: Vec<PathBuf>,
    compare: Option<(PathBuf, PathBuf)>,
    tolerance: Option<f64>,
    compare_runners: bool,
    lane_guard: bool,
    stream_guard: bool,
    fault_guard: bool,
    round_guard: bool,
    service_guard: bool,
    scale_guard: bool,
    algebra_guard: bool,
    byzantine_guard: bool,
    guard_summary: Option<PathBuf>,
}

/// The default throughput tolerance of `--compare`, generous enough for
/// shared-runner noise while still failing a 2x slowdown loudly.
const DEFAULT_TOLERANCE_PCT: f64 = 40.0;

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        grid: PerfGrid::baseline(),
        out_dir: PathBuf::from("."),
        validate: Vec::new(),
        compare: None,
        tolerance: None,
        compare_runners: false,
        lane_guard: false,
        stream_guard: false,
        fault_guard: false,
        round_guard: false,
        service_guard: false,
        scale_guard: false,
        algebra_guard: false,
        byzantine_guard: false,
        guard_summary: None,
    };
    let mut grid_requested = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--smoke" => {
                args.grid = PerfGrid::smoke();
                grid_requested = true;
            }
            "--baseline" => {
                args.grid = PerfGrid::baseline();
                grid_requested = true;
            }
            "--out-dir" => {
                let dir = argv.next().ok_or("--out-dir needs a directory")?;
                args.out_dir = PathBuf::from(dir);
            }
            "--validate" => {
                let file = argv.next().ok_or("--validate needs a file")?;
                args.validate.push(PathBuf::from(file));
            }
            "--compare" => {
                let run = argv.next().ok_or("--compare needs <run> and <baseline>")?;
                let base = argv
                    .next()
                    .ok_or("--compare needs a <baseline> after <run>")?;
                args.compare = Some((PathBuf::from(run), PathBuf::from(base)));
            }
            "--tolerance" => {
                let pct = argv.next().ok_or("--tolerance needs a percentage")?;
                args.tolerance = Some(
                    pct.parse::<f64>()
                        .map_err(|e| format!("--tolerance {pct}: {e}"))?,
                );
            }
            "--compare-runners" => args.compare_runners = true,
            "--lane-guard" => args.lane_guard = true,
            "--stream-guard" => args.stream_guard = true,
            "--fault-guard" => args.fault_guard = true,
            "--round-guard" => args.round_guard = true,
            "--service-guard" => args.service_guard = true,
            "--scale-guard" => args.scale_guard = true,
            "--algebra-guard" => args.algebra_guard = true,
            "--byzantine-guard" => args.byzantine_guard = true,
            "--guard-summary" => {
                let dir = argv.next().ok_or("--guard-summary needs a directory")?;
                args.guard_summary = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "doda-bench [--smoke | --baseline] [--out-dir DIR] \
                     | --validate FILE... | --compare RUN BASELINE [--tolerance PCT] \
                     | --compare-runners | [--out-dir DIR] --lane-guard | --stream-guard \
                     | --fault-guard | --round-guard | --service-guard | --scale-guard \
                     | --algebra-guard | --byzantine-guard | --guard-summary DIR"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    // The modes are mutually exclusive; combining them would silently skip
    // a requested grid run.
    let modes = usize::from(grid_requested)
        + usize::from(!args.validate.is_empty())
        + usize::from(args.compare.is_some())
        + usize::from(args.compare_runners)
        + usize::from(args.lane_guard)
        + usize::from(args.stream_guard)
        + usize::from(args.fault_guard)
        + usize::from(args.round_guard)
        + usize::from(args.service_guard)
        + usize::from(args.scale_guard)
        + usize::from(args.algebra_guard)
        + usize::from(args.byzantine_guard)
        + usize::from(args.guard_summary.is_some());
    if modes > 1 {
        return Err(
            "--smoke/--baseline, --validate, --compare, --compare-runners, --lane-guard, \
             --stream-guard, --fault-guard, --round-guard, --service-guard, --scale-guard, \
             --algebra-guard, --byzantine-guard and --guard-summary are mutually exclusive"
                .to_string(),
        );
    }
    if args.tolerance.is_some() && args.compare.is_none() {
        return Err("--tolerance only applies to --compare".to_string());
    }
    Ok(args)
}

fn validate_files(files: &[PathBuf]) -> Result<(), String> {
    for file in files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        validate_report(&doc).map_err(|e| format!("{}: {e}", file.display()))?;
        println!("{}: ok", file.display());
    }
    Ok(())
}

/// The perf-regression gate: diffs a fresh run against a committed
/// baseline and fails on regressions beyond the tolerance (see
/// `doda_bench::compare`). Prints every regression with its cell
/// identity, so a CI failure names exactly what slowed down.
fn compare_files(run_path: &PathBuf, base_path: &PathBuf, tolerance: f64) -> Result<(), String> {
    let load = |path: &PathBuf| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    };
    let run = load(run_path)?;
    let baseline = load(base_path)?;
    let summary = compare_reports(&run, &baseline, tolerance)?;
    println!(
        "compared {} cells of {} against {} (throughput tolerance {tolerance}%)",
        summary.compared,
        run_path.display(),
        base_path.display(),
    );
    if let Some(ratio) = summary.median_throughput_ratio {
        println!(
            "  machine calibration: median run/baseline throughput ratio {ratio:.2} \
             (far from 1.0 means the baseline was measured on different hardware — \
             consider regenerating it where the gate runs)"
        );
    }
    for cell in &summary.new_cells {
        println!("  new cell (not in baseline): {cell}");
    }
    for cell in &summary.missing {
        println!("  MISSING: baseline cell absent from the run: {cell}");
    }
    for regression in &summary.regressions {
        println!("  REGRESSION: {regression}");
    }
    if summary.passed() {
        println!("perf gate passed: no cell regressed beyond {tolerance}%");
        Ok(())
    } else {
        Err(format!(
            "{} regression(s), {} missing cell(s)",
            summary.regressions.len(),
            summary.missing.len()
        ))
    }
}

/// The lane-over-scalar speedup floor `--lane-guard` enforces on the
/// knowledge-free n = 512 cell: conservative enough for noisy shared CI
/// runners, but a lane tier that cannot beat the scalar reference by 1.5x
/// has lost its reason to exist.
const LANE_GUARD_MIN_SPEEDUP: f64 = 1.5;

/// Times one knowledge-free batch shape on the lane tier and on the
/// scalar reference, interleaved over `reps` repetitions, cross-checking
/// per-trial byte-equality of the two tiers on every rep.
///
/// Returns `(timings, total_interactions)` with one `(lane_secs,
/// scalar_secs)` pair per rep. The two measurements of a pair are taken
/// back to back, so a per-rep speedup ratio cancels the common-mode
/// machine drift (frequency scaling, noisy co-tenants) that independent
/// per-tier minima cannot.
fn time_lane_vs_scalar(
    spec: AlgorithmSpec,
    scenario: Scenario,
    n: usize,
    trials: usize,
    reps: usize,
) -> Result<(Vec<(f64, f64)>, u64), String> {
    let sweep = |tier| {
        Sweep::scenario(spec, scenario)
            .n(n)
            .trials(trials)
            .seed(0xD0DA)
            .parallel(true)
            .tier(tier)
    };
    // Warm-up to populate thread pools and page caches fairly.
    let _ = sweep(ExecutionTier::Lanes).trials(8).run();

    // Interleave the two tiers so drift (frequency scaling, page cache)
    // hits both equally, alternating which tier goes first within a rep
    // to cancel any ordering bias.
    let mut timings = Vec::with_capacity(reps);
    let mut interactions = 0u64;
    for rep in 0..reps {
        let time_tier = |tier| {
            let t0 = Instant::now();
            let results = sweep(tier).run();
            (t0.elapsed().as_secs_f64(), results)
        };
        let (lane_secs, scalar_secs, lanes, scalar) = if rep % 2 == 0 {
            let (ls, lanes) = time_tier(ExecutionTier::Lanes);
            let (ss, scalar) = time_tier(ExecutionTier::Scalar);
            (ls, ss, lanes, scalar)
        } else {
            let (ss, scalar) = time_tier(ExecutionTier::Scalar);
            let (ls, lanes) = time_tier(ExecutionTier::Lanes);
            (ls, ss, lanes, scalar)
        };
        if lanes != scalar {
            return Err("lane and scalar tiers diverged on identical input".to_string());
        }
        interactions = lanes.iter().map(|r| r.interactions_processed).sum();
        timings.push((lane_secs, scalar_secs));
    }
    Ok((timings, interactions))
}

/// Per-tier minima over the reps: the usual low-noise estimator for
/// throughput reporting.
fn min_secs(timings: &[(f64, f64)]) -> (f64, f64) {
    timings
        .iter()
        .fold((f64::INFINITY, f64::INFINITY), |acc, t| {
            (acc.0.min(t.0), acc.1.min(t.1))
        })
}

/// The median of the per-rep `scalar/lane` speedup ratios — each ratio
/// compares two back-to-back measurements, so sustained machine-wide slow
/// phases (which skew independent per-tier minima) divide out.
fn median_speedup(timings: &[(f64, f64)]) -> f64 {
    let mut ratios: Vec<f64> = timings
        .iter()
        .map(|(lane, scalar)| scalar / lane.max(1e-9))
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    ratios[ratios.len() / 2]
}

/// Measures the lockstep lane tier against the scalar reference on
/// identical parallel batches, and cross-checks that both produce
/// byte-identical per-trial results.
///
/// Two batch shapes are timed: one dominated by per-trial overhead (many
/// small trials — where lane batching amortises source setup and engine
/// dispatch hardest) and one dominated by in-trial work (fewer large
/// trials at the n = 512 scale the perf grids track).
fn compare_runners() -> Result<(), String> {
    const REPS: usize = 7;
    let shapes = [
        ("overhead-bound", 64usize, 1_024usize),
        ("work-bound", 512, 64),
    ];
    let spec = AlgorithmSpec::Gathering;
    for (label, n, trials) in shapes {
        let (timings, interactions) =
            time_lane_vs_scalar(spec, Scenario::Uniform, n, trials, REPS)?;
        let (lane_secs, scalar_secs) = min_secs(&timings);
        println!("{label} batch ({spec} vs uniform, n = {n}, trials = {trials}, best of {REPS}):");
        println!(
            "  lane tier   : {lane_secs:.3} s ({:.0} i/s)",
            interactions as f64 / lane_secs.max(1e-9)
        );
        println!(
            "  scalar tier : {scalar_secs:.3} s ({:.0} i/s)",
            interactions as f64 / scalar_secs.max(1e-9)
        );
        println!(
            "  speedup     : {:.2}x median per-rep",
            median_speedup(&timings)
        );
    }
    Ok(())
}

/// The CI gate on the lane tier's reason to exist: on the knowledge-free
/// n = 512 uniform Gathering cell, the lockstep lane path must beat the
/// scalar reference by at least [`LANE_GUARD_MIN_SPEEDUP`]x — while
/// producing byte-identical per-trial results (cross-checked every rep).
fn lane_guard() -> Result<String, String> {
    const REPS: usize = 9;
    const N: usize = 512;
    const TRIALS: usize = 64;
    let (timings, interactions) =
        time_lane_vs_scalar(AlgorithmSpec::Gathering, Scenario::Uniform, N, TRIALS, REPS)?;
    let (lane_secs, scalar_secs) = min_secs(&timings);
    let speedup = median_speedup(&timings);
    println!(
        "lane-guard: Gathering vs uniform, n = {N}, {TRIALS} trials, {REPS} reps: \
         lanes {lane_secs:.3} s ({:.0} i/s), scalar {scalar_secs:.3} s ({:.0} i/s), \
         median per-rep speedup {speedup:.2}x (floor {LANE_GUARD_MIN_SPEEDUP}x)",
        interactions as f64 / lane_secs.max(1e-9),
        interactions as f64 / scalar_secs.max(1e-9),
    );
    if speedup < LANE_GUARD_MIN_SPEEDUP {
        return Err(format!(
            "lane tier speedup {speedup:.2}x is below the {LANE_GUARD_MIN_SPEEDUP}x floor"
        ));
    }
    Ok(format!(
        "median lane speedup {speedup:.2}x over scalar (floor {LANE_GUARD_MIN_SPEEDUP}x), \
         byte-identical results every rep"
    ))
}

/// Guards the streaming path's `O(n)`-memory claim with two long-horizon
/// runs at `horizon = 10^7` (a horizon whose materialised sequence would
/// occupy ~160 MB per worker — the buffer the streamed path never
/// allocates):
///
/// 1. `Waiting` vs the adaptive isolator at `n = 128`: the adversary
///    starves the sink, so the engine genuinely processes all 10^7
///    streamed interactions;
/// 2. `Gathering` vs the uniform scenario at the same horizon: terminates
///    after ~n² interactions without the horizon-sized buffer fill the
///    materialised path would have paid up front.
fn stream_guard() -> Result<String, String> {
    const HORIZON: usize = 10_000_000;
    const N: usize = 128;

    let config = BatchConfig {
        n: N,
        trials: 1,
        horizon: Some(HORIZON),
        seed: 0xD0DA,
        parallel: false,
    };

    let t0 = Instant::now();
    let starved = Sweep::scenario(AlgorithmSpec::Waiting, Scenario::AdaptiveIsolator)
        .config(&config)
        .run();
    let starved_secs = t0.elapsed().as_secs_f64();
    let starved = &starved[0];
    if starved.terminated() || starved.interactions_processed != HORIZON as u64 {
        return Err(format!(
            "adaptive starvation run should process exactly {HORIZON} interactions \
             without terminating, got {} (terminated: {})",
            starved.interactions_processed,
            starved.terminated()
        ));
    }
    println!(
        "stream-guard: Waiting vs adaptive-isolator, n = {N}, horizon = {HORIZON}: \
         processed {} interactions in {starved_secs:.2} s ({:.0} i/s), O(n) memory",
        starved.interactions_processed,
        starved.interactions_processed as f64 / starved_secs.max(1e-9),
    );

    let t1 = Instant::now();
    let gathered = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .config(&config)
        .run();
    let gathered_secs = t1.elapsed().as_secs_f64();
    let gathered = &gathered[0];
    if !gathered.terminated() {
        return Err("Gathering should terminate well within a 10^7 uniform horizon".to_string());
    }
    println!(
        "stream-guard: Gathering vs uniform, n = {N}, horizon = {HORIZON}: terminated \
         after {} interactions in {gathered_secs:.2} s — no horizon-sized buffer allocated",
        gathered.interactions_processed,
    );
    Ok(format!(
        "two 10^7-horizon streamed runs at n = {N}, O(n) memory: starved run {:.0} i/s, \
         Gathering terminated after {} interactions",
        starved.interactions_processed as f64 / starved_secs.max(1e-9),
        gathered.interactions_processed,
    ))
}

/// Guards the fault layer's streaming and survivor-completion claims with
/// two long-horizon faulted runs at `horizon = 10^6`:
///
/// 1. `Waiting` vs the crash-aware isolator under a lossy plan at
///    `n = 128`: the adversary never releases anyone to the sink, so the
///    engine processes the full faulted horizon streamed — proving the
///    fault adapter adds no horizon-sized buffer (`O(n)` memory);
/// 2. `Gathering` vs `uniform+crash` at the same `n`: every trial must
///    terminate, with a nonzero number of survivor-only completions
///    (crashes genuinely cost data) and data conservation intact.
fn fault_guard() -> Result<String, String> {
    const HORIZON: usize = 1_000_000;
    const N: usize = 128;

    let starvation = Scenario::CrashAwareIsolator.with_faults(FaultProfile::lossy(0.25));
    let config = BatchConfig {
        n: N,
        trials: 1,
        horizon: Some(HORIZON),
        seed: 0xD0DA,
        parallel: false,
    };
    let t0 = Instant::now();
    let starved = Sweep::scenario(AlgorithmSpec::Waiting, starvation)
        .config(&config)
        .run();
    let starved_secs = t0.elapsed().as_secs_f64();
    let starved = &starved[0];
    if starved.terminated() || starved.interactions_processed != HORIZON as u64 {
        return Err(format!(
            "faulted starvation run should process exactly {HORIZON} steps without \
             terminating, got {} (terminated: {})",
            starved.interactions_processed,
            starved.terminated()
        ));
    }
    if starved.faults.lost_interactions == 0 {
        return Err("a 25% loss plan must drop interactions over 10^6 steps".to_string());
    }
    println!(
        "fault-guard: Waiting vs crash-aware-isolator+loss(0.25), n = {N}, horizon = \
         {HORIZON}: processed {} steps ({} lost) in {starved_secs:.2} s ({:.0} i/s), O(n) memory",
        starved.interactions_processed,
        starved.faults.lost_interactions,
        starved.interactions_processed as f64 / starved_secs.max(1e-9),
    );

    let crashing = Scenario::Uniform.with_faults(FaultProfile::crash(0.001));
    let config = BatchConfig {
        n: N,
        trials: 8,
        horizon: None,
        seed: 0xD0DA,
        parallel: false,
    };
    let t1 = Instant::now();
    let trials = Sweep::scenario(AlgorithmSpec::Gathering, crashing)
        .config(&config)
        .run();
    let crash_secs = t1.elapsed().as_secs_f64();
    if !trials.iter().all(|r| r.terminated() && r.data_conserved) {
        return Err(
            "every uniform+crash Gathering trial must terminate with data conserved".to_string(),
        );
    }
    let survivors = trials.iter().filter(|r| !r.fully_aggregated()).count();
    if survivors == 0 {
        return Err(
            "a 0.1% crash plan over n = 128 must produce survivor-only completions".to_string(),
        );
    }
    let crashes: u64 = trials.iter().map(|r| r.faults.crashes).sum();
    println!(
        "fault-guard: Gathering vs uniform+crash(0.001), n = {N}, {} trials: all terminated \
         and conserved data, {survivors} survivor-only completions, {crashes} crashes, \
         {crash_secs:.2} s",
        trials.len(),
    );
    Ok(format!(
        "faulted 10^6-step horizon streamed with {} losses, O(n) memory; {survivors} \
         survivor-only completions and {crashes} crashes over {} crash trials, data conserved",
        starved.faults.lost_interactions,
        trials.len(),
    ))
}

/// Guards the round path's `O(n)`-memory and batched-application claims
/// with long-horizon round sweeps at `n = 128`:
///
/// 1. `Waiting` vs the sink-unmatched round trap at a 10^6-interaction
///    budget: every round is a 63-pair matching that never touches the
///    sink, so the engine genuinely batches ~16k rounds through the
///    native round path without terminating — and without any
///    horizon-sized buffer;
/// 2. `Gathering` vs random matchings at the same `n`: every trial must
///    terminate (a near-perfect random matching reaches the sink fast)
///    with data conserved.
fn round_guard() -> Result<String, String> {
    const HORIZON: usize = 1_000_000;
    const N: usize = 128;

    let config = BatchConfig {
        n: N,
        trials: 1,
        horizon: Some(HORIZON),
        seed: 0xD0DA,
        parallel: false,
    };
    let t0 = Instant::now();
    let starved = Sweep::scenario(AlgorithmSpec::Waiting, Scenario::RoundIsolator)
        .config(&config)
        .run();
    let starved_secs = t0.elapsed().as_secs_f64();
    let starved = &starved[0];
    if starved.terminated() || starved.interactions_processed != HORIZON as u64 {
        return Err(format!(
            "the round trap should process exactly {HORIZON} interactions without \
             terminating, got {} (terminated: {})",
            starved.interactions_processed,
            starved.terminated()
        ));
    }
    println!(
        "round-guard: Waiting vs round-isolator, n = {N}, budget = {HORIZON}: \
         processed {} matched interactions (~{} rounds) in {starved_secs:.2} s \
         ({:.0} i/s), O(n) memory",
        starved.interactions_processed,
        starved.interactions_processed / ((N as u64 - 1) / 2),
        starved.interactions_processed as f64 / starved_secs.max(1e-9),
    );

    let config = BatchConfig {
        n: N,
        trials: 8,
        horizon: None,
        seed: 0xD0DA,
        parallel: false,
    };
    let t1 = Instant::now();
    let trials = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::RandomMatching)
        .config(&config)
        .run();
    let gather_secs = t1.elapsed().as_secs_f64();
    if !trials.iter().all(|r| r.terminated() && r.data_conserved) {
        return Err(
            "every random-matching Gathering trial must terminate with data conserved".to_string(),
        );
    }
    println!(
        "round-guard: Gathering vs random-matching, n = {N}, {} trials: all terminated \
         and conserved data in {gather_secs:.2} s",
        trials.len(),
    );
    Ok(format!(
        "~{} rounds batched through the native round path without termination, O(n) \
         memory; {} random-matching trials terminated with data conserved",
        starved.interactions_processed / ((N as u64 - 1) / 2),
        trials.len(),
    ))
}

/// The throughput floor `--service-guard` enforces on the multi-tenant
/// fleet: engine interactions per wall-clock second across the whole
/// service (wire codec + scheduler + engine). Conservative for shared CI
/// runners; the release-mode service sustains well over 10x this.
const SERVICE_GUARD_MIN_IPS: f64 = 100_000.0;

/// Guards the multi-tenant service's claims end-to-end over the wire:
///
/// 1. **Scale** — 1000 concurrent scenario sessions opened through a
///    [`ServiceClient`] over the in-memory loopback, scheduled to
///    completion in budgeted slices, with every result streaming back as
///    a wire frame. Aggregate engine throughput must clear
///    [`SERVICE_GUARD_MIN_IPS`].
/// 2. **Fidelity** — a sample of the returned results is cross-checked
///    byte-for-byte against the equivalent standalone single-trial
///    [`Sweep`] runs.
/// 3. **Memory** — finished sessions must be retired (the manager ends
///    empty: `O(live sessions + n)`, not `O(all sessions ever)`), and a
///    deliberately overfed external session's bounded inbox must shed
///    instead of grow: its high-water mark never exceeds its capacity.
fn service_guard() -> Result<String, String> {
    const SESSIONS: u64 = 1_000;
    const N: usize = 64;
    const SPOT_CHECK_EVERY: u64 = 83;
    let err = |e: ServiceError| e.to_string();

    let (client_end, service_end) = Loopback::pair();
    let mut client = ServiceClient::new(client_end);
    let mut service = ServiceEndpoint::new(SessionManager::new(), service_end);
    let config = SessionConfig {
        slice_budget: 512,
        ..SessionConfig::default()
    };

    let t0 = Instant::now();
    for tenant in 0..SESSIONS {
        client
            .open_scenario(
                SessionId(tenant),
                AlgorithmSpec::Gathering,
                Scenario::Uniform,
                N,
                tenant,
                &config,
            )
            .map_err(err)?;
    }
    service.run_until_idle().map_err(err)?;
    let mut results = Vec::new();
    while let Some(reply) = client.poll_result().map_err(err)? {
        match reply {
            WireResult::Result { session, result } => results.push((session, result)),
            WireResult::Error { session, message } => {
                return Err(format!("session {session} failed: {message}"))
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64();

    if results.len() as u64 != SESSIONS {
        return Err(format!(
            "expected {SESSIONS} result frames, got {}",
            results.len()
        ));
    }
    if !service.manager().is_empty() {
        return Err(format!(
            "{} finished sessions were not retired — the O(sessions + n) memory claim is broken",
            service.manager().len()
        ));
    }
    let interactions: u64 = results.iter().map(|(_, r)| r.interactions_processed).sum();
    let throughput = interactions as f64 / secs.max(1e-9);
    println!(
        "service-guard: {SESSIONS} sessions (Gathering vs uniform, n = {N}) over loopback: \
         {interactions} interactions in {secs:.2} s ({throughput:.0} i/s, {} workers), \
         all sessions retired",
        service.manager().workers(),
    );
    if throughput < SERVICE_GUARD_MIN_IPS {
        return Err(format!(
            "service throughput {throughput:.0} i/s is below the {SERVICE_GUARD_MIN_IPS:.0} i/s floor"
        ));
    }

    let mut spot_checked = 0;
    for (session, result) in &results {
        if session.0 % SPOT_CHECK_EVERY != 0 {
            continue;
        }
        let reference = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
            .n(N)
            .trials(1)
            .seed(session.0)
            .run()
            .remove(0);
        if result != &reference {
            return Err(format!(
                "session {session} diverged from its standalone sweep"
            ));
        }
        spot_checked += 1;
    }
    println!(
        "service-guard: {spot_checked} sessions spot-checked byte-identical to standalone sweeps"
    );

    // Backpressure leg: overfeed one bounded external session without
    // letting the scheduler keep up — interactions never touch the sink,
    // so the session cannot finish early and free its inbox.
    const CAPACITY: usize = 64;
    let id = SessionId(SESSIONS + 1);
    let bp_config = SessionConfig {
        inbox_capacity: CAPACITY,
        overflow: OverflowPolicy::Shed,
        ..SessionConfig::default()
    };
    client
        .open_external(id, AlgorithmSpec::Gathering, N, &bp_config)
        .map_err(err)?;
    for k in 0..5_000usize {
        let a = NodeId(1 + (k % 31));
        let b = NodeId(33 + (k % 31));
        client
            .send_event(id, StepEvent::Interaction(Interaction::new(a, b)))
            .map_err(err)?;
        if k % 512 == 0 {
            service.pump().map_err(err)?;
        }
    }
    service.pump().map_err(err)?;
    let high_water = service.manager().inbox_high_water(id).unwrap_or(0);
    if high_water > CAPACITY {
        return Err(format!(
            "inbox high-water {high_water} exceeded its capacity {CAPACITY}"
        ));
    }
    client.close(id).map_err(err)?;
    service.run_until_idle().map_err(err)?;
    let shed = service.manager().shed_count();
    if shed == 0 {
        return Err("overfeeding a bounded inbox must shed events".to_string());
    }
    println!(
        "service-guard: overfed inbox stayed bounded (high-water {high_water}/{CAPACITY}, \
         {shed} events shed)"
    );
    Ok(format!(
        "{SESSIONS} sessions at {throughput:.0} i/s (floor {SERVICE_GUARD_MIN_IPS:.0}), \
         {spot_checked} spot-checked byte-identical, overfed inbox stayed bounded"
    ))
}

/// The memory-scaling ceiling `--scale-guard` enforces: growing the node
/// count 10x (10^5 → 10^6) may grow the peak heap by at most this factor.
/// An `O(n)` engine lands near 10x; any super-linear structure on the
/// trial path (a per-node `Vec<Vec<_>>`, a materialised horizon buffer)
/// blows far past it.
const SCALE_GUARD_MAX_MEM_RATIO: f64 = 12.0;

/// The throughput floor on the n = 10^6 streamed run, in interactions per
/// second. At a million nodes the engine is cache-miss bound near 10^6
/// i/s; the floor sits 4x under that — low enough for noisy shared CI
/// runners, high enough that any accidental per-interaction `O(n)` work
/// (a scan, a clone, a rebuild) fails it by orders of magnitude.
const SCALE_GUARD_MIN_IPS: f64 = 250_000.0;

/// Runs one budgeted streamed Gathering-vs-uniform trial at `n` and
/// returns `(peak heap growth in bytes, interactions, seconds)`.
fn scale_run(n: usize, budget: usize) -> Result<(u64, u64, f64), String> {
    let floor = doda_bench::memory::reset_peak();
    let t0 = Instant::now();
    let trials = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .n(n)
        .trials(1)
        .seed(0xD0DA)
        .horizon(Some(budget))
        .parallel(false)
        .tier(ExecutionTier::Scalar)
        .run();
    let secs = t0.elapsed().as_secs_f64();
    let peak = doda_bench::memory::peak_bytes().saturating_sub(floor) as u64;
    let trial = &trials[0];
    if trial.terminated() || trial.interactions_processed != budget as u64 {
        return Err(format!(
            "the n = {n} streamed run should exhaust its {budget}-interaction budget \
             (flat completion needs ~n^2), got {} (terminated: {})",
            trial.interactions_processed,
            trial.terminated()
        ));
    }
    Ok((peak, trial.interactions_processed, secs))
}

/// Guards the million-node regime end to end:
///
/// 1. **Memory** — a streamed Gathering-vs-uniform trial at n = 10^6 may
///    use at most [`SCALE_GUARD_MAX_MEM_RATIO`]x the peak heap of the
///    identical n = 10^5 trial (both budgeted to the same horizon, so
///    any `O(horizon)` buffer cancels out and the ratio isolates the
///    per-node structures).
/// 2. **Throughput** — the n = 10^6 run must clear
///    [`SCALE_GUARD_MIN_IPS`]: a million-node state that thrashes is as
///    broken as one that bloats.
/// 3. **Hierarchical completion** — a clustered sweep at n = 10^5 must
///    actually finish with every origin at the sink: `O(n^{3/2})`
///    interactions make completion feasible where flat aggregation
///    starves at any practical budget.
fn scale_guard() -> Result<String, String> {
    const REFERENCE_N: usize = 100_000;
    const TARGET_N: usize = 1_000_000;
    const BUDGET: usize = 2_000_000;
    const HIER_N: usize = 100_000;
    const HIER_BUDGET: usize = 80_000_000;

    if !doda_bench::memory::tracking() {
        return Err("the tracking allocator is not installed".to_string());
    }
    let (ref_peak, _, ref_secs) = scale_run(REFERENCE_N, BUDGET)?;
    let (big_peak, big_interactions, big_secs) = scale_run(TARGET_N, BUDGET)?;
    let ratio = big_peak as f64 / (ref_peak as f64).max(1.0);
    let throughput = big_interactions as f64 / big_secs.max(1e-9);
    println!(
        "scale-guard: streamed Gathering vs uniform, budget = {BUDGET}: \
         n = {REFERENCE_N}: peak {:.1} MiB in {ref_secs:.2} s; \
         n = {TARGET_N}: peak {:.1} MiB in {big_secs:.2} s ({throughput:.0} i/s)",
        ref_peak as f64 / (1 << 20) as f64,
        big_peak as f64 / (1 << 20) as f64,
    );
    println!(
        "scale-guard: 10x nodes grew peak memory {ratio:.1}x \
         (ceiling {SCALE_GUARD_MAX_MEM_RATIO}x)"
    );
    if ratio > SCALE_GUARD_MAX_MEM_RATIO {
        return Err(format!(
            "peak memory grew {ratio:.1}x for 10x nodes — super-linear state on the \
             trial path (ceiling {SCALE_GUARD_MAX_MEM_RATIO}x)"
        ));
    }
    if throughput < SCALE_GUARD_MIN_IPS {
        return Err(format!(
            "n = {TARGET_N} throughput {throughput:.0} i/s is below the \
             {SCALE_GUARD_MIN_IPS:.0} i/s floor"
        ));
    }

    let floor = doda_bench::memory::reset_peak();
    let t0 = Instant::now();
    let trials = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .n(HIER_N)
        .trials(1)
        .seed(0xD0DA)
        .horizon(Some(HIER_BUDGET))
        .parallel(false)
        .tier(ExecutionTier::Hierarchical)
        .run();
    let hier_secs = t0.elapsed().as_secs_f64();
    let hier_peak = doda_bench::memory::peak_bytes().saturating_sub(floor) as u64;
    let trial = &trials[0];
    if !trial.terminated() || !trial.fully_aggregated() {
        return Err(format!(
            "the hierarchical n = {HIER_N} sweep must aggregate every origin at the sink \
             within its {HIER_BUDGET}-interaction budget, got {} interactions \
             (terminated: {}, fully aggregated: {})",
            trial.interactions_processed,
            trial.terminated(),
            trial.fully_aggregated()
        ));
    }
    println!(
        "scale-guard: hierarchical Gathering vs uniform, n = {HIER_N}: fully aggregated \
         after {} interactions in {hier_secs:.2} s, peak {:.1} MiB — completion at a node \
         count where the flat tiers starve",
        trial.interactions_processed,
        hier_peak as f64 / (1 << 20) as f64,
    );
    Ok(format!(
        "10x nodes grew peak memory {ratio:.1}x (ceiling {SCALE_GUARD_MAX_MEM_RATIO}x) at \
         {throughput:.0} i/s; hierarchical n = {HIER_N} fully aggregated"
    ))
}

/// The relative-error ceiling `--algebra-guard` allows the distinct
/// sketch at n = 10^5. With 256 8-bit registers the standard error is
/// ~6.5%; the ceiling sits 3x above it so the gate only fires on a
/// broken estimator, not an unlucky seed.
const ALGEBRA_GUARD_MAX_DISTINCT_ERR: f64 = 0.20;

/// Runs one hierarchical Gathering-vs-uniform trial at `n` under the
/// given aggregate kind and returns `(peak heap growth, the trial)`.
fn algebra_run(n: usize, budget: usize, kind: AggregateKind) -> (u64, doda_sim::TrialResult) {
    let floor = doda_bench::memory::reset_peak();
    let trial = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
        .n(n)
        .trials(1)
        .seed(0xD0DA)
        .horizon(Some(budget))
        .parallel(false)
        .tier(ExecutionTier::Hierarchical)
        .aggregate(kind)
        .run()
        .remove(0);
    let peak = doda_bench::memory::peak_bytes().saturating_sub(floor) as u64;
    (peak, trial)
}

/// Guards the sketch aggregates' reason to exist at n = 10^5, on real
/// heap high-water marks:
///
/// 1. **Memory** — the distinct-sketch run must peak *strictly below*
///    the `IdSet` reference on the identical hierarchical sweep: the
///    sketch carries `O(1)` state per node where the exact origin set
///    pays `O(n)` at the sink.
/// 2. **Accuracy** — the estimate it buys with that memory must land
///    within [`ALGEBRA_GUARD_MAX_DISTINCT_ERR`] of the true cardinality.
/// 3. **Trajectory invariance** — both runs process identical
///    interaction counts: the aggregate changes what the sink knows,
///    never how the run unfolds.
fn algebra_guard() -> Result<String, String> {
    const N: usize = 100_000;
    const BUDGET: usize = 80_000_000;

    if !doda_bench::memory::tracking() {
        return Err("the tracking allocator is not installed".to_string());
    }
    let (exact_peak, exact) = algebra_run(N, BUDGET, AggregateKind::IdSet);
    if !exact.terminated() || !exact.fully_aggregated() {
        return Err(format!(
            "the IdSet reference must aggregate every origin within its budget, got {} \
             interactions (terminated: {})",
            exact.interactions_processed,
            exact.terminated()
        ));
    }
    let (sketch_peak, sketch) = algebra_run(N, BUDGET, AggregateKind::Distinct);
    if !sketch.terminated() || !sketch.data_conserved {
        return Err("the distinct-sketch run must terminate with data conserved".to_string());
    }
    if sketch.interactions_processed != exact.interactions_processed {
        return Err(format!(
            "the aggregate kind changed the trajectory: {} interactions under the sketch \
             vs {} under IdSet",
            sketch.interactions_processed, exact.interactions_processed
        ));
    }
    let estimate = match sketch.aggregate {
        Some(AggregateSummary::Distinct { estimate }) => estimate,
        other => return Err(format!("expected a distinct estimate, got {other:?}")),
    };
    let error = (estimate - N as f64).abs() / N as f64;
    println!(
        "algebra-guard: hierarchical Gathering vs uniform, n = {N}: id-set peak {:.1} MiB, \
         distinct-sketch peak {:.1} MiB, estimate {estimate:.0} ({:.2}% error, ceiling \
         {:.0}%), {} interactions either way",
        exact_peak as f64 / (1 << 20) as f64,
        sketch_peak as f64 / (1 << 20) as f64,
        error * 100.0,
        ALGEBRA_GUARD_MAX_DISTINCT_ERR * 100.0,
        exact.interactions_processed,
    );
    if sketch_peak >= exact_peak {
        return Err(format!(
            "the distinct sketch peaked at {sketch_peak} bytes, not strictly below the \
             IdSet reference's {exact_peak} — the O(1)-per-node claim is broken"
        ));
    }
    if error > ALGEBRA_GUARD_MAX_DISTINCT_ERR {
        return Err(format!(
            "distinct estimate {estimate:.0} is off the true {N} by {:.2}% \
             (ceiling {:.0}%)",
            error * 100.0,
            ALGEBRA_GUARD_MAX_DISTINCT_ERR * 100.0,
        ));
    }
    Ok(format!(
        "distinct sketch peaked {:.1} MiB below the id-set reference with {:.2}% estimate \
         error (ceiling {:.0}%), identical trajectories",
        (exact_peak - sketch_peak) as f64 / (1 << 20) as f64,
        error * 100.0,
        ALGEBRA_GUARD_MAX_DISTINCT_ERR * 100.0,
    ))
}

/// The fraction of lying nodes `--byzantine-guard` plants: 10% forgers,
/// the canonical working point of the detect/tolerate matrix.
const BYZANTINE_GUARD_FRACTION: f64 = 0.1;

/// The relative-error ceiling on the distinct estimate under forging.
/// Forged origins are drawn inside the population's id space, so the
/// sketch's estimate must stay near the true n; the ceiling matches the
/// honest sketch's [`ALGEBRA_GUARD_MAX_DISTINCT_ERR`].
const BYZANTINE_GUARD_MAX_DISTINCT_ERR: f64 = 0.20;

/// The throughput floor on the audited path, in engine interactions per
/// wall-clock second. Auditing pays a per-transfer receipt on top of the
/// engine; the floor is conservative for shared CI runners while still
/// failing an accidentally quadratic tally loudly.
const BYZANTINE_GUARD_MIN_IPS: f64 = 50_000.0;

/// The CI gate on the Byzantine data plane's verdicts: with 10% forgers
/// planted over uniform Gathering,
///
/// 1. **Detection** — under the exact `Count` aggregate every trial must
///    classify as `Detected`, with the evidence naming the forge
///    strategy: exact conservation exposes every forged transfer.
/// 2. **Tolerance** — under the duplicate-insensitive `Distinct` sketch
///    every trial must classify as `Tolerated`, and the estimate must
///    still land within [`BYZANTINE_GUARD_MAX_DISTINCT_ERR`] of the true
///    population (forged origins stay inside the id space).
/// 3. **Throughput** — the audited path must clear
///    [`BYZANTINE_GUARD_MIN_IPS`] across both sweeps.
fn byzantine_guard() -> Result<String, String> {
    const N: usize = 256;
    const TRIALS: usize = 16;

    let sweep = |kind| {
        Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
            .byzantine(ByzantineProfile::forge(BYZANTINE_GUARD_FRACTION))
            .n(N)
            .trials(TRIALS)
            .seed(0xD0DA)
            .parallel(false)
            .aggregate(kind)
            .run()
    };

    let t0 = Instant::now();
    let counted = sweep(AggregateKind::Count);
    let sketched = sweep(AggregateKind::Distinct);
    let secs = t0.elapsed().as_secs_f64();

    let mut detected = 0usize;
    for trial in &counted {
        match trial.verdict {
            Some(Verdict::Detected { evidence }) => {
                if evidence.strategy.label() != "forge" {
                    return Err(format!(
                        "a Count trial detected the wrong strategy: {}",
                        evidence.strategy.label()
                    ));
                }
                detected += 1;
            }
            other => {
                return Err(format!(
                    "every Count trial must detect the forgers, got verdict {other:?}"
                ))
            }
        }
    }
    println!(
        "byzantine-guard: Gathering vs uniform+forge({BYZANTINE_GUARD_FRACTION}), n = {N}: \
         {detected}/{TRIALS} trials Detected under Count, every evidence a forgery"
    );

    let mut tolerated = 0usize;
    let mut worst_error = 0.0f64;
    for trial in &sketched {
        match trial.verdict {
            Some(Verdict::Tolerated) => tolerated += 1,
            other => {
                return Err(format!(
                    "every Distinct trial must tolerate the forgers, got verdict {other:?}"
                ))
            }
        }
        let estimate = match trial.aggregate {
            Some(AggregateSummary::Distinct { estimate }) => estimate,
            other => return Err(format!("expected a distinct estimate, got {other:?}")),
        };
        worst_error = worst_error.max((estimate - N as f64).abs() / N as f64);
    }
    println!(
        "byzantine-guard: {tolerated}/{TRIALS} trials Tolerated under Distinct, worst \
         estimate error {:.2}% (ceiling {:.0}%)",
        worst_error * 100.0,
        BYZANTINE_GUARD_MAX_DISTINCT_ERR * 100.0,
    );
    if worst_error > BYZANTINE_GUARD_MAX_DISTINCT_ERR {
        return Err(format!(
            "a forged distinct estimate drifted {:.2}% off the true {N} \
             (ceiling {:.0}%)",
            worst_error * 100.0,
            BYZANTINE_GUARD_MAX_DISTINCT_ERR * 100.0,
        ));
    }

    let interactions: u64 = counted
        .iter()
        .chain(&sketched)
        .map(|r| r.interactions_processed)
        .sum();
    let throughput = interactions as f64 / secs.max(1e-9);
    println!(
        "byzantine-guard: audited {interactions} interactions in {secs:.2} s \
         ({throughput:.0} i/s, floor {BYZANTINE_GUARD_MIN_IPS:.0})"
    );
    if throughput < BYZANTINE_GUARD_MIN_IPS {
        return Err(format!(
            "audited throughput {throughput:.0} i/s is below the \
             {BYZANTINE_GUARD_MIN_IPS:.0} i/s floor"
        ));
    }
    Ok(format!(
        "10% forgers over {TRIALS} trials: {detected}/{TRIALS} Detected under Count, \
         {tolerated}/{TRIALS} Tolerated under Distinct (worst error {:.2}%), \
         {throughput:.0} i/s audited",
        worst_error * 100.0,
    ))
}

/// Writes a guard's `BENCH_guard_<name>.json` record into `out_dir`, the
/// machine-readable row behind the `--guard-summary` table and the CI
/// guard artifact.
fn write_guard_artifact(
    out_dir: &std::path::Path,
    name: &str,
    passed: bool,
    summary: &str,
) -> Result<(), String> {
    std::fs::create_dir_all(out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
    let doc = Json::Object(vec![
        ("guard".to_string(), Json::str(name)),
        ("passed".to_string(), Json::Bool(passed)),
        ("summary".to_string(), Json::str(summary)),
    ]);
    let path = out_dir.join(format!("BENCH_guard_{name}.json"));
    std::fs::write(&path, doda_bench::json::pretty(&doc))
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// A guard entry point: `Ok` carries the one-line pass summary, `Err`
/// the failure reason.
type GuardFn = fn() -> Result<String, String>;

/// Runs one guard to completion: detail lines stream as the guard runs,
/// the one-line summary (pass or fail) prints last, and the
/// `BENCH_guard_<name>.json` record lands in `out_dir`.
fn run_guard(name: &str, out_dir: &std::path::Path, guard: GuardFn) -> ExitCode {
    let (passed, summary) = match guard() {
        Ok(summary) => (true, summary),
        Err(e) => (false, e),
    };
    if passed {
        println!("{name}-guard summary: {summary}");
    } else {
        eprintln!("doda-bench: {name} guard failed: {summary}");
    }
    if let Err(e) = write_guard_artifact(out_dir, name, passed, &summary) {
        eprintln!("doda-bench: cannot record the {name} guard: {e}");
        return ExitCode::FAILURE;
    }
    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders the one-line-per-guard table over every `BENCH_guard_*.json`
/// in `dir` — the CI step that condenses a perf-smoke run into one
/// readable block. Fails if the directory holds no guard records or any
/// record reports a failure.
fn guard_summary_table(dir: &std::path::Path) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut rows: Vec<(String, bool, String)> = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
        let Some(file) = path.file_name().and_then(|f| f.to_str()) else {
            continue;
        };
        if !file.starts_with("BENCH_guard_") || !file.ends_with(".json") {
            continue;
        }
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| format!("{}: missing field: {key}", path.display()))
        };
        let name = field("guard")?
            .as_str()
            .ok_or_else(|| format!("{}: guard must be a string", path.display()))?
            .to_string();
        let passed = match field("passed")? {
            Json::Bool(b) => *b,
            _ => return Err(format!("{}: passed must be a bool", path.display())),
        };
        let summary = field("summary")?
            .as_str()
            .ok_or_else(|| format!("{}: summary must be a string", path.display()))?
            .to_string();
        rows.push((name, passed, summary));
    }
    if rows.is_empty() {
        return Err(format!(
            "{}: no BENCH_guard_*.json records found",
            dir.display()
        ));
    }
    rows.sort();
    let width = rows.iter().map(|(name, ..)| name.len()).max().unwrap_or(0);
    let mut failed = 0usize;
    for (name, passed, summary) in &rows {
        println!(
            "  {:<width$}  {}  {summary}",
            name,
            if *passed { "PASS" } else { "FAIL" },
        );
        failed += usize::from(!passed);
    }
    if failed > 0 {
        return Err(format!("{failed} guard(s) report failure"));
    }
    println!("all {} guards passed", rows.len());
    Ok(())
}

fn main() -> ExitCode {
    doda_bench::memory::mark_installed();
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("doda-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !args.validate.is_empty() {
        return match validate_files(&args.validate) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("doda-bench: validation failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some((run, baseline)) = &args.compare {
        let tolerance = args.tolerance.unwrap_or(DEFAULT_TOLERANCE_PCT);
        return match compare_files(run, baseline, tolerance) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("doda-bench: perf gate failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if args.compare_runners {
        return match compare_runners() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("doda-bench: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(dir) = &args.guard_summary {
        return match guard_summary_table(dir) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("doda-bench: guard summary failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let guards: [(&str, bool, GuardFn); 8] = [
        ("lane", args.lane_guard, lane_guard),
        ("stream", args.stream_guard, stream_guard),
        ("fault", args.fault_guard, fault_guard),
        ("round", args.round_guard, round_guard),
        ("service", args.service_guard, service_guard),
        ("scale", args.scale_guard, scale_guard),
        ("algebra", args.algebra_guard, algebra_guard),
        ("byzantine", args.byzantine_guard, byzantine_guard),
    ];
    for (name, requested, guard) in guards {
        if requested {
            return run_guard(name, &args.out_dir, guard);
        }
    }

    println!(
        "running grid '{}' ({} algorithms x {} scenarios x {} node counts, {} trials/cell, \
         {} runnable cells)",
        args.grid.name,
        args.grid.algorithms.len(),
        args.grid.scenarios.len(),
        args.grid.ns.len(),
        args.grid.trials,
        args.grid.cell_count(),
    );
    let report = run_grid(&args.grid);
    for cell in &report.results {
        println!(
            "  {:<14} {:<17} {:<12} n={:<4} completed {}/{} mean {:>10} throughput {:>12.0} i/s",
            cell.algorithm,
            cell.workload,
            cell.mode,
            cell.n,
            cell.completed,
            cell.trials,
            cell.mean_interactions
                .map_or_else(|| "-".to_string(), |m| format!("{m:.0}")),
            cell.throughput_ips,
        );
    }

    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("doda-bench: cannot create {}: {e}", args.out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = args.out_dir.join(report.file_name());
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("doda-bench: cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} cells, {:.1} s wall clock, rev {})",
        path.display(),
        report.results.len(),
        report.wall_clock_secs,
        report.git_rev,
    );
    ExitCode::SUCCESS
}
