//! Process-wide allocation tracking behind the `peak_mem_bytes` column
//! and the `--scale-guard` memory-scaling gate.
//!
//! The module itself is safe code: two atomic counters plus the hook
//! functions a `#[global_allocator]` calls on every allocation event. The
//! one `unsafe impl` lives in the `doda-bench` binary, which installs a
//! thin [`std::alloc::System`] wrapper that forwards sizes here. Library
//! consumers (unit tests, criterion targets) that never install the
//! wrapper simply read zeros: every reported peak degrades to `0` rather
//! than lying.
//!
//! The counters are process-wide on purpose — sweep workers allocate from
//! many threads, and the `O(n)` claim the scale guard enforces is about
//! the *process* high-water mark, not any single thread's.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Live heap bytes (as far as the installed allocator has reported).
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`CURRENT`] since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);
/// Set once by [`mark_installed`]; lets consumers distinguish "peak is
/// genuinely tiny" from "nothing is tracking".
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// Records an allocation of `size` bytes. Called by the tracking
/// allocator on every successful `alloc`/`alloc_zeroed`, and as the grow
/// half of `realloc`.
#[inline]
pub fn record_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

/// Records a deallocation of `size` bytes — `dealloc`, or the shrink
/// half of `realloc`.
#[inline]
pub fn record_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

/// Declares that a tracking global allocator is installed and feeding
/// [`record_alloc`] / [`record_dealloc`]. Called once at startup by the
/// `doda-bench` binary.
pub fn mark_installed() {
    INSTALLED.store(true, Ordering::Relaxed);
}

/// `true` iff a tracking allocator declared itself via
/// [`mark_installed`]; when `false`, [`peak_bytes`] is always 0 and
/// memory columns/gates must treat themselves as unavailable.
pub fn tracking() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live size and returns that
/// size, so `peak_bytes() - reset_peak()` brackets the growth of one
/// measured region.
pub fn reset_peak() -> usize {
    let current = CURRENT.load(Ordering::Relaxed);
    PEAK.store(current, Ordering::Relaxed);
    current
}

/// The high-water mark of live heap bytes since the last
/// [`reset_peak`] (0 when no tracking allocator is installed).
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hooks are exercised directly — the lib test binary has no
    /// tracking allocator installed, so the counters move only when we
    /// move them.
    #[test]
    fn hooks_move_the_counters_and_reset_brackets_regions() {
        let floor = reset_peak();
        record_alloc(1_000);
        record_alloc(500);
        record_dealloc(500);
        assert!(peak_bytes() >= floor + 1_500, "peak tracks the high water");
        let live = reset_peak();
        assert_eq!(peak_bytes(), live, "reset pins peak to the live size");
        record_dealloc(1_000);
    }
}
