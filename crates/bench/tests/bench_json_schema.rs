//! Golden-file and round-trip tests for the `BENCH_*.json` schema.

use doda_bench::json::Json;
use doda_bench::perf::{run_grid, validate_report, PerfGrid, SCHEMA_VERSION};

/// The committed perf-trajectory baseline at the repository root must keep
/// parsing and satisfying the schema the validator enforces — the golden
/// file every future PR's `doda-bench --baseline` run is compared against.
#[test]
fn committed_baseline_matches_the_schema() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_baseline.json");
    let text = std::fs::read_to_string(path).expect("BENCH_baseline.json is committed");
    let doc = Json::parse(&text).expect("baseline parses as JSON");
    validate_report(&doc).expect("baseline passes the schema check");

    assert_eq!(
        doc.get("schema_version").and_then(Json::as_f64),
        Some(SCHEMA_VERSION as f64)
    );
    assert_eq!(doc.get("scenario").and_then(Json::as_str), Some("baseline"));
    let results = doc.get("results").and_then(Json::as_array).unwrap();
    // The pinned grid: 3 algorithms x 10 scenarios x 3 node counts, minus
    // the skipped WaitingGreedy x adaptive columns, plus the 3 large-n
    // scale cells (schema v6).
    assert_eq!(results.len(), PerfGrid::baseline().cell_count());
    let declared: Vec<f64> = PerfGrid::baseline()
        .declared_ns()
        .into_iter()
        .map(|n| n as f64)
        .collect();
    let mut modes_seen = [false; 5];
    let mut survivor_completions = 0.0;
    for cell in results {
        let n = cell.get("n").and_then(Json::as_f64).unwrap();
        assert!(declared.contains(&n), "unexpected n = {n}");
        let throughput = cell.get("throughput_ips").and_then(Json::as_f64).unwrap();
        assert!(throughput > 0.0, "throughput must be positive");
        // Schema v6: the peak-heap column must be present; the committed
        // baseline is emitted by doda-bench, whose tracking allocator
        // reports real (positive) peaks.
        let peak = cell.get("peak_mem_bytes").and_then(Json::as_f64).unwrap();
        assert!(peak > 0.0, "peak_mem_bytes must be positive, got {peak}");
        match cell.get("mode").and_then(Json::as_str).unwrap() {
            "streamed" => modes_seen[0] = true,
            "materialized" => modes_seen[1] = true,
            "lanes" => modes_seen[2] = true,
            "rounds" => modes_seen[3] = true,
            "hierarchical" => modes_seen[4] = true,
            other => panic!("unexpected mode {other}"),
        }
        // Schema v3: the completion split must add up, and fault-free
        // cells can never report survivor-only completions.
        let completed = cell.get("completed").and_then(Json::as_f64).unwrap();
        let aggregated = cell.get("aggregated").and_then(Json::as_f64).unwrap();
        let survivors = cell
            .get("aggregated_survivors")
            .and_then(Json::as_f64)
            .unwrap();
        assert_eq!(aggregated + survivors, completed);
        let fault_profile = cell.get("fault_profile").and_then(Json::as_str).unwrap();
        if fault_profile == "none" {
            assert_eq!(survivors, 0.0);
        }
        survivor_completions += survivors;
    }
    assert!(
        modes_seen.iter().all(|&seen| seen),
        "the baseline must cover all five execution tiers, saw {modes_seen:?} \
         for (streamed, materialized, lanes, rounds, hierarchical)"
    );
    assert!(
        survivor_completions > 0.0,
        "the baseline's faulted cells must record AggregatedSurvivors outcomes"
    );
    // The adversarial scenarios and both pinned fault profiles must be
    // present in the trajectory.
    for scenario in ["oblivious-trap", "adaptive-isolator"] {
        assert!(
            results
                .iter()
                .any(|c| c.get("workload").and_then(Json::as_str) == Some(scenario)),
            "baseline is missing the {scenario} scenario"
        );
    }
    for profile in ["crash(0.002)", "churn(0.002,0.004)"] {
        assert!(
            results
                .iter()
                .any(|c| c.get("fault_profile").and_then(Json::as_str) == Some(profile)),
            "baseline is missing the {profile} fault profile"
        );
    }
}

/// A freshly emitted report must round-trip through the parser and pass
/// the same validation CI applies to the uploaded artifact.
#[test]
fn emitted_smoke_report_round_trips_and_validates() {
    let report = run_grid(&PerfGrid::smoke());
    let text = report.to_json();
    let doc = Json::parse(&text).expect("emitted JSON parses");
    validate_report(&doc).expect("emitted JSON validates");
    assert_eq!(
        doc.get("seed").and_then(Json::as_f64),
        Some(report.seed as f64)
    );
    assert_eq!(
        doc.get("results").and_then(Json::as_array).map(<[_]>::len),
        Some(report.results.len())
    );
}
