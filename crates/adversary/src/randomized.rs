//! The randomized adversary.
//!
//! "The randomized adversary constructs the sequence of interactions by
//! picking a couple of nodes among all possible couples, uniformly at
//! random" (Section 4). Every interaction therefore occurs with probability
//! `2 / (n(n−1))`, independently of the past — the setting of Theorems
//! 7–11.

use doda_core::sequence::{AdversaryView, InteractionSource};
use doda_core::{Interaction, InteractionSequence, Time};
use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

/// The uniform randomized adversary over `n ≥ 2` nodes.
///
/// The adversary is an infinite [`InteractionSource`]; it can also
/// materialise a finite prefix of its sequence with
/// [`RandomizedAdversary::generate_sequence`], which is what the
/// knowledge-based algorithms (Waiting Greedy, offline optimal) need in
/// order to build their oracles.
#[derive(Debug, Clone)]
pub struct RandomizedAdversary {
    n: usize,
    rng: DodaRng,
}

impl RandomizedAdversary {
    /// Creates the adversary for `n` nodes with a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no pair of distinct nodes exists).
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(
            n >= 2,
            "the randomized adversary needs at least 2 nodes, got {n}"
        );
        RandomizedAdversary {
            n,
            rng: seeded_rng(seed),
        }
    }

    /// Draws one uniformly random pair of distinct nodes.
    pub fn draw(&mut self) -> Interaction {
        let a = self.rng.gen_range(0..self.n);
        let mut b = self.rng.gen_range(0..self.n - 1);
        if b >= a {
            b += 1;
        }
        Interaction::new(NodeId(a), NodeId(b))
    }

    /// Materialises a finite sequence of `len` uniformly random
    /// interactions — shorthand for [`InteractionSequence::materialize`]
    /// over this source.
    pub fn generate_sequence(&mut self, len: usize) -> InteractionSequence {
        InteractionSequence::materialize(self, len)
    }

    /// A generous default horizon for materialised sequences: `8·n²`
    /// interactions, comfortably above the `O(n² log n)`-with-small-constant
    /// needs of every algorithm studied for moderate `n` (the engine reports
    /// non-termination if it ever falls short, so experiments can detect and
    /// enlarge it).
    pub fn default_horizon(n: usize) -> usize {
        8 * n * n
    }
}

impl InteractionSource for RandomizedAdversary {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        Some(self.draw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_tiny_graphs() {
        let _ = RandomizedAdversary::new(1, 0);
    }

    #[test]
    fn draws_are_valid_pairs() {
        let mut adv = RandomizedAdversary::new(5, 7);
        for _ in 0..1000 {
            let i = adv.draw();
            assert!(i.min().index() < 5 && i.max().index() < 5);
            assert_ne!(i.min(), i.max());
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = RandomizedAdversary::new(6, 99);
        let mut b = RandomizedAdversary::new(6, 99);
        assert_eq!(a.generate_sequence(50), b.generate_sequence(50));
        let mut c = RandomizedAdversary::new(6, 100);
        assert_ne!(a.generate_sequence(50), c.generate_sequence(50));
    }

    #[test]
    fn pairs_are_roughly_uniform() {
        // chi-square-ish sanity check: all 10 pairs of 5 nodes appear with
        // frequency within 20% of the expected 1/10 over 50k draws.
        let mut adv = RandomizedAdversary::new(5, 2024);
        let mut counts: HashMap<Interaction, u64> = HashMap::new();
        let draws = 50_000;
        for _ in 0..draws {
            *counts.entry(adv.draw()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 10);
        let expected = draws as f64 / 10.0;
        for (pair, count) in counts {
            let dev = (count as f64 - expected).abs() / expected;
            assert!(dev < 0.2, "pair {pair} frequency off by {dev:.3}");
        }
    }

    #[test]
    fn source_is_infinite() {
        let mut adv = RandomizedAdversary::new(4, 1);
        let owns = vec![true; 4];
        let view = AdversaryView {
            owns_data: &owns,
            sink: NodeId(0),
        };
        for t in 0..100 {
            assert!(adv.next_interaction(t, &view).is_some());
        }
        assert_eq!(adv.node_count(), 4);
    }

    #[test]
    fn generated_sequence_has_requested_length() {
        let mut adv = RandomizedAdversary::new(4, 3);
        let seq = adv.generate_sequence(123);
        assert_eq!(seq.len(), 123);
        assert_eq!(seq.node_count(), 4);
        assert_eq!(RandomizedAdversary::default_horizon(10), 800);
    }
}
