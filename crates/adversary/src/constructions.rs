//! The adversarial constructions used in the impossibility proofs.
//!
//! * [`AdaptiveTrap`] — Theorem 1: a 3-node online adaptive adversary under
//!   which **no** DODA algorithm terminates, while convergecasts remain
//!   possible forever (`cost = ∞`).
//! * [`ObliviousTrap`] — Theorem 2: an oblivious adversary defeating
//!   oblivious (randomized) algorithms w.h.p.: a star prefix that lures
//!   some node into transmitting, followed by a ring pattern in which the
//!   surviving data can never reach the sink.
//! * [`CycleTrap`] — Theorem 3: a 4-node online adaptive adversary showing
//!   that knowing the underlying graph `G̅` (here a 4-cycle) is not enough.

use doda_core::sequence::{AdversaryView, InteractionSource};
use doda_core::{Interaction, InteractionSequence, Time};
use doda_graph::NodeId;

use crate::oblivious::ObliviousAdversary;

/// The 3-node adaptive adversary of Theorem 1.
///
/// Nodes: sink `s = 0`, `a = 1`, `b = 2`. The adversary probes with the
/// interactions `{a, b}`, `{b, s}` in turn; as soon as the algorithm lets
/// any node transmit, it locks into a repeating pattern under which the
/// remaining data owner never meets the sink, so the algorithm can never
/// terminate — while a fresh convergecast remains possible in every
/// repeating pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveTrap {
    mode: TrapMode,
    /// Ownership snapshot taken when the previous interaction was issued,
    /// used to detect which node transmitted.
    prev: Option<(Interaction, Vec<bool>)>,
    /// Position inside the current repeating pattern.
    phase: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrapMode {
    /// Probing: alternate `{a, b}` and `{b, s}` until someone transmits.
    Probe,
    /// `a` transmitted to `b`: repeat `{a, s}`, `{a, b}` — `b` never meets `s`.
    LockAfterATransmitted,
    /// `b` transmitted to `a`: repeat `{b, s}`, `{a, b}` — `a` never meets `s`.
    LockAfterBTransmittedToA,
    /// `b` transmitted to `s`: repeat `{a, b}`, `{b, s}` — `a` never meets `s`.
    LockAfterBTransmittedToSink,
}

impl AdaptiveTrap {
    /// The sink used by the construction.
    pub const SINK: NodeId = NodeId(0);
    const A: NodeId = NodeId(1);
    const B: NodeId = NodeId(2);

    /// Creates the trap (always over exactly 3 nodes).
    pub fn new() -> Self {
        AdaptiveTrap {
            mode: TrapMode::Probe,
            prev: None,
            phase: 0,
        }
    }

    fn update_mode(&mut self, view: &AdversaryView<'_>) {
        let Some((prev_interaction, prev_owns)) = self.prev.take() else {
            return;
        };
        let lost = |v: NodeId| prev_owns[v.index()] && !view.owns(v);
        if prev_interaction == Interaction::new(Self::A, Self::B) {
            if lost(Self::A) {
                self.mode = TrapMode::LockAfterATransmitted;
                self.phase = 0;
            } else if lost(Self::B) {
                self.mode = TrapMode::LockAfterBTransmittedToA;
                self.phase = 0;
            }
        } else if prev_interaction == Interaction::new(Self::B, Self::SINK) && lost(Self::B) {
            self.mode = TrapMode::LockAfterBTransmittedToSink;
            self.phase = 0;
        }
    }
}

impl Default for AdaptiveTrap {
    fn default() -> Self {
        Self::new()
    }
}

impl InteractionSource for AdaptiveTrap {
    fn node_count(&self) -> usize {
        3
    }

    fn next_interaction(&mut self, _t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        self.update_mode(view);
        let pattern: &[Interaction] = match self.mode {
            TrapMode::Probe => &[
                Interaction::new(Self::A, Self::B),
                Interaction::new(Self::B, Self::SINK),
            ],
            TrapMode::LockAfterATransmitted => &[
                Interaction::new(Self::A, Self::SINK),
                Interaction::new(Self::A, Self::B),
            ],
            TrapMode::LockAfterBTransmittedToA => &[
                Interaction::new(Self::B, Self::SINK),
                Interaction::new(Self::A, Self::B),
            ],
            TrapMode::LockAfterBTransmittedToSink => &[
                Interaction::new(Self::A, Self::B),
                Interaction::new(Self::B, Self::SINK),
            ],
        };
        let interaction = pattern[self.phase % pattern.len()];
        self.phase += 1;
        self.prev = Some((interaction, view.owns_data.to_vec()));
        Some(interaction)
    }
}

/// The 4-node adaptive adversary of Theorem 3 (underlying graph = 4-cycle).
///
/// Nodes: sink `s = 0`, `u1 = 1`, `u2 = 2`, `u3 = 3`; the underlying graph
/// is the cycle `s–u1–u2–u3–s`. The adversary repeats the round
/// `({u1,s}, {u3,s}, {u2,u1}, {u2,u3})`; as soon as `u2` transmits towards
/// `u1` (resp. `u3`) it locks into a loop in which the receiver of `u2`'s
/// data never meets the sink. All interactions stay within the cycle, so
/// knowing `G̅` does not help, and convergecasts remain possible forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleTrap {
    mode: CycleMode,
    prev: Option<(Interaction, Vec<bool>)>,
    phase: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CycleMode {
    Round,
    /// `u2` transmitted to `u1`: repeat `({u1,u2}, {u2,u3}, {u3,s})`.
    LockedTowardU1,
    /// `u2` transmitted to `u3`: repeat `({u3,u2}, {u2,u1}, {u1,s})`.
    LockedTowardU3,
}

impl CycleTrap {
    /// The sink used by the construction.
    pub const SINK: NodeId = NodeId(0);
    const U1: NodeId = NodeId(1);
    const U2: NodeId = NodeId(2);
    const U3: NodeId = NodeId(3);

    /// Creates the trap (always over exactly 4 nodes).
    pub fn new() -> Self {
        CycleTrap {
            mode: CycleMode::Round,
            prev: None,
            phase: 0,
        }
    }

    /// The underlying graph of every sequence this adversary can produce:
    /// the 4-cycle `s–u1–u2–u3–s`.
    pub fn underlying_graph() -> doda_graph::AdjacencyGraph {
        let mut g = doda_graph::AdjacencyGraph::new(4);
        g.add_edge(Self::SINK, Self::U1);
        g.add_edge(Self::U1, Self::U2);
        g.add_edge(Self::U2, Self::U3);
        g.add_edge(Self::U3, Self::SINK);
        g
    }

    fn update_mode(&mut self, view: &AdversaryView<'_>) {
        let Some((prev_interaction, prev_owns)) = self.prev.take() else {
            return;
        };
        if self.mode != CycleMode::Round {
            return;
        }
        let u2_lost = prev_owns[Self::U2.index()] && !view.owns(Self::U2);
        if !u2_lost {
            return;
        }
        if prev_interaction == Interaction::new(Self::U2, Self::U1) {
            self.mode = CycleMode::LockedTowardU1;
            self.phase = 0;
        } else if prev_interaction == Interaction::new(Self::U2, Self::U3) {
            self.mode = CycleMode::LockedTowardU3;
            self.phase = 0;
        }
    }
}

impl Default for CycleTrap {
    fn default() -> Self {
        Self::new()
    }
}

impl InteractionSource for CycleTrap {
    fn node_count(&self) -> usize {
        4
    }

    fn next_interaction(&mut self, _t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        self.update_mode(view);
        let pattern: &[Interaction] = match self.mode {
            CycleMode::Round => &[
                Interaction::new(Self::U1, Self::SINK),
                Interaction::new(Self::U3, Self::SINK),
                Interaction::new(Self::U2, Self::U1),
                Interaction::new(Self::U2, Self::U3),
            ],
            CycleMode::LockedTowardU1 => &[
                Interaction::new(Self::U1, Self::U2),
                Interaction::new(Self::U2, Self::U3),
                Interaction::new(Self::U3, Self::SINK),
            ],
            CycleMode::LockedTowardU3 => &[
                Interaction::new(Self::U3, Self::U2),
                Interaction::new(Self::U2, Self::U1),
                Interaction::new(Self::U1, Self::SINK),
            ],
        };
        let interaction = pattern[self.phase % pattern.len()];
        self.phase += 1;
        self.prev = Some((interaction, view.owns_data.to_vec()));
        Some(interaction)
    }
}

/// The oblivious construction of Theorem 2: a star prefix `I^{l0}`
/// (interactions `{u_i, s}` in round-robin order) followed by the ring
/// pattern `I'` repeated forever, where `I'` walks the ring
/// `u_0, u_1, …, u_{n-2}` and contacts the sink only through `u_{d-1}`.
///
/// Any algorithm that transmitted during the prefix has created a "dead"
/// relay on the ring, and the data of `u_d` can then never reach the sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObliviousTrap {
    n: usize,
    l0: usize,
    d: usize,
}

impl ObliviousTrap {
    /// The sink used by the construction.
    pub const SINK: NodeId = NodeId(0);

    /// Creates the construction over `n ≥ 4` nodes: the star prefix has
    /// length `l0` and the protected node is `u_d` (`1 ≤ d ≤ n−2`,
    /// expressed as the ring index of the construction).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `d` is not a valid ring index (`0 < d < n−1`).
    pub fn new(n: usize, l0: usize, d: usize) -> Self {
        assert!(n >= 4, "the construction needs at least 4 nodes, got {n}");
        assert!(
            d > 0 && d < n - 1,
            "ring index d={d} must satisfy 0 < d < n-1"
        );
        ObliviousTrap { n, l0, d }
    }

    /// The construction tuned for the deterministic Gathering/Waiting
    /// algorithms: the very first star interaction makes Gathering transmit
    /// (`l0 = 1`), and `u_2` is a node that certainly still owns data.
    pub fn for_greedy_algorithms(n: usize) -> Self {
        ObliviousTrap::new(n, 1, 2)
    }

    /// Ring node `u_i` (ids `1..n-1` in round-robin, sink excluded).
    fn ring_node(&self, i: usize) -> NodeId {
        NodeId(1 + i % (self.n - 1))
    }

    /// The star prefix `I^{l0}`: interaction `i` is `{u_{i mod (n−1)}, s}`.
    pub fn star_prefix(&self) -> InteractionSequence {
        let mut seq = InteractionSequence::new(self.n);
        for i in 0..self.l0 {
            seq.push(Interaction::new(self.ring_node(i), Self::SINK));
        }
        seq
    }

    /// The repeated pattern `I'` of length `n − 1`.
    pub fn ring_pattern(&self) -> InteractionSequence {
        let mut seq = InteractionSequence::new(self.n);
        for i in 0..(self.n - 1) {
            if i == (self.d + self.n - 2) % (self.n - 1) {
                // Position d − 1 (mod n−1): the only contact with the sink.
                seq.push(Interaction::new(self.ring_node(i), Self::SINK));
            } else {
                seq.push(Interaction::new(self.ring_node(i), self.ring_node(i + 1)));
            }
        }
        seq
    }

    /// The full oblivious adversary: prefix followed by the ring pattern
    /// repeated forever.
    pub fn adversary(&self) -> ObliviousAdversary {
        ObliviousAdversary::with_cycle(self.star_prefix(), self.ring_pattern())
    }

    /// A finite materialisation of the first `len` interactions (useful for
    /// cost computations, which need a concrete sequence).
    pub fn materialize(&self, len: usize) -> InteractionSequence {
        self.adversary().materialize(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_core::prelude::*;

    fn run_trap<S, D>(
        source: &mut S,
        algo: &mut D,
        sink: NodeId,
        horizon: u64,
    ) -> ExecutionOutcome<IdSet>
    where
        S: InteractionSource + ?Sized,
        D: DodaAlgorithm + ?Sized,
    {
        engine::run_with_id_sets(
            algo,
            source,
            sink,
            EngineConfig::with_max_interactions(horizon),
        )
        .unwrap()
    }

    #[test]
    fn adaptive_trap_defeats_waiting_gathering_and_offline_heuristics() {
        // Theorem 1 claims *every* algorithm is defeated; check the paper's
        // concrete knowledge-free algorithms and a greedy variant.
        let horizon = 5_000;
        for algo in [
            Box::new(Waiting::new()) as Box<dyn DodaAlgorithm>,
            Box::new(Gathering::new()) as Box<dyn DodaAlgorithm>,
        ] {
            let mut algo = algo;
            let mut trap = AdaptiveTrap::new();
            let outcome = run_trap(&mut trap, algo.as_mut(), AdaptiveTrap::SINK, horizon);
            assert!(
                !outcome.terminated(),
                "{} should never terminate under the adaptive trap",
                algo.name()
            );
            assert_eq!(outcome.interactions_processed, horizon);
        }
    }

    #[test]
    fn adaptive_trap_keeps_convergecasts_possible() {
        // Materialise what the trap actually played against Gathering and
        // verify that optimal convergecasts kept being possible (cost grows
        // with the horizon — the signature of cost = ∞).
        let mut algo = Gathering::new();
        let mut trap = AdaptiveTrap::new();
        let horizon = 400;
        let _ = run_trap(&mut trap, &mut algo, AdaptiveTrap::SINK, horizon);
        // Replay the same decisions to record the sequence: the trap is
        // deterministic given the algorithm, so re-running reproduces it.
        let mut algo2 = Gathering::new();
        let mut trap2 = AdaptiveTrap::new();
        let outcome = run_trap(&mut trap2, &mut algo2, AdaptiveTrap::SINK, horizon);
        assert!(!outcome.terminated());
        // Re-materialise the trap's sequence by driving it with a fresh
        // Gathering run (ownership evolves identically).
        let mut trap3 = AdaptiveTrap::new();
        let mut algo3 = Gathering::new();
        let mut seq = InteractionSequence::new(3);
        {
            // Manual engine-like loop that also records the interactions.
            use doda_core::sequence::AdversaryView;
            let mut state_owns = vec![true, true, true];
            for t in 0..horizon {
                let view = AdversaryView {
                    owns_data: &state_owns,
                    sink: AdaptiveTrap::SINK,
                };
                let interaction = trap3.next_interaction(t, &view).unwrap();
                seq.push(interaction);
                let ctx = InteractionContext {
                    time: t,
                    interaction,
                    min_owns_data: state_owns[interaction.min().index()],
                    max_owns_data: state_owns[interaction.max().index()],
                    sink: AdaptiveTrap::SINK,
                };
                if let Decision::Transmit { sender, receiver } = algo3.decide(&ctx) {
                    if ctx.both_own_data() && sender != AdaptiveTrap::SINK {
                        state_owns[sender.index()] = false;
                        let _ = receiver;
                    }
                }
            }
        }
        let convergecasts =
            convergecast::successive_convergecast_times(&seq, AdaptiveTrap::SINK, 50);
        assert!(
            convergecasts.len() >= 50,
            "convergecasts should remain possible throughout (got {})",
            convergecasts.len()
        );
    }

    #[test]
    fn cycle_trap_defeats_graph_aware_spanning_tree() {
        // Theorem 3: even knowing G̅ (the 4-cycle), aggregation fails.
        let horizon = 5_000;
        let underlying = CycleTrap::underlying_graph();
        let mut algo =
            SpanningTreeAggregation::from_underlying_graph(&underlying, CycleTrap::SINK).unwrap();
        let mut trap = CycleTrap::new();
        let outcome = run_trap(&mut trap, &mut algo, CycleTrap::SINK, horizon);
        assert!(!outcome.terminated());

        // The knowledge-free algorithms fare no better.
        let mut gathering = Gathering::new();
        let mut trap = CycleTrap::new();
        let outcome = run_trap(&mut trap, &mut gathering, CycleTrap::SINK, horizon);
        assert!(!outcome.terminated());
    }

    #[test]
    fn cycle_trap_only_uses_cycle_edges() {
        let mut trap = CycleTrap::new();
        let mut algo = Gathering::new();
        // Drive the trap and collect the interactions it plays.
        let mut state_owns = vec![true; 4];
        let underlying = CycleTrap::underlying_graph();
        for t in 0..200 {
            let view = doda_core::sequence::AdversaryView {
                owns_data: &state_owns,
                sink: CycleTrap::SINK,
            };
            let interaction = trap.next_interaction(t, &view).unwrap();
            assert!(
                underlying.has_edge(interaction.min(), interaction.max()),
                "interaction {interaction} leaves the declared underlying graph"
            );
            let ctx = InteractionContext {
                time: t,
                interaction,
                min_owns_data: state_owns[interaction.min().index()],
                max_owns_data: state_owns[interaction.max().index()],
                sink: CycleTrap::SINK,
            };
            if let Decision::Transmit { sender, .. } = algo.decide(&ctx) {
                if ctx.both_own_data() && sender != CycleTrap::SINK {
                    state_owns[sender.index()] = false;
                }
            }
        }
    }

    #[test]
    fn oblivious_trap_sequence_structure() {
        let trap = ObliviousTrap::new(5, 3, 2);
        let prefix = trap.star_prefix();
        assert_eq!(prefix.len(), 3);
        // Every prefix interaction involves the sink.
        for ti in prefix.iter() {
            assert!(ti.interaction.involves(ObliviousTrap::SINK));
        }
        let pattern = trap.ring_pattern();
        assert_eq!(pattern.len(), 4);
        // Exactly one pattern interaction involves the sink.
        let sink_contacts = pattern
            .iter()
            .filter(|ti| ti.interaction.involves(ObliviousTrap::SINK))
            .count();
        assert_eq!(sink_contacts, 1);
    }

    #[test]
    fn oblivious_trap_defeats_gathering_and_waiting() {
        let horizon = 20_000;
        let trap = ObliviousTrap::for_greedy_algorithms(8);
        for algo in [
            Box::new(Gathering::new()) as Box<dyn DodaAlgorithm>,
            Box::new(Waiting::new()) as Box<dyn DodaAlgorithm>,
        ] {
            let mut algo = algo;
            let mut adv = trap.adversary();
            let outcome = run_trap(&mut adv, algo.as_mut(), ObliviousTrap::SINK, horizon);
            assert!(
                !outcome.terminated(),
                "{} should not terminate under the oblivious trap",
                algo.name()
            );
        }
    }

    #[test]
    fn oblivious_trap_keeps_convergecasts_possible() {
        let trap = ObliviousTrap::for_greedy_algorithms(6);
        let seq = trap.materialize(2_000);
        let convergecasts =
            convergecast::successive_convergecast_times(&seq, ObliviousTrap::SINK, 20);
        assert!(
            convergecasts.len() >= 20,
            "the trap sequence must keep admitting convergecasts, got {}",
            convergecasts.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least 4 nodes")]
    fn oblivious_trap_rejects_small_n() {
        let _ = ObliviousTrap::new(3, 1, 1);
    }

    #[test]
    #[should_panic(expected = "must satisfy")]
    fn oblivious_trap_rejects_bad_d() {
        let _ = ObliviousTrap::new(5, 1, 0);
    }
}
