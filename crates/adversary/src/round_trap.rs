//! Round-level adversarial constructions.
//!
//! In the round model the adversary commits a whole matching per round,
//! which opens a starvation strategy unavailable step-by-step: schedule a
//! *maximal* matching over everyone **except the sink**, every round. All
//! non-sink nodes stay busy with each other, the sink is never matched,
//! and no algorithm — knowledge or not — can ever deliver a datum.
//! [`RoundIsolator`] is that trap.

use doda_core::round::{Matching, RoundSource};
use doda_core::sequence::AdversaryView;
use doda_core::{Interaction, Time};
use doda_graph::NodeId;

/// The round-level trap that keeps the sink unmatched.
///
/// Every round pairs the non-sink nodes consecutively in id order — a
/// maximal matching of the sink-free complete graph (with odd non-sink
/// count, one node also sits out). The sink never appears in any round,
/// so *no* algorithm can complete: `Waiting` never transmits at all, and
/// aggregating strategies (`Gathering`) drain the non-sink population into
/// a single owner that is then stuck forever.
///
/// The strategy is deterministic, seed-independent and **ownership**-
/// oblivious — the matching never depends on who still owns data — but it
/// does read the *sink* off the adversary view to know whom to isolate.
/// Materialising the flattened stream
/// ([`doda_core::InteractionSequence::materialize`]) drives the source
/// with the convention-fixed sink node 0, so the materialised trap
/// isolates node 0: faithful to every execution that uses sink 0 (the
/// whole sweep stack and scenario registry do), but an execution against
/// a different sink must drive the trap live rather than through a
/// materialised sequence.
///
/// This is the round-model sibling of
/// [`crate::adaptive::CrashAwareIsolator`]: under a fault plan layered on
/// the flattened stream, every datum's fate is decided by faults, never by
/// a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundIsolator {
    n: usize,
}

impl RoundIsolator {
    /// Creates the adversary over `n ≥ 3` nodes (with fewer, no sink-free
    /// pair exists and every round would be empty).
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 3, "the round isolator needs at least 3 nodes, got {n}");
        RoundIsolator { n }
    }
}

impl RoundSource for RoundIsolator {
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_round(&mut self, _round: Time, view: &AdversaryView<'_>, out: &mut Matching) -> bool {
        let mut pending: Option<NodeId> = None;
        for i in 0..self.n {
            let v = NodeId(i);
            if v == view.sink {
                continue;
            }
            match pending.take() {
                None => pending = Some(v),
                Some(a) => out.push(Interaction::new(a, v)),
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_core::prelude::*;
    use doda_core::round::FlattenedRounds;

    #[test]
    fn every_round_is_a_maximal_sink_free_matching() {
        for (n, sink) in [(5usize, 0usize), (8, 3), (3, 2)] {
            let mut trap = RoundIsolator::new(n);
            let owns = vec![true; n];
            let view = AdversaryView {
                owns_data: &owns,
                sink: NodeId(sink),
            };
            let mut out = Matching::new(n);
            for round in 0..4u64 {
                out.reset(n);
                assert!(trap.next_round(round, &view, &mut out));
                assert_eq!(out.len(), (n - 1) / 2, "n={n}");
                assert!(!out.matched(NodeId(sink)), "sink matched at n={n}");
            }
        }
    }

    #[test]
    fn round_isolator_starves_every_algorithm() {
        let n = 12;
        for use_gathering in [false, true] {
            let mut engine: Engine<IdSet> = Engine::new();
            let mut waiting = Waiting::new();
            let mut gathering = Gathering::new();
            let algorithm: &mut dyn DodaAlgorithm = if use_gathering {
                &mut gathering
            } else {
                &mut waiting
            };
            let stats = engine
                .run_rounds(
                    algorithm,
                    &mut RoundIsolator::new(n),
                    NodeId(0),
                    IdSet::singleton,
                    EngineConfig::sweep(20_000),
                    &mut DiscardTransmissions,
                )
                .unwrap();
            assert!(!stats.run.terminated());
            assert_eq!(stats.run.interactions_processed, 20_000);
            // The sink never receives anything.
            assert_eq!(engine.state().data_of(NodeId(0)).unwrap().len(), 1);
        }
    }

    #[test]
    fn flattened_round_isolator_starves_knowledge_algorithms_too() {
        // Materialise the flattened trap and run the meetTime-based
        // WaitingGreedy over it: the oracle reports Never for every node,
        // and the execution still starves.
        let n = 9;
        let seq = InteractionSequence::materialize(
            &mut FlattenedRounds::new(RoundIsolator::new(n)),
            2_000,
        );
        assert_eq!(seq.len(), 2_000);
        for v in 1..n {
            assert!(seq.meeting_times(NodeId(0), NodeId(v)).is_empty());
        }
        let outcome = engine::run_with_id_sets(
            &mut Waiting::new(),
            &mut seq.stream(false),
            NodeId(0),
            EngineConfig::sweep(2_000),
        )
        .unwrap();
        assert!(!outcome.terminated());
        assert_eq!(outcome.transmission_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn tiny_graphs_are_rejected() {
        let _ = RoundIsolator::new(2);
    }
}
