//! The oblivious adversary.
//!
//! The oblivious adversary "knows the algorithm's code, and must construct
//! the sequence of interactions before the execution starts" (Section 2.2).
//! It is modelled by replaying a pre-committed [`InteractionSequence`],
//! optionally followed by cycling a committed suffix forever (the shape of
//! every construction in the paper: a finite prefix followed by a pattern
//! repeated "infinitely often").

use doda_core::sequence::{AdversaryView, InteractionSource};
use doda_core::{Interaction, InteractionSequence, Time};

/// An oblivious adversary: a fixed prefix, then (optionally) a suffix
/// pattern repeated forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObliviousAdversary {
    prefix: InteractionSequence,
    cycle: Option<InteractionSequence>,
}

impl ObliviousAdversary {
    /// An adversary that plays `sequence` once and then stops.
    pub fn replay(sequence: InteractionSequence) -> Self {
        ObliviousAdversary {
            prefix: sequence,
            cycle: None,
        }
    }

    /// An adversary that plays `prefix` once and then repeats `cycle` forever.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ or if `cycle` is empty.
    pub fn with_cycle(prefix: InteractionSequence, cycle: InteractionSequence) -> Self {
        assert_eq!(
            prefix.node_count(),
            cycle.node_count(),
            "prefix and cycle must cover the same node set"
        );
        assert!(!cycle.is_empty(), "the repeated pattern must be non-empty");
        ObliviousAdversary {
            prefix,
            cycle: Some(cycle),
        }
    }

    /// Materialises the first `len` interactions of this adversary's
    /// (possibly infinite) sequence.
    pub fn materialize(&self, len: usize) -> InteractionSequence {
        let mut seq = InteractionSequence::new(self.prefix.node_count());
        for t in 0..len {
            match self.interaction_at(t as Time) {
                Some(i) => seq.push(i),
                None => break,
            }
        }
        seq
    }

    fn interaction_at(&self, t: Time) -> Option<Interaction> {
        let prefix_len = self.prefix.len() as Time;
        if t < prefix_len {
            return self.prefix.get(t);
        }
        match &self.cycle {
            None => None,
            Some(cycle) => {
                let idx = (t - prefix_len) % cycle.len() as Time;
                cycle.get(idx)
            }
        }
    }
}

impl InteractionSource for ObliviousAdversary {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.prefix.node_count()
    }

    fn next_interaction(&mut self, t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        self.interaction_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_graph::NodeId;

    fn view_all(owns: &[bool]) -> AdversaryView<'_> {
        AdversaryView {
            owns_data: owns,
            sink: NodeId(0),
        }
    }

    #[test]
    fn replay_is_finite() {
        let seq = InteractionSequence::from_pairs(3, vec![(0, 1), (1, 2)]);
        let mut adv = ObliviousAdversary::replay(seq.clone());
        let owns = vec![true; 3];
        assert_eq!(adv.node_count(), 3);
        assert_eq!(adv.next_interaction(0, &view_all(&owns)), seq.get(0));
        assert_eq!(adv.next_interaction(1, &view_all(&owns)), seq.get(1));
        assert_eq!(adv.next_interaction(2, &view_all(&owns)), None);
    }

    #[test]
    fn cycle_repeats_forever() {
        let prefix = InteractionSequence::from_pairs(3, vec![(0, 1)]);
        let cycle = InteractionSequence::from_pairs(3, vec![(1, 2), (0, 2)]);
        let mut adv = ObliviousAdversary::with_cycle(prefix, cycle);
        let owns = vec![true; 3];
        assert_eq!(
            adv.next_interaction(0, &view_all(&owns)),
            Some(Interaction::new(NodeId(0), NodeId(1)))
        );
        assert_eq!(
            adv.next_interaction(1, &view_all(&owns)),
            Some(Interaction::new(NodeId(1), NodeId(2)))
        );
        assert_eq!(
            adv.next_interaction(2, &view_all(&owns)),
            Some(Interaction::new(NodeId(0), NodeId(2)))
        );
        assert_eq!(
            adv.next_interaction(1001, &view_all(&owns)),
            Some(Interaction::new(NodeId(1), NodeId(2)))
        );
    }

    #[test]
    fn materialize_prefix_plus_cycle() {
        let prefix = InteractionSequence::from_pairs(3, vec![(0, 1)]);
        let cycle = InteractionSequence::from_pairs(3, vec![(1, 2)]);
        let adv = ObliviousAdversary::with_cycle(prefix, cycle);
        let seq = adv.materialize(4);
        assert_eq!(seq.len(), 4);
        assert_eq!(seq.get(3), Some(Interaction::new(NodeId(1), NodeId(2))));

        let finite = ObliviousAdversary::replay(InteractionSequence::from_pairs(3, vec![(0, 1)]));
        assert_eq!(finite.materialize(10).len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_cycle_rejected() {
        let prefix = InteractionSequence::from_pairs(3, vec![(0, 1)]);
        let _ = ObliviousAdversary::with_cycle(prefix, InteractionSequence::new(3));
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn mismatched_node_counts_rejected() {
        let prefix = InteractionSequence::from_pairs(3, vec![(0, 1)]);
        let cycle = InteractionSequence::from_pairs(4, vec![(2, 3)]);
        let _ = ObliviousAdversary::with_cycle(prefix, cycle);
    }
}
