//! Non-uniform randomized adversaries.
//!
//! The paper's concluding remarks ask whether "randomized adversaries that
//! use a non-uniform probabilistic distribution alter significantly the
//! bounds". [`WeightedRandomAdversary`] provides the natural candidate: each
//! node has a popularity weight and the interacting pair is drawn
//! proportionally to the product of the two weights. The ablation
//! benchmark `e_nonuniform` compares the algorithms under uniform and
//! skewed weights.

use doda_core::sequence::{AdversaryView, InteractionSource};
use doda_core::{Interaction, InteractionSequence, Time};
use doda_graph::NodeId;
use doda_stats::rng::{seeded_rng, DodaRng};
use rand::Rng;

/// A randomized adversary drawing pairs with probability proportional to
/// the product of per-node weights.
#[derive(Debug, Clone)]
pub struct WeightedRandomAdversary {
    weights: Vec<f64>,
    cumulative: Vec<f64>,
    rng: DodaRng,
}

impl WeightedRandomAdversary {
    /// Creates the adversary from positive per-node weights.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two nodes are given or any weight is not
    /// strictly positive and finite.
    pub fn new(weights: Vec<f64>, seed: u64) -> Self {
        assert!(weights.len() >= 2, "need at least 2 nodes");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "weights must be positive and finite"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        WeightedRandomAdversary {
            weights,
            cumulative,
            rng: seeded_rng(seed),
        }
    }

    /// Uniform weights — coincides in distribution with
    /// [`crate::RandomizedAdversary`].
    pub fn uniform(n: usize, seed: u64) -> Self {
        WeightedRandomAdversary::new(vec![1.0; n], seed)
    }

    /// Zipf-like weights: node `i` has weight `1 / (i + 1)^exponent`, so low
    /// ids (including the sink, id 0) are "popular" hubs.
    pub fn zipf(n: usize, exponent: f64, seed: u64) -> Self {
        let weights = (0..n)
            .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
            .collect();
        WeightedRandomAdversary::new(weights, seed)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if there are no nodes (never the case after
    /// construction; included for API completeness).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    fn sample_node(&mut self) -> NodeId {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let x: f64 = self.rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= x);
        NodeId(idx.min(self.weights.len() - 1))
    }

    /// Draws one interaction: two distinct nodes, each weighted by its
    /// popularity (the second node is redrawn until distinct).
    pub fn draw(&mut self) -> Interaction {
        let a = self.sample_node();
        loop {
            let b = self.sample_node();
            if b != a {
                return Interaction::new(a, b);
            }
        }
    }

    /// Materialises a finite sequence of `len` interactions — shorthand
    /// for [`InteractionSequence::materialize`] over this source.
    pub fn generate_sequence(&mut self, len: usize) -> InteractionSequence {
        InteractionSequence::materialize(self, len)
    }
}

impl InteractionSource for WeightedRandomAdversary {
    // The stream never reads the view: the lane engine may pull it in
    // devirtualised batches.
    fn is_oblivious(&self) -> bool {
        true
    }

    fn node_count(&self) -> usize {
        self.weights.len()
    }

    fn next_interaction(&mut self, _t: Time, _view: &AdversaryView<'_>) -> Option<Interaction> {
        Some(self.draw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_valid() {
        let mut adv = WeightedRandomAdversary::zipf(6, 1.0, 3);
        assert_eq!(adv.len(), 6);
        assert!(!adv.is_empty());
        for _ in 0..500 {
            let i = adv.draw();
            assert!(i.max().index() < 6);
        }
    }

    #[test]
    fn skewed_weights_bias_towards_low_ids() {
        let mut adv = WeightedRandomAdversary::zipf(8, 1.5, 11);
        let seq = adv.generate_sequence(20_000);
        let mut involving_node0 = 0usize;
        let mut involving_node7 = 0usize;
        for ti in seq.iter() {
            if ti.interaction.involves(NodeId(0)) {
                involving_node0 += 1;
            }
            if ti.interaction.involves(NodeId(7)) {
                involving_node7 += 1;
            }
        }
        assert!(
            involving_node0 > 3 * involving_node7,
            "node 0 ({involving_node0}) should interact far more than node 7 ({involving_node7})"
        );
    }

    #[test]
    fn uniform_variant_is_roughly_balanced() {
        let mut adv = WeightedRandomAdversary::uniform(5, 7);
        let seq = adv.generate_sequence(20_000);
        let mut counts = [0usize; 5];
        for ti in seq.iter() {
            counts[ti.interaction.min().index()] += 1;
            counts[ti.interaction.max().index()] += 1;
        }
        let expected = 2.0 * 20_000.0 / 5.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "node {i} frequency off by {dev:.3}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = WeightedRandomAdversary::zipf(5, 1.0, 42).generate_sequence(100);
        let b = WeightedRandomAdversary::zipf(5, 1.0, 42).generate_sequence(100);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_non_positive_weights() {
        let _ = WeightedRandomAdversary::new(vec![1.0, 0.0], 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn rejects_single_node() {
        let _ = WeightedRandomAdversary::new(vec![1.0], 1);
    }
}
