//! Adversary models for the DODA reproduction.
//!
//! The paper studies three adversaries that choose the sequence of pairwise
//! interactions:
//!
//! * the **oblivious adversary** fixes the whole sequence before the
//!   execution starts — modelled here by replaying an
//!   [`doda_core::InteractionSequence`] (see [`oblivious`]);
//! * the **online adaptive adversary** builds the sequence while observing
//!   the effect of the algorithm's past decisions — modelled by
//!   [`doda_core::InteractionSource`] implementations that inspect the
//!   ownership view (see [`adaptive`] and [`constructions`]);
//! * the **randomized adversary** draws every interaction uniformly at
//!   random among all pairs (see [`randomized`]), with a weighted variant
//!   in [`nonuniform`] for the paper's concluding question 3.
//!
//! The [`constructions`] module implements the explicit adversarial
//! sequences used in the impossibility proofs of Theorems 1, 2 and 3.
//!
//! # Example
//!
//! ```
//! use doda_adversary::randomized::RandomizedAdversary;
//! use doda_core::prelude::*;
//! use doda_graph::NodeId;
//!
//! let mut adversary = RandomizedAdversary::new(8, 42);
//! let mut algo = Gathering::new();
//! let outcome = engine::run_with_id_sets(
//!     &mut algo,
//!     &mut adversary,
//!     NodeId(0),
//!     EngineConfig::default(),
//! )?;
//! assert!(outcome.terminated());
//! # Ok::<(), doda_core::error::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod constructions;
pub mod nonuniform;
pub mod oblivious;
pub mod randomized;
pub mod round_trap;

pub use adaptive::{AdaptiveAdversary, CrashAwareIsolator, IsolatorAdversary};
pub use constructions::{AdaptiveTrap, CycleTrap, ObliviousTrap};
pub use nonuniform::WeightedRandomAdversary;
pub use oblivious::ObliviousAdversary;
pub use randomized::RandomizedAdversary;
pub use round_trap::RoundIsolator;
