//! Generic online adaptive adversaries.
//!
//! The online adaptive adversary "can use the past execution of the
//! algorithm to construct the next interaction" (Section 2.2). The engine
//! exposes exactly that power through the ownership view passed to
//! [`InteractionSource::next_interaction`]; [`AdaptiveAdversary`] lets
//! experiments and tests build ad-hoc adaptive strategies from a closure,
//! [`IsolatorAdversary`] is the *sweepable* adaptive strategy (any node
//! count, `O(1)` amortised per step), and the named constructions of the
//! paper live in [`crate::constructions`].

use doda_core::sequence::{AdversaryView, InteractionSource};
use doda_core::{Interaction, Time};
use doda_graph::NodeId;

/// An adaptive adversary defined by a closure receiving the current time
/// and the ownership view.
pub struct AdaptiveAdversary<F> {
    n: usize,
    strategy: F,
}

impl<F> AdaptiveAdversary<F>
where
    F: FnMut(Time, &AdversaryView<'_>) -> Option<Interaction>,
{
    /// Creates an adaptive adversary over `n` nodes driven by `strategy`.
    pub fn new(n: usize, strategy: F) -> Self {
        AdaptiveAdversary { n, strategy }
    }
}

impl<F> std::fmt::Debug for AdaptiveAdversary<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveAdversary")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<F> InteractionSource for AdaptiveAdversary<F>
where
    F: FnMut(Time, &AdversaryView<'_>) -> Option<Interaction>,
{
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        (self.strategy)(t, view)
    }
}

/// The sweepable online adaptive adversary: it *isolates* the sink.
///
/// While at least two non-sink nodes still own data, the adversary pairs
/// the two smallest-id such owners — the sink never appears in an
/// interaction, so "meet the sink" strategies ([`Waiting`]) can make no
/// progress whatsoever. Only once a single non-sink owner remains (an
/// aggregating strategy such as [`Gathering`] drains everyone into one
/// node) is that owner finally granted a meeting with the sink.
///
/// This generalises the Theorem 1 trap's starvation idea to any node count
/// with a completion path, which makes adaptive adversaries *sweepable*:
/// Gathering terminates in exactly `n − 1` transmissions, Waiting runs to
/// the horizon. The strategy is deterministic and seed-independent.
///
/// Cost per step is `O(1)` amortised: the previously issued pair is
/// revalidated against the ownership view in constant time, and a linear
/// rescan happens only after a transmission changed ownership — at most
/// `n − 1` times per execution.
///
/// [`Waiting`]: doda_core::algorithms::Waiting
/// [`Gathering`]: doda_core::algorithms::Gathering
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolatorAdversary {
    n: usize,
    cached: Option<(NodeId, NodeId)>,
}

impl IsolatorAdversary {
    /// Creates the adversary over `n ≥ 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no pair of distinct nodes exists).
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2,
            "the isolator adversary needs at least 2 nodes, got {n}"
        );
        IsolatorAdversary { n, cached: None }
    }
}

impl InteractionSource for IsolatorAdversary {
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        if t == 0 {
            // A fresh execution: a pair cached by a previous run (possibly
            // the sink-release pair) must not leak into this one.
            self.cached = None;
        }
        // Fast path: the pair issued last step is still jointly owning —
        // reissue it (no transmission happened, the picture is unchanged).
        if let Some((a, b)) = self.cached {
            if view.owns(a) && view.owns(b) {
                return Some(Interaction::new(a, b));
            }
        }
        // Slow path: ownership changed (or first step) — rescan for the
        // two smallest-id non-sink owners.
        let mut first = None;
        for i in 0..self.n {
            let v = NodeId(i);
            if v == view.sink || !view.owns(v) {
                continue;
            }
            match first {
                None => first = Some(v),
                Some(a) => {
                    self.cached = Some((a, v));
                    return Some(Interaction::new(a, v));
                }
            }
        }
        // A single non-sink owner remains: release it to the sink. (If
        // none remains the aggregation is already complete and the engine
        // never asks for another interaction — returning the sink pair is
        // unreachable but harmless.)
        let last = first?;
        self.cached = Some((last, view.sink));
        Some(Interaction::new(last, view.sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_core::prelude::*;

    #[test]
    fn closure_adversary_reacts_to_ownership() {
        // Strategy: keep pairing the two smallest-id nodes that still own
        // data (never involving the sink), so the Waiting algorithm can
        // never make progress while Gathering drains everyone into one node.
        let strategy = |_t: Time, view: &AdversaryView<'_>| {
            let owners: Vec<NodeId> = (0..view.node_count())
                .map(NodeId)
                .filter(|&v| v != view.sink && view.owns(v))
                .collect();
            if owners.len() >= 2 {
                Some(Interaction::new(owners[0], owners[1]))
            } else {
                None
            }
        };
        let mut adversary = AdaptiveAdversary::new(5, strategy);
        assert_eq!(adversary.node_count(), 5);
        let mut algo = Gathering::new();
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut adversary,
            NodeId(0),
            EngineConfig::with_max_interactions(100),
        )
        .unwrap();
        // Gathering merges all non-sink data into node 1, then the adversary
        // has nothing left to offer and the execution stalls unterminated.
        assert!(!outcome.terminated());
        assert_eq!(outcome.transmission_count(), 3);
        assert_eq!(outcome.remaining_owners(), 2);
    }

    #[test]
    fn debug_impl_does_not_require_closure_debug() {
        let adv = AdaptiveAdversary::new(3, |_t, _v| None);
        assert!(format!("{adv:?}").contains("AdaptiveAdversary"));
    }

    #[test]
    fn isolator_starves_waiting_for_the_whole_horizon() {
        let mut adversary = IsolatorAdversary::new(16);
        let mut algo = Waiting::new();
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut adversary,
            NodeId(0),
            EngineConfig::sweep(10_000),
        )
        .unwrap();
        assert!(!outcome.terminated());
        assert_eq!(outcome.interactions_processed, 10_000);
        assert_eq!(outcome.transmission_count(), 0);
    }

    #[test]
    fn isolator_lets_gathering_terminate_in_n_minus_1_transmissions() {
        for n in [2usize, 3, 8, 33] {
            let mut adversary = IsolatorAdversary::new(n);
            let mut algo = Gathering::new();
            let outcome = engine::run_with_id_sets(
                &mut algo,
                &mut adversary,
                NodeId(0),
                EngineConfig::with_max_interactions(10_000),
            )
            .unwrap();
            assert!(outcome.terminated(), "n = {n}");
            assert_eq!(outcome.transmission_count(), n - 1, "n = {n}");
            assert!(outcome.sink_data.as_ref().unwrap().covers_all(n));
        }
    }

    #[test]
    fn isolator_respects_a_non_zero_sink() {
        let mut adversary = IsolatorAdversary::new(6);
        let mut algo = Gathering::new();
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut adversary,
            NodeId(3),
            EngineConfig::sweep(10_000),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert!(outcome.sink_data.as_ref().unwrap().covers_all(6));
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn isolator_rejects_tiny_graphs() {
        let _ = IsolatorAdversary::new(1);
    }

    #[test]
    fn isolator_reuse_across_runs_resets_the_cached_pair() {
        // After a completed Gathering run the cache holds the sink-release
        // pair; a reused instance must not leak it into a fresh execution
        // (the isolation invariant starts over at t = 0).
        let mut adversary = IsolatorAdversary::new(8);
        let mut algo = Gathering::new();
        let first = engine::run_with_id_sets(
            &mut algo,
            &mut adversary,
            NodeId(0),
            EngineConfig::sweep(10_000),
        )
        .unwrap();
        assert!(first.terminated());

        // Second run, same instance: Waiting must still be starved — zero
        // transmissions, never a sink meeting while others own data.
        let mut waiting = Waiting::new();
        let second = engine::run_with_id_sets(
            &mut waiting,
            &mut adversary,
            NodeId(0),
            EngineConfig::with_max_interactions(2_000),
        )
        .unwrap();
        assert!(!second.terminated());
        assert_eq!(second.transmission_count(), 0);
    }
}
