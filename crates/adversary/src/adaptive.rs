//! Generic online adaptive adversaries.
//!
//! The online adaptive adversary "can use the past execution of the
//! algorithm to construct the next interaction" (Section 2.2). The engine
//! exposes exactly that power through the ownership view passed to
//! [`InteractionSource::next_interaction`]; [`AdaptiveAdversary`] lets
//! experiments and tests build ad-hoc adaptive strategies from a closure,
//! [`IsolatorAdversary`] is the *sweepable* adaptive strategy (any node
//! count, `O(1)` amortised per step), and the named constructions of the
//! paper live in [`crate::constructions`].

use doda_core::sequence::{AdversaryView, InteractionSource};
use doda_core::{Interaction, Time};
use doda_graph::NodeId;

/// An adaptive adversary defined by a closure receiving the current time
/// and the ownership view.
pub struct AdaptiveAdversary<F> {
    n: usize,
    strategy: F,
}

impl<F> AdaptiveAdversary<F>
where
    F: FnMut(Time, &AdversaryView<'_>) -> Option<Interaction>,
{
    /// Creates an adaptive adversary over `n` nodes driven by `strategy`.
    pub fn new(n: usize, strategy: F) -> Self {
        AdaptiveAdversary { n, strategy }
    }
}

impl<F> std::fmt::Debug for AdaptiveAdversary<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveAdversary")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<F> InteractionSource for AdaptiveAdversary<F>
where
    F: FnMut(Time, &AdversaryView<'_>) -> Option<Interaction>,
{
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        (self.strategy)(t, view)
    }
}

/// The sweepable online adaptive adversary: it *isolates* the sink.
///
/// While at least two non-sink nodes still own data, the adversary pairs
/// the two smallest-id such owners — the sink never appears in an
/// interaction, so "meet the sink" strategies ([`Waiting`]) can make no
/// progress whatsoever. Only once a single non-sink owner remains (an
/// aggregating strategy such as [`Gathering`] drains everyone into one
/// node) is that owner finally granted a meeting with the sink.
///
/// This generalises the Theorem 1 trap's starvation idea to any node count
/// with a completion path, which makes adaptive adversaries *sweepable*:
/// Gathering terminates in exactly `n − 1` transmissions, Waiting runs to
/// the horizon. The strategy is deterministic and seed-independent.
///
/// Cost per step is `O(1)` amortised: the previously issued pair is
/// revalidated against the ownership view in constant time, and a linear
/// rescan happens only after a transmission changed ownership — at most
/// `n − 1` times per execution.
///
/// [`Waiting`]: doda_core::algorithms::Waiting
/// [`Gathering`]: doda_core::algorithms::Gathering
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolatorAdversary {
    n: usize,
    cached: Option<(NodeId, NodeId)>,
}

impl IsolatorAdversary {
    /// Creates the adversary over `n ≥ 2` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no pair of distinct nodes exists).
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2,
            "the isolator adversary needs at least 2 nodes, got {n}"
        );
        IsolatorAdversary { n, cached: None }
    }
}

impl InteractionSource for IsolatorAdversary {
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        if t == 0 {
            // A fresh execution: a pair cached by a previous run (possibly
            // the sink-release pair) must not leak into this one.
            self.cached = None;
        }
        // Fast path: the pair issued last step is still jointly owning —
        // reissue it (no transmission happened, the picture is unchanged).
        if let Some((a, b)) = self.cached {
            if view.owns(a) && view.owns(b) {
                return Some(Interaction::new(a, b));
            }
        }
        // Slow path: ownership changed (or first step) — rescan for the
        // two smallest-id non-sink owners.
        let mut first = None;
        for i in 0..self.n {
            let v = NodeId(i);
            if v == view.sink || !view.owns(v) {
                continue;
            }
            match first {
                None => first = Some(v),
                Some(a) => {
                    self.cached = Some((a, v));
                    return Some(Interaction::new(a, v));
                }
            }
        }
        // A single non-sink owner remains: release it to the sink. (If
        // none remains the aggregation is already complete and the engine
        // never asks for another interaction — returning the sink pair is
        // unreachable but harmless.)
        let last = first?;
        self.cached = Some((last, view.sink));
        Some(Interaction::new(last, view.sink))
    }
}

/// The crash-aware online adaptive adversary: it targets the **current
/// owner set** and never lets anyone reach the sink.
///
/// Like [`IsolatorAdversary`] it pairs the two smallest-id non-sink
/// owners while at least two exist (same `O(1)` amortised cached-pair
/// revalidation), but it has no endgame release: once a single non-sink
/// owner remains, it pairs that owner with the smallest-id non-owner
/// non-sink node — a wasted contact — forever. Against a fault-free
/// execution this starves *every* knowledge-free algorithm (Gathering
/// included, unlike the plain isolator). Layered under a crash fault
/// plan it is the worst case the fault model opens up: the adversary
/// keeps data away from the sink so that crashes, not transmissions,
/// decide each datum's fate — exactly the regime where survivor-only
/// completion appears.
///
/// The ownership view already reflects crashes and churn (dead nodes own
/// nothing), so the cached-pair revalidation reacts to fault events for
/// free: an isolation pair is reissued only while both endpoints still
/// own data, a wasted pair only while its owner endpoint still owns and
/// its dud still does not — so the endgame stays `O(1)` amortised too,
/// rescanning only when ownership actually changes.
///
/// Deterministic and seed-independent; needs `n ≥ 3` so a wasted pair
/// avoiding the sink always exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashAwareIsolator {
    n: usize,
    cached: Option<(NodeId, NodeId)>,
    /// `true` when `cached` is an owner + dud wasted pair (validated as
    /// owner-still-owns / dud-still-does-not) rather than an isolation
    /// pair of two owners.
    cached_wasted: bool,
}

impl CrashAwareIsolator {
    /// Creates the adversary over `n ≥ 3` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (with only the sink and one other node, every
    /// pair would touch the sink).
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 3,
            "the crash-aware isolator needs at least 3 nodes, got {n}"
        );
        CrashAwareIsolator {
            n,
            cached: None,
            cached_wasted: false,
        }
    }
}

impl InteractionSource for CrashAwareIsolator {
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        if t == 0 {
            self.cached = None;
            self.cached_wasted = false;
        }
        // Fast path: the issued pair is unchanged while the ownership
        // picture it was built on still holds — both endpoints owning for
        // an isolation pair; owner-still-owns and dud-still-does-not for
        // a wasted pair (an arrival giving the dud fresh data, or a fault
        // taking the owner, forces a rescan).
        if let Some((a, b)) = self.cached {
            let still_valid = if self.cached_wasted {
                view.owns(a) && !view.owns(b)
            } else {
                view.owns(a) && view.owns(b)
            };
            if still_valid {
                return Some(Interaction::new(a, b));
            }
        }
        // Rescan: the two smallest-id non-sink owners, or owner + dud.
        let mut first_owner = None;
        let mut first_dud = None;
        for i in 0..self.n {
            let v = NodeId(i);
            if v == view.sink {
                continue;
            }
            if view.owns(v) {
                match first_owner {
                    None => first_owner = Some(v),
                    Some(a) => {
                        self.cached = Some((a, v));
                        self.cached_wasted = false;
                        return Some(Interaction::new(a, v));
                    }
                }
            } else if first_dud.is_none() {
                first_dud = Some(v);
            }
        }
        // At most one non-sink owner left: waste the step on a pair that
        // never touches the sink. (With n ≥ 3 a dud always exists here.)
        let last = first_owner?;
        let dud = first_dud?;
        self.cached = Some((last, dud));
        self.cached_wasted = true;
        Some(Interaction::new(last, dud))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_core::prelude::*;

    #[test]
    fn closure_adversary_reacts_to_ownership() {
        // Strategy: keep pairing the two smallest-id nodes that still own
        // data (never involving the sink), so the Waiting algorithm can
        // never make progress while Gathering drains everyone into one node.
        let strategy = |_t: Time, view: &AdversaryView<'_>| {
            let owners: Vec<NodeId> = (0..view.node_count())
                .map(NodeId)
                .filter(|&v| v != view.sink && view.owns(v))
                .collect();
            if owners.len() >= 2 {
                Some(Interaction::new(owners[0], owners[1]))
            } else {
                None
            }
        };
        let mut adversary = AdaptiveAdversary::new(5, strategy);
        assert_eq!(adversary.node_count(), 5);
        let mut algo = Gathering::new();
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut adversary,
            NodeId(0),
            EngineConfig::with_max_interactions(100),
        )
        .unwrap();
        // Gathering merges all non-sink data into node 1, then the adversary
        // has nothing left to offer and the execution stalls unterminated.
        assert!(!outcome.terminated());
        assert_eq!(outcome.transmission_count(), 3);
        assert_eq!(outcome.remaining_owners(), 2);
    }

    #[test]
    fn debug_impl_does_not_require_closure_debug() {
        let adv = AdaptiveAdversary::new(3, |_t, _v| None);
        assert!(format!("{adv:?}").contains("AdaptiveAdversary"));
    }

    #[test]
    fn isolator_starves_waiting_for_the_whole_horizon() {
        let mut adversary = IsolatorAdversary::new(16);
        let mut algo = Waiting::new();
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut adversary,
            NodeId(0),
            EngineConfig::sweep(10_000),
        )
        .unwrap();
        assert!(!outcome.terminated());
        assert_eq!(outcome.interactions_processed, 10_000);
        assert_eq!(outcome.transmission_count(), 0);
    }

    #[test]
    fn isolator_lets_gathering_terminate_in_n_minus_1_transmissions() {
        for n in [2usize, 3, 8, 33] {
            let mut adversary = IsolatorAdversary::new(n);
            let mut algo = Gathering::new();
            let outcome = engine::run_with_id_sets(
                &mut algo,
                &mut adversary,
                NodeId(0),
                EngineConfig::with_max_interactions(10_000),
            )
            .unwrap();
            assert!(outcome.terminated(), "n = {n}");
            assert_eq!(outcome.transmission_count(), n - 1, "n = {n}");
            assert!(outcome.sink_data.as_ref().unwrap().covers_all(n));
        }
    }

    #[test]
    fn isolator_respects_a_non_zero_sink() {
        let mut adversary = IsolatorAdversary::new(6);
        let mut algo = Gathering::new();
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut adversary,
            NodeId(3),
            EngineConfig::sweep(10_000),
        )
        .unwrap();
        assert!(outcome.terminated());
        assert!(outcome.sink_data.as_ref().unwrap().covers_all(6));
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn isolator_rejects_tiny_graphs() {
        let _ = IsolatorAdversary::new(1);
    }

    #[test]
    fn crash_aware_isolator_starves_even_gathering() {
        for n in [3usize, 8, 16] {
            for spec_name in ["waiting", "gathering"] {
                let mut adversary = CrashAwareIsolator::new(n);
                let outcome = if spec_name == "waiting" {
                    engine::run_with_id_sets(
                        &mut Waiting::new(),
                        &mut adversary,
                        NodeId(0),
                        EngineConfig::sweep(5_000),
                    )
                } else {
                    engine::run_with_id_sets(
                        &mut Gathering::new(),
                        &mut adversary,
                        NodeId(0),
                        EngineConfig::sweep(5_000),
                    )
                }
                .unwrap();
                assert!(
                    !outcome.terminated(),
                    "{spec_name} must starve forever at n = {n}"
                );
                assert_eq!(outcome.interactions_processed, 5_000);
                // No transmission ever reaches the sink.
                assert_eq!(outcome.sink_data.as_ref().unwrap().len(), 1);
            }
        }
    }

    #[test]
    fn crash_aware_isolator_never_touches_the_sink() {
        // Drive the adversary against Gathering by hand and record every
        // emitted pair: none may involve the sink, before or after the
        // owner set collapses to a single node.
        let n = 10;
        let sink = NodeId(3);
        let mut adversary = CrashAwareIsolator::new(n);
        let mut algo = Gathering::new();
        let mut owns = vec![true; n];
        for t in 0..2_000u64 {
            let view = AdversaryView {
                owns_data: &owns,
                sink,
            };
            let interaction = adversary.next_interaction(t, &view).expect("never dry");
            assert!(
                !interaction.involves(sink),
                "pair {interaction} touches the sink at t = {t}"
            );
            let ctx = InteractionContext {
                time: t,
                interaction,
                min_owns_data: owns[interaction.min().index()],
                max_owns_data: owns[interaction.max().index()],
                sink,
            };
            if let Decision::Transmit { sender, .. } = algo.decide(&ctx) {
                if ctx.both_own_data() && sender != sink {
                    owns[sender.index()] = false;
                }
            }
        }
        // Gathering collapsed everything into one non-sink owner.
        let owners = owns.iter().filter(|&&b| b).count();
        assert_eq!(owners, 2, "sink plus the single surviving owner");
    }

    #[test]
    fn crash_aware_isolator_reacts_to_external_ownership_loss() {
        // Simulate fault-driven ownership loss (as a crash plan would
        // produce): whenever the adversary's cached pair loses a member,
        // the rescan must still avoid the sink and target live owners.
        let n = 6;
        let mut adversary = CrashAwareIsolator::new(n);
        let mut owns = vec![true; n];
        let sink = NodeId(0);
        for t in 0..5u64 {
            let view = AdversaryView {
                owns_data: &owns,
                sink,
            };
            let interaction = adversary.next_interaction(t, &view).unwrap();
            assert!(!interaction.involves(sink));
            // Kill the smaller endpoint, as a crash fault would.
            owns[interaction.min().index()] = false;
        }
        // Everyone but the sink and one node is gone; the wasted pair
        // still avoids the sink.
        let view = AdversaryView {
            owns_data: &owns,
            sink,
        };
        let last = adversary.next_interaction(5, &view).unwrap();
        assert!(!last.involves(sink));
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn crash_aware_isolator_rejects_tiny_graphs() {
        let _ = CrashAwareIsolator::new(2);
    }

    #[test]
    fn isolator_reuse_across_runs_resets_the_cached_pair() {
        // After a completed Gathering run the cache holds the sink-release
        // pair; a reused instance must not leak it into a fresh execution
        // (the isolation invariant starts over at t = 0).
        let mut adversary = IsolatorAdversary::new(8);
        let mut algo = Gathering::new();
        let first = engine::run_with_id_sets(
            &mut algo,
            &mut adversary,
            NodeId(0),
            EngineConfig::sweep(10_000),
        )
        .unwrap();
        assert!(first.terminated());

        // Second run, same instance: Waiting must still be starved — zero
        // transmissions, never a sink meeting while others own data.
        let mut waiting = Waiting::new();
        let second = engine::run_with_id_sets(
            &mut waiting,
            &mut adversary,
            NodeId(0),
            EngineConfig::with_max_interactions(2_000),
        )
        .unwrap();
        assert!(!second.terminated());
        assert_eq!(second.transmission_count(), 0);
    }
}
