//! Generic online adaptive adversaries.
//!
//! The online adaptive adversary "can use the past execution of the
//! algorithm to construct the next interaction" (Section 2.2). The engine
//! exposes exactly that power through the ownership view passed to
//! [`InteractionSource::next_interaction`]; [`AdaptiveAdversary`] lets
//! experiments and tests build ad-hoc adaptive strategies from a closure,
//! while the named constructions of the paper live in
//! [`crate::constructions`].

use doda_core::sequence::{AdversaryView, InteractionSource};
use doda_core::{Interaction, Time};

/// An adaptive adversary defined by a closure receiving the current time
/// and the ownership view.
pub struct AdaptiveAdversary<F> {
    n: usize,
    strategy: F,
}

impl<F> AdaptiveAdversary<F>
where
    F: FnMut(Time, &AdversaryView<'_>) -> Option<Interaction>,
{
    /// Creates an adaptive adversary over `n` nodes driven by `strategy`.
    pub fn new(n: usize, strategy: F) -> Self {
        AdaptiveAdversary { n, strategy }
    }
}

impl<F> std::fmt::Debug for AdaptiveAdversary<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveAdversary")
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<F> InteractionSource for AdaptiveAdversary<F>
where
    F: FnMut(Time, &AdversaryView<'_>) -> Option<Interaction>,
{
    fn node_count(&self) -> usize {
        self.n
    }

    fn next_interaction(&mut self, t: Time, view: &AdversaryView<'_>) -> Option<Interaction> {
        (self.strategy)(t, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_core::prelude::*;
    use doda_graph::NodeId;

    #[test]
    fn closure_adversary_reacts_to_ownership() {
        // Strategy: keep pairing the two smallest-id nodes that still own
        // data (never involving the sink), so the Waiting algorithm can
        // never make progress while Gathering drains everyone into one node.
        let strategy = |_t: Time, view: &AdversaryView<'_>| {
            let owners: Vec<NodeId> = (0..view.node_count())
                .map(NodeId)
                .filter(|&v| v != view.sink && view.owns(v))
                .collect();
            if owners.len() >= 2 {
                Some(Interaction::new(owners[0], owners[1]))
            } else {
                None
            }
        };
        let mut adversary = AdaptiveAdversary::new(5, strategy);
        assert_eq!(adversary.node_count(), 5);
        let mut algo = Gathering::new();
        let outcome = engine::run_with_id_sets(
            &mut algo,
            &mut adversary,
            NodeId(0),
            EngineConfig::with_max_interactions(100),
        )
        .unwrap();
        // Gathering merges all non-sink data into node 1, then the adversary
        // has nothing left to offer and the execution stalls unterminated.
        assert!(!outcome.terminated());
        assert_eq!(outcome.transmission_count(), 3);
        assert_eq!(outcome.remaining_owners(), 2);
    }

    #[test]
    fn debug_impl_does_not_require_closure_debug() {
        let adv = AdaptiveAdversary::new(3, |_t, _v| None);
        assert!(format!("{adv:?}").contains("AdaptiveAdversary"));
    }
}
