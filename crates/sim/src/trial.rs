//! Single-trial execution and metrics.
//!
//! [`TrialRunner`] is the sweep-facing entry point: it owns a reusable
//! [`Engine`] so that running thousands of trials reuses one set of
//! scratch allocations. [`TrialRunner::run_streamed`] is the primary path
//! — it drives a knowledge-free algorithm straight off an
//! [`InteractionSource`] in `O(n)` memory; [`TrialRunner::run`] executes
//! over a materialised sequence for the algorithms whose oracles need the
//! future. [`run_trial_on_sequence`] remains as a stateless convenience
//! for one-off trials.

use doda_core::algebra::AggregateSummary;
use doda_core::byzantine::{ByzantineInjector, ByzantineProfile, Tally, Verdict};
use doda_core::cost::{cost_of_duration, Cost};
use doda_core::data::{Aggregate, IdSet};
use doda_core::engine::{DiscardTransmissions, Engine, EngineConfig, RunStats};
use doda_core::fault::{FaultProfile, FaultedSource};
use doda_core::hierarchy::ClusterPlan;
use doda_core::lane::{LaneEngine, LaneRunStats};
use doda_core::outcome::{Completion, FaultTally};
use doda_core::round::RoundSource;
use doda_core::{InteractionSequence, InteractionSource, Time};
use doda_graph::NodeId;
use doda_stats::rng::SeedSequence;

use crate::datum::{DatumFamily, ExactOrigins};
use crate::scenario::Scenario;
use crate::spec::AlgorithmSpec;

/// Label of the aggregator-election seed stream within a hierarchical
/// trial (see [`TrialRunner::run_hierarchical`]): the election, each
/// cluster's interaction stream and the final aggregator phase all derive
/// independent sub-seeds from the trial seed, the same scheme
/// [`crate::scenario::FaultedScenario::fault_injection`] uses for fault
/// streams.
const HIER_ELECT_LABEL: u64 = 0xE1;
/// Label of the per-cluster interaction-stream seed sequence.
const HIER_CLUSTER_LABEL: u64 = 0xC1;
/// Label of the final aggregator-phase stream seed.
const HIER_FINAL_LABEL: u64 = 0xC2;

/// A fully resolved per-trial fault plan: the profile plus the seed of
/// the dedicated fault stream. Built by
/// [`crate::scenario::FaultedScenario::fault_injection`] from the trial
/// seed; the runner injects it into the engine by wrapping the trial's
/// source in a [`FaultedSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjection {
    /// The fault plan.
    pub profile: FaultProfile,
    /// Seed of the fault stream (independent of the base stream's).
    pub seed: u64,
}

/// A fully resolved per-trial Byzantine plan: the profile plus the seed
/// of the liar-selection/forgery streams — the data-plane analogue of
/// [`FaultInjection`]. Built by
/// [`crate::scenario::FaultedScenario::byzantine_injection`] from the
/// trial seed; the runner injects it by routing the trial through
/// [`doda_core::Engine::run_audited`] with a per-trial
/// [`ByzantineInjector`] and [`Tally`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantineInjection {
    /// The Byzantine plan.
    pub profile: ByzantineProfile,
    /// Seed of the liar-selection and forgery streams (independent of
    /// the base and fault streams').
    pub seed: u64,
}

/// Configuration of a single trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialConfig {
    /// The sink node.
    pub sink: NodeId,
    /// Interaction budget of the engine. For materialised trials `None`
    /// defaults to the sequence length (an algorithm that cannot finish on
    /// the sequence is reported as non-terminated); for streamed trials
    /// over an infinite source `None` falls back to the engine's default
    /// budget, so sweeps should always set it explicitly.
    pub max_interactions: Option<u64>,
    /// Whether to compute the paper's cost function for the outcome (adds
    /// `O(len log len)` work per convergecast, so sweeps usually disable it).
    pub compute_cost: bool,
    /// Cap on the number of successive convergecasts examined by the cost
    /// computation.
    pub max_convergecasts: u64,
    /// The fault plan injected over the trial's source, if any. On the
    /// materialised path the oracles are still built from the *base*
    /// sequence (knowledge describes the committed schedule, not the
    /// faults); the plan perturbs execution only, delaying the schedule
    /// under the algorithm so time-indexed knowledge grows stale by the
    /// number of fault events (see [`TrialRunner::run`]). Incompatible
    /// with [`TrialConfig::compute_cost`].
    pub fault: Option<FaultInjection>,
    /// The Byzantine plan injected over the trial's data plane, if any:
    /// the trial routes through the audited engine path
    /// ([`doda_core::Engine::run_audited`]) and the result carries a
    /// [`Verdict`]. The schedule — and any fault plan — composes
    /// unchanged; a plan with fraction `0` runs audited with zero liars
    /// and reproduces the unaudited trial byte for byte apart from the
    /// `Some(Clean)` verdict.
    pub byzantine: Option<ByzantineInjection>,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            sink: NodeId(0),
            max_interactions: None,
            compute_cost: false,
            max_convergecasts: 64,
            fault: None,
            byzantine: None,
        }
    }
}

/// Metrics extracted from one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Number of nodes.
    pub n: usize,
    /// `Some(t)`: the aggregation completed at interaction index `t`.
    pub termination_time: Option<Time>,
    /// Number of interactions the engine processed.
    pub interactions_processed: u64,
    /// Number of transmissions performed.
    pub transmissions: usize,
    /// Number of `Transmit` decisions ignored by the engine.
    pub ignored_decisions: u64,
    /// `true` iff, at termination, every origin is accounted for: the
    /// sink's data plus the fault-model's lost/recovered bins cover every
    /// origin (for fault-free trials this degenerates to "the sink covers
    /// everything"). A terminated trial with `false` here would indicate
    /// a model violation.
    pub data_conserved: bool,
    /// How the execution ended: `Aggregated`, `AggregatedSurvivors`
    /// (faults destroyed data before the sink became sole owner) or
    /// `Starved`.
    pub completion: Completion,
    /// The fault events applied during the trial (all zero without a
    /// fault plan).
    pub faults: FaultTally,
    /// The paper's cost, when requested.
    pub cost: Option<Cost>,
    /// The constant-size summary of the sink's final aggregate, for
    /// sweeps running a real aggregation function
    /// ([`crate::AggregateKind`] other than the default). `None` on the
    /// default exact-origins family, so existing sweeps are structurally
    /// unchanged.
    pub aggregate: Option<AggregateSummary>,
    /// The audit verdict, for trials run with a Byzantine plan
    /// ([`TrialConfig::byzantine`]): how the receipt ledger reconciles
    /// against the datum family's guarantees. `None` on every
    /// byzantine-free path, so existing sweeps are structurally
    /// unchanged.
    pub verdict: Option<Verdict>,
}

impl TrialResult {
    /// Returns `true` if the aggregation completed.
    pub fn terminated(&self) -> bool {
        self.termination_time.is_some()
    }

    /// Returns `true` if the sink aggregated every datum ever introduced
    /// (the fault-free notion of success).
    pub fn fully_aggregated(&self) -> bool {
        self.completion == Completion::Aggregated
    }

    /// The number of interactions until completion, as a float for
    /// statistics (`None` when the trial did not terminate). The count is
    /// `termination_time + 1` since times are 0-based indices.
    pub fn interactions_to_completion(&self) -> Option<f64> {
        self.termination_time.map(|t| (t + 1) as f64)
    }
}

/// A reusable trial executor.
///
/// Holds the zero-allocation [`Engine`] scratch so that consecutive trials
/// (the Monte-Carlo sweeps of Sections 4–5) reuse one set of allocations.
/// The sharded batch runner keeps one `TrialRunner` per worker thread.
///
/// The runner is generic over the [`Aggregate`] the nodes carry,
/// defaulting to [`IdSet`] — the exact-conservation datum every
/// pre-algebra sweep ran. The inherent methods without a `_with` suffix
/// live on `TrialRunner<IdSet>` and behave exactly as before; the
/// `_with` methods take a [`DatumFamily`] and run any aggregate
/// ([`crate::Sweep::aggregate`] is the sweep-facing selector).
#[derive(Debug)]
pub struct TrialRunner<A: Aggregate = IdSet> {
    engine: Engine<A>,
    lanes: LaneEngine,
}

impl<A: Aggregate> Default for TrialRunner<A> {
    fn default() -> Self {
        TrialRunner::new()
    }
}

impl<A: Aggregate> TrialRunner<A> {
    /// Creates a runner with empty scratch.
    pub fn new() -> Self {
        TrialRunner {
            engine: Engine::new(),
            lanes: LaneEngine::new(),
        }
    }

    /// Runs `spec` over a concrete, pre-materialised sequence with the
    /// given datum family, reusing this runner's scratch. The generic
    /// form of [`TrialRunner::run`], which documents the fault/oracle
    /// staleness semantics and the panic conditions.
    pub fn run_with<D>(
        &mut self,
        spec: AlgorithmSpec,
        seq: &InteractionSequence,
        config: &TrialConfig,
        family: &D,
    ) -> TrialResult
    where
        D: DatumFamily<Agg = A>,
    {
        assert!(
            !(config.compute_cost && config.fault.is_some()),
            "the paper's cost function is defined over the committed fault-free \
             sequence; a faulted execution's termination time indexes the engine \
             clock (schedule + fault events), so its cost is undefined"
        );
        let n = seq.node_count();
        let sink = config.sink;
        let max_interactions = config.max_interactions.unwrap_or(seq.len() as u64);
        let engine_config = EngineConfig::sweep(max_interactions);
        let Some(mut algorithm) = spec.instantiate(seq, sink) else {
            // Spanning tree over a disconnected underlying graph: no
            // algorithm could aggregate on this sequence; report a
            // non-terminated trial.
            return TrialResult {
                algorithm: spec.label().to_string(),
                n,
                termination_time: None,
                interactions_processed: 0,
                transmissions: 0,
                ignored_decisions: 0,
                data_conserved: false,
                completion: Completion::Starved,
                faults: FaultTally::default(),
                cost: None,
                aggregate: None,
                // No interaction ever ran, so an audited trial's ledger is
                // trivially clean (byzantine plan ⇒ Some verdict, always).
                verdict: config.byzantine.map(|_| Verdict::Clean),
            };
        };
        let mut audit: Option<Tally> = None;
        let stats = match (config.fault, config.byzantine) {
            (None, None) => self.engine.run(
                algorithm.as_mut(),
                &mut seq.stream(false),
                sink,
                |v| family.initial(v),
                engine_config,
                &mut DiscardTransmissions,
            ),
            (Some(injection), None) => {
                // The oracles above were built from the base sequence (the
                // committed schedule); only execution sees the faults.
                let mut faulted =
                    FaultedSource::new(seq.stream(false), injection.profile, injection.seed)
                        .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
                self.engine.run(
                    algorithm.as_mut(),
                    &mut faulted,
                    sink,
                    |v| family.initial(v),
                    engine_config,
                    &mut DiscardTransmissions,
                )
            }
            (fault, Some(byz)) => {
                // Byzantine corruption lives on the data plane: the same
                // schedule (faulted or not) runs through the audited engine
                // path, which records a receipt per transfer.
                let mut injector = ByzantineInjector::new(byz.profile, n, sink, byz.seed)
                    .unwrap_or_else(|e| panic!("invalid byzantine plan: {e}"));
                let mut tally = Tally::new();
                let stats = match fault {
                    None => self.engine.run_audited(
                        algorithm.as_mut(),
                        &mut seq.stream(false),
                        sink,
                        |v| family.initial(v),
                        engine_config,
                        &mut DiscardTransmissions,
                        &mut injector,
                        &mut tally,
                    ),
                    Some(injection) => {
                        let mut faulted = FaultedSource::new(
                            seq.stream(false),
                            injection.profile,
                            injection.seed,
                        )
                        .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
                        self.engine.run_audited(
                            algorithm.as_mut(),
                            &mut faulted,
                            sink,
                            |v| family.initial(v),
                            engine_config,
                            &mut DiscardTransmissions,
                            &mut injector,
                            &mut tally,
                        )
                    }
                };
                audit = Some(tally);
                stats
            }
        }
        .expect("the provided algorithms never emit structurally invalid decisions");
        let cost = config
            .compute_cost
            .then(|| cost_of_duration(seq, sink, stats.termination_time, config.max_convergecasts));
        let mut result = self.finish_with(spec, family, stats, cost);
        result.verdict = audit.map(|tally| tally.verdict::<A>());
        result
    }

    /// Runs `spec` **streamed** with the given datum family. The generic
    /// form of [`TrialRunner::run_streamed`], which documents the
    /// budget/cost semantics and the panic conditions.
    pub fn run_streamed_with<S, D>(
        &mut self,
        spec: AlgorithmSpec,
        source: &mut S,
        config: &TrialConfig,
        family: &D,
    ) -> TrialResult
    where
        S: InteractionSource + ?Sized,
        D: DatumFamily<Agg = A>,
    {
        assert!(
            !config.compute_cost,
            "the paper's cost function needs the materialised sequence; \
             streamed trials cannot compute it"
        );
        let sink = config.sink;
        let max_interactions = config
            .max_interactions
            .unwrap_or(EngineConfig::default().max_interactions);
        let Some(mut algorithm) = spec.instantiate_online() else {
            panic!(
                "{spec} requires {} knowledge and cannot run streamed; \
                 materialise the source and use TrialRunner::run",
                spec.knowledge()
            );
        };
        let engine_config = EngineConfig::sweep(max_interactions);
        let mut audit: Option<Tally> = None;
        let stats = match (config.fault, config.byzantine) {
            (None, None) => self.engine.run(
                algorithm.as_mut(),
                source,
                sink,
                |v| family.initial(v),
                engine_config,
                &mut DiscardTransmissions,
            ),
            (Some(injection), None) => {
                let mut faulted = FaultedSource::new(source, injection.profile, injection.seed)
                    .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
                self.engine.run(
                    algorithm.as_mut(),
                    &mut faulted,
                    sink,
                    |v| family.initial(v),
                    engine_config,
                    &mut DiscardTransmissions,
                )
            }
            (fault, Some(byz)) => {
                let n = source.node_count();
                let mut injector = ByzantineInjector::new(byz.profile, n, sink, byz.seed)
                    .unwrap_or_else(|e| panic!("invalid byzantine plan: {e}"));
                let mut tally = Tally::new();
                let stats = match fault {
                    None => self.engine.run_audited(
                        algorithm.as_mut(),
                        source,
                        sink,
                        |v| family.initial(v),
                        engine_config,
                        &mut DiscardTransmissions,
                        &mut injector,
                        &mut tally,
                    ),
                    Some(injection) => {
                        let mut faulted =
                            FaultedSource::new(source, injection.profile, injection.seed)
                                .unwrap_or_else(|e| panic!("invalid fault plan: {e}"));
                        self.engine.run_audited(
                            algorithm.as_mut(),
                            &mut faulted,
                            sink,
                            |v| family.initial(v),
                            engine_config,
                            &mut DiscardTransmissions,
                            &mut injector,
                            &mut tally,
                        )
                    }
                };
                audit = Some(tally);
                stats
            }
        }
        .expect("the provided algorithms never emit structurally invalid decisions");
        let mut result = self.finish_with(spec, family, stats, None);
        result.verdict = audit.map(|tally| tally.verdict::<A>());
        result
    }

    /// Runs `spec` over a **round** stream with the given datum family.
    /// The generic form of [`TrialRunner::run_rounds`], which documents
    /// the budget semantics and the panic conditions.
    pub fn run_rounds_with<R, D>(
        &mut self,
        spec: AlgorithmSpec,
        rounds: &mut R,
        config: &TrialConfig,
        family: &D,
    ) -> TrialResult
    where
        R: RoundSource + ?Sized,
        D: DatumFamily<Agg = A>,
    {
        assert!(
            !config.compute_cost,
            "the paper's cost function needs a materialised sequence; \
             round trials cannot compute it"
        );
        assert!(
            config.fault.is_none(),
            "fault plans compose over the flattened round stream \
             (FaultedSource over FlattenedRounds, via run_streamed), not \
             over the batched round path"
        );
        assert!(
            config.byzantine.is_none(),
            "byzantine plans compose over the flattened round stream \
             (run_audited over FlattenedRounds, via run_streamed), not \
             over the batched round path"
        );
        let sink = config.sink;
        let max_interactions = config
            .max_interactions
            .unwrap_or(EngineConfig::default().max_interactions);
        let Some(mut algorithm) = spec.instantiate_online() else {
            panic!(
                "{spec} requires {} knowledge and cannot run round-streamed; \
                 materialise the flattened stream and use TrialRunner::run",
                spec.knowledge()
            );
        };
        let stats = self
            .engine
            .run_rounds(
                algorithm.as_mut(),
                rounds,
                sink,
                |v| family.initial(v),
                EngineConfig::sweep(max_interactions),
                &mut DiscardTransmissions,
            )
            .expect("the provided algorithms never emit structurally invalid decisions");
        self.finish_with(spec, family, stats.run, None)
    }
}

/// The default exact-origins surface: every method behaves exactly as it
/// did before the runner became generic — nodes carry [`IdSet`]s, results
/// carry no [`AggregateSummary`].
impl TrialRunner {
    /// Runs `spec` over a concrete, pre-materialised sequence, reusing
    /// this runner's scratch.
    ///
    /// With a fault plan ([`TrialConfig::fault`]), the oracles are built
    /// from `seq` — the committed schedule — while fault events consume
    /// execution steps without consuming schedule entries. Time-indexed
    /// knowledge (`meetTime`, futures) therefore grows *stale* by the
    /// number of fault events: the algorithm acts on the committed times
    /// while the schedule is delayed under it. This knowledge
    /// degradation is deliberate fault-model semantics (a real
    /// deployment's precomputed schedule drifts exactly like this), and
    /// part of what the fault-degradation experiment (E14) measures.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm produces a structurally invalid decision
    /// (this would be a bug in the algorithm implementation, not a
    /// property of the input), or if `config.compute_cost` is combined
    /// with a fault plan: the paper's cost function indexes the committed
    /// sequence by time, and a faulted execution's clock includes fault
    /// events, so no faithful duration exists to price.
    pub fn run(
        &mut self,
        spec: AlgorithmSpec,
        seq: &InteractionSequence,
        config: &TrialConfig,
    ) -> TrialResult {
        self.run_with(spec, seq, config, &ExactOrigins)
    }

    /// Runs `spec` **streamed**: the engine pulls interactions straight
    /// from `source` — no sequence is ever materialised, so the trial runs
    /// in `O(n)` memory at any horizon and the source may be adaptive.
    ///
    /// The engine's budget is `config.max_interactions` (sources are
    /// usually infinite, so sweeps must set it). Streamed trials never
    /// compute the paper's cost function — it is defined over a concrete
    /// sequence — and report `cost: None`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` requires knowledge of the future (check
    /// [`AlgorithmSpec::requires_materialization`] first; such specs must
    /// materialise the source and go through [`TrialRunner::run`]), if
    /// `config.compute_cost` is set, or if the algorithm produces a
    /// structurally invalid decision.
    pub fn run_streamed<S>(
        &mut self,
        spec: AlgorithmSpec,
        source: &mut S,
        config: &TrialConfig,
    ) -> TrialResult
    where
        S: InteractionSource + ?Sized,
    {
        self.run_streamed_with(spec, source, config, &ExactOrigins)
    }

    /// Runs `spec` over a **round** stream: the engine pulls one matching
    /// of disjoint interactions per synchronous round straight from
    /// `rounds` ([`doda_core::Engine::run_rounds`]), in `O(n)` memory at
    /// any horizon.
    ///
    /// The budget ([`TrialConfig::max_interactions`]) still counts
    /// individual interactions — the engine's interaction clock ticks once
    /// per matched pair — so round trials are measured in the same unit as
    /// pairwise trials, and a singleton-round stream reproduces the
    /// pairwise path byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if `spec` requires knowledge of the future (materialise the
    /// flattened stream and use [`TrialRunner::run`]), if
    /// `config.compute_cost` is set, or if a fault plan is configured —
    /// faults compose over the *flattened* stream
    /// (`FaultedSource<FlattenedRounds<R>>` via [`TrialRunner::run_streamed`]),
    /// not over the batched round path.
    pub fn run_rounds<R>(
        &mut self,
        spec: AlgorithmSpec,
        rounds: &mut R,
        config: &TrialConfig,
    ) -> TrialResult
    where
        R: RoundSource + ?Sized,
    {
        self.run_rounds_with(spec, rounds, config, &ExactOrigins)
    }

    /// Runs one **hierarchical** trial with exact origin sets; the
    /// [`IdSet`] form of [`TrialRunner::run_hierarchical_with`], which
    /// documents the phase structure and the panic conditions.
    pub fn run_hierarchical(
        &mut self,
        spec: AlgorithmSpec,
        scenario: &Scenario,
        n: usize,
        target_cluster_size: usize,
        trial_seed: u64,
        config: &TrialConfig,
    ) -> TrialResult {
        let family = ExactOrigins;
        self.run_hierarchical_with(
            spec,
            scenario,
            n,
            target_cluster_size,
            trial_seed,
            config,
            &family,
        )
    }

    /// Runs one trial per source through the **lane tier**
    /// ([`doda_core::LaneEngine`]): up to [`doda_core::MAX_LANES`]
    /// independent trials of the same knowledge-free spec advance in
    /// lockstep through bit-lane state, each pulling its own interaction
    /// stream. Results are returned in source order and are byte-identical
    /// per trial to [`TrialRunner::run_streamed`] on the same source
    /// (pinned by `tests/lane_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `spec` has no lane kernel
    /// ([`AlgorithmSpec::lane_algorithm`] is `None`), if a fault plan or
    /// cost computation is configured (both are scalar-path features), if
    /// the batch is empty, oversized, or mixes node counts, or if a source
    /// emits a fault event.
    pub fn run_lane_batch<S>(
        &mut self,
        spec: AlgorithmSpec,
        sources: &mut [S],
        config: &TrialConfig,
    ) -> Vec<TrialResult>
    where
        S: InteractionSource,
    {
        assert!(
            !config.compute_cost,
            "the paper's cost function needs the materialised sequence; \
             lane trials cannot compute it"
        );
        assert!(
            config.fault.is_none(),
            "fault plans run on the scalar path; the lane tier is \
             fault-free by contract"
        );
        assert!(
            config.byzantine.is_none(),
            "byzantine plans run on the audited scalar path; the lane \
             tier is honest by contract"
        );
        let Some(algorithm) = spec.lane_algorithm() else {
            panic!(
                "{spec} requires {} knowledge and has no lane kernel; \
                 materialise the source and use TrialRunner::run",
                spec.knowledge()
            );
        };
        let max_interactions = config
            .max_interactions
            .unwrap_or(EngineConfig::default().max_interactions);
        self.lanes
            .run_lanes(algorithm, sources, config.sink, max_interactions)
            .into_iter()
            .map(|stats| finish_lane(spec, stats))
            .collect()
    }
}

impl<A: Aggregate> TrialRunner<A> {
    /// Runs one **hierarchical** trial: a seeded [`ClusterPlan`] election
    /// partitions the non-sink nodes into clusters of
    /// `target_cluster_size`, each cluster aggregates toward its elected
    /// aggregator on the ordinary streamed path (the scenario family
    /// re-instantiated at cluster size, with an independent sub-seed per
    /// cluster), and a final phase aggregates the aggregators toward the
    /// sink. With `k ≈ √n` the interaction work drops from the flat
    /// `Θ(n²)` to `O(n^{3/2})` while memory stays `O(n)` — the regime the
    /// `--scale-guard` bench gate exercises at `n = 10^5`.
    ///
    /// Each phase is a complete engine execution obeying every model rule
    /// (one transmission per node, the phase's local sink never
    /// transmits). Across phases, an aggregator re-enters the final phase
    /// carrying its cluster's aggregate — the hierarchical protocol's
    /// overlay relaxation: like a churn re-arrival, the new phase grants
    /// a fresh single-transmission allowance. All phases share one
    /// interaction budget ([`TrialConfig::max_interactions`]); the trial
    /// terminates iff every phase terminated within it, and
    /// `data_conserved` checks the family's conservation criterion on the
    /// sink's final aggregate (the exact origin cover for [`IdSet`]).
    ///
    /// # Panics
    ///
    /// Panics if `spec` is not knowledge-free, if the config carries a
    /// fault plan or requests the cost function, or if
    /// `target_cluster_size` (or the aggregator count) is below the
    /// scenario's minimum node count.
    #[allow(clippy::too_many_arguments)]
    pub fn run_hierarchical_with<D>(
        &mut self,
        spec: AlgorithmSpec,
        scenario: &Scenario,
        n: usize,
        target_cluster_size: usize,
        trial_seed: u64,
        config: &TrialConfig,
        family: &D,
    ) -> TrialResult
    where
        D: DatumFamily<Agg = A>,
    {
        assert!(
            !config.compute_cost,
            "the paper's cost function needs the materialised sequence; \
             hierarchical trials cannot compute it"
        );
        assert!(
            config.fault.is_none(),
            "fault plans run on the flat paths; the hierarchical tier is \
             fault-free by contract"
        );
        assert!(
            config.byzantine.is_none(),
            "byzantine plans run on the audited flat paths; the \
             hierarchical tier is honest by contract"
        );
        assert!(
            spec.instantiate_online().is_some(),
            "{spec} requires {} knowledge and cannot run hierarchically; \
             materialise the source and use TrialRunner::run",
            spec.knowledge()
        );
        let sink = config.sink;
        let seeds = SeedSequence::new(trial_seed);
        let plan = ClusterPlan::elect(n, sink, target_cluster_size, seeds.seed(HIER_ELECT_LABEL));
        let need = scenario.min_nodes();
        assert!(
            plan.min_cluster_size() == 1 || plan.min_cluster_size() >= need,
            "scenario '{scenario}' needs at least {need} nodes per phase, but the \
             hierarchy elected a cluster of {} — raise Sweep::cluster_size",
            plan.min_cluster_size()
        );
        assert!(
            plan.cluster_count() + 1 >= need,
            "scenario '{scenario}' needs at least {need} nodes per phase, but the \
             final aggregator phase has only {} — lower Sweep::cluster_size",
            plan.cluster_count() + 1
        );

        let mut remaining = config
            .max_interactions
            .unwrap_or(EngineConfig::default().max_interactions);
        let mut interactions = 0u64;
        let mut transmissions = 0u64;
        let mut ignored = 0u64;
        let mut all_terminated = true;
        let cluster_seeds = seeds.child(HIER_CLUSTER_LABEL);
        let mut aggregates: Vec<A> = Vec::with_capacity(plan.cluster_count());
        for c in 0..plan.cluster_count() {
            let members = plan.cluster(c);
            if members.len() == 1 {
                // A lone aggregator has nothing to gather locally.
                aggregates.push(family.initial(members[0]));
                continue;
            }
            let mut source = scenario.source(members.len(), cluster_seeds.seed(c as u64));
            let stats = self.run_phase(spec, source.as_mut(), members.len(), remaining, |v| {
                family.initial(members[v.index()])
            });
            remaining = remaining.saturating_sub(stats.interactions_processed);
            interactions += stats.interactions_processed;
            transmissions += stats.transmissions;
            ignored += stats.ignored_decisions;
            all_terminated &= stats.terminated();
            aggregates.push(
                self.engine
                    .state()
                    .data_of(NodeId(0))
                    .cloned()
                    .expect("the local sink of a fault-free phase always owns data"),
            );
        }

        // Final phase: local 0 is the global sink, local j + 1 carries
        // cluster j's aggregate.
        let final_n = plan.cluster_count() + 1;
        let mut source = scenario.source(final_n, seeds.seed(HIER_FINAL_LABEL));
        let stats = self.run_phase(spec, source.as_mut(), final_n, remaining, |v| {
            if v.index() == 0 {
                family.initial(sink)
            } else {
                aggregates[v.index() - 1].clone()
            }
        });
        interactions += stats.interactions_processed;
        transmissions += stats.transmissions;
        ignored += stats.ignored_decisions;
        all_terminated &= stats.terminated();

        let sink_data = self.engine.state().data_of(NodeId(0));
        let data_conserved =
            all_terminated && sink_data.is_some_and(|data| family.conserved(data, n));
        let aggregate = sink_data.and_then(|data| family.summary(data));
        TrialResult {
            algorithm: spec.label().to_string(),
            n,
            // Phases run back to back on one interaction clock: the
            // trial's termination index is the last interaction of the
            // final phase.
            termination_time: (all_terminated && interactions > 0)
                .then(|| interactions - 1)
                .or_else(|| all_terminated.then_some(0)),
            interactions_processed: interactions,
            transmissions: transmissions as usize,
            ignored_decisions: ignored,
            data_conserved,
            completion: if data_conserved {
                Completion::Aggregated
            } else {
                Completion::Starved
            },
            faults: FaultTally::default(),
            cost: None,
            aggregate,
            verdict: None,
        }
    }

    /// One phase of a hierarchical trial: a complete fault-free streamed
    /// execution over `local_n` nodes (local sink 0) with at most `budget`
    /// interactions, seeding each local node's datum via `initial_data`.
    fn run_phase<S, F>(
        &mut self,
        spec: AlgorithmSpec,
        source: &mut S,
        local_n: usize,
        budget: u64,
        initial_data: F,
    ) -> RunStats
    where
        S: InteractionSource + ?Sized,
        F: FnMut(NodeId) -> A,
    {
        debug_assert!(local_n >= 2);
        let mut algorithm = spec
            .instantiate_online()
            .expect("checked by run_hierarchical");
        self.engine
            .run(
                algorithm.as_mut(),
                source,
                NodeId(0),
                initial_data,
                EngineConfig::sweep(budget),
                &mut DiscardTransmissions,
            )
            .expect("the provided algorithms never emit structurally invalid decisions")
    }

    /// Packages the engine counters into a [`TrialResult`]; see
    /// [`finish_trial_with`].
    fn finish_with<D>(
        &self,
        spec: AlgorithmSpec,
        family: &D,
        stats: RunStats,
        cost: Option<Cost>,
    ) -> TrialResult
    where
        D: DatumFamily<Agg = A>,
    {
        finish_trial_with(spec, &self.engine, family, stats, cost)
    }
}

/// Packages the engine counters (plus the data-conservation check read
/// off the engine's final state) into a [`TrialResult`], for the default
/// exact-origins family; see [`finish_trial_with`].
///
/// Public so external drivers of the resumable engine surface (notably
/// `doda-service` sessions finalising a [`doda_core::RunStats`] from
/// [`doda_core::Engine::finish_run`]) construct results byte-identical to
/// the ones [`TrialRunner`] and [`crate::Sweep`] produce.
pub fn finish_trial(
    spec: AlgorithmSpec,
    engine: &Engine<IdSet>,
    stats: RunStats,
    cost: Option<Cost>,
) -> TrialResult {
    finish_trial_with(spec, engine, &ExactOrigins, stats, cost)
}

/// Packages the engine counters (plus the family's data-conservation
/// check read off the engine's final state) into a [`TrialResult`]. The
/// generic form of [`finish_trial`].
///
/// Conservation under faults: at termination, the sink's aggregate merged
/// with the lost and recovered bins must account for every origin, as far
/// as the family can tell ([`DatumFamily::conserved`]) — a datum may be
/// aggregated or destroyed by a fault, but never silently dropped. The
/// exact-origins family reduces to the classic "sink covers every
/// origin"; fault-free trials have empty bins.
pub fn finish_trial_with<D>(
    spec: AlgorithmSpec,
    engine: &Engine<D::Agg>,
    family: &D,
    stats: RunStats,
    cost: Option<Cost>,
) -> TrialResult
where
    D: DatumFamily,
{
    let state = engine.state();
    let data_conserved = stats.terminated()
        && state.data_of(stats.sink).is_some_and(|data| {
            let mut accounted = data.clone();
            if let Some(lost) = state.lost_data() {
                accounted.merge(lost.clone());
            }
            if let Some(recovered) = state.recovered_data() {
                accounted.merge(recovered.clone());
            }
            family.conserved(&accounted, stats.node_count)
        });
    let aggregate = state
        .data_of(stats.sink)
        .and_then(|data| family.summary(data));
    TrialResult {
        algorithm: spec.label().to_string(),
        n: stats.node_count,
        termination_time: stats.termination_time,
        interactions_processed: stats.interactions_processed,
        transmissions: stats.transmissions as usize,
        ignored_decisions: stats.ignored_decisions,
        data_conserved,
        completion: stats.completion,
        faults: stats.faults,
        cost,
        aggregate,
        verdict: None,
    }
}

/// Packages one retired lane's counters into a [`TrialResult`].
///
/// The lane tier's restrictions make the scalar-only fields constants:
/// fault-free knowledge-free trials never ignore a decision, and the sink
/// (which never transmits) holds every origin exactly when it is the sole
/// owner — so `data_conserved` coincides with termination and completion
/// is `Aggregated` or `Starved`, never `AggregatedSurvivors`.
fn finish_lane(spec: AlgorithmSpec, stats: LaneRunStats) -> TrialResult {
    let terminated = stats.terminated();
    TrialResult {
        algorithm: spec.label().to_string(),
        n: stats.node_count,
        termination_time: stats.termination_time,
        interactions_processed: stats.interactions_processed,
        transmissions: stats.transmissions as usize,
        ignored_decisions: 0,
        data_conserved: terminated,
        completion: if terminated {
            Completion::Aggregated
        } else {
            Completion::Starved
        },
        faults: FaultTally::default(),
        cost: None,
        aggregate: None,
        verdict: None,
    }
}

/// Runs `spec` over a concrete, pre-materialised sequence with fresh
/// scratch. Convenience wrapper over [`TrialRunner`] for one-off trials.
///
/// # Panics
///
/// Panics if the algorithm produces a structurally invalid decision (this
/// would be a bug in the algorithm implementation, not a property of the
/// input).
pub fn run_trial_on_sequence(
    spec: AlgorithmSpec,
    seq: &InteractionSequence,
    config: &TrialConfig,
) -> TrialResult {
    TrialRunner::new().run(spec, seq, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_workloads::{UniformWorkload, Workload};

    #[test]
    fn gathering_trial_terminates_and_conserves_data() {
        let seq = UniformWorkload::new(12).generate(2_000, 5);
        let result = run_trial_on_sequence(
            AlgorithmSpec::Gathering,
            &seq,
            &TrialConfig {
                compute_cost: true,
                ..TrialConfig::default()
            },
        );
        assert!(result.terminated());
        assert!(result.data_conserved);
        assert_eq!(result.transmissions, 11);
        assert!(result.interactions_to_completion().unwrap() >= 11.0);
        assert!(result.cost.is_some());
    }

    #[test]
    fn offline_beats_or_matches_every_online_algorithm_per_sequence() {
        let seq = UniformWorkload::new(10).generate(3_000, 11);
        let config = TrialConfig::default();
        let offline = run_trial_on_sequence(AlgorithmSpec::OfflineOptimal, &seq, &config);
        assert!(offline.terminated());
        for spec in [
            AlgorithmSpec::Waiting,
            AlgorithmSpec::Gathering,
            AlgorithmSpec::WaitingGreedy { tau: None },
        ] {
            let result = run_trial_on_sequence(spec, &seq, &config);
            if let (Some(on), Some(off)) = (result.termination_time, offline.termination_time) {
                assert!(
                    off <= on,
                    "{spec} finished at {on} before the offline optimum {off}"
                );
            }
        }
    }

    #[test]
    fn too_short_sequence_reports_non_termination() {
        let seq = UniformWorkload::new(10).generate(5, 3);
        let result = run_trial_on_sequence(AlgorithmSpec::Waiting, &seq, &TrialConfig::default());
        assert!(!result.terminated());
        assert_eq!(result.interactions_to_completion(), None);
        assert!(!result.data_conserved);
    }

    #[test]
    fn disconnected_spanning_tree_trial_is_reported_not_panicking() {
        let seq = doda_core::InteractionSequence::from_pairs(5, vec![(1, 2), (1, 2), (3, 4)]);
        let result =
            run_trial_on_sequence(AlgorithmSpec::SpanningTree, &seq, &TrialConfig::default());
        assert!(!result.terminated());
        assert_eq!(result.interactions_processed, 0);
    }

    #[test]
    fn reused_runner_matches_fresh_runs() {
        let config = TrialConfig::default();
        let mut runner = TrialRunner::new();
        // Varying n across consecutive runs exercises scratch resizing.
        for (n, seed) in [(8usize, 1u64), (12, 2), (6, 3), (12, 4)] {
            let seq = UniformWorkload::new(n).generate(8 * n * n, seed);
            for spec in [
                AlgorithmSpec::Gathering,
                AlgorithmSpec::Waiting,
                AlgorithmSpec::WaitingGreedy { tau: None },
            ] {
                let reused = runner.run(spec, &seq, &config);
                let fresh = run_trial_on_sequence(spec, &seq, &config);
                assert_eq!(reused, fresh, "{spec} diverged at n={n}, seed={seed}");
            }
        }
    }

    #[test]
    fn explicit_interaction_budget_is_respected() {
        let seq = UniformWorkload::new(8).generate(5_000, 1);
        let result = run_trial_on_sequence(
            AlgorithmSpec::Waiting,
            &seq,
            &TrialConfig {
                max_interactions: Some(10),
                ..TrialConfig::default()
            },
        );
        assert!(result.interactions_processed <= 10);
    }

    #[test]
    fn streamed_trial_matches_materialized_trial() {
        let horizon = 3_000usize;
        let mut runner = TrialRunner::new();
        for (n, seed) in [(8usize, 1u64), (12, 2), (6, 3)] {
            let workload = UniformWorkload::new(n);
            for spec in [AlgorithmSpec::Gathering, AlgorithmSpec::Waiting] {
                let seq = workload.generate(horizon, seed);
                let materialized = runner.run(spec, &seq, &TrialConfig::default());
                let streamed = runner.run_streamed(
                    spec,
                    workload.source(seed).as_mut(),
                    &TrialConfig {
                        max_interactions: Some(horizon as u64),
                        ..TrialConfig::default()
                    },
                );
                assert_eq!(
                    streamed, materialized,
                    "{spec} diverged at n={n}, seed={seed}"
                );
            }
        }
    }

    #[test]
    fn streamed_trial_runs_adaptive_adversaries() {
        let mut runner = TrialRunner::new();
        let config = TrialConfig {
            max_interactions: Some(5_000),
            ..TrialConfig::default()
        };
        let mut isolator = doda_adversary::IsolatorAdversary::new(16);
        let gathering = runner.run_streamed(AlgorithmSpec::Gathering, &mut isolator, &config);
        assert!(gathering.terminated());
        assert!(gathering.data_conserved);
        assert_eq!(gathering.transmissions, 15);

        let mut isolator = doda_adversary::IsolatorAdversary::new(16);
        let waiting = runner.run_streamed(AlgorithmSpec::Waiting, &mut isolator, &config);
        assert!(!waiting.terminated());
        assert_eq!(waiting.interactions_processed, 5_000);
    }

    #[test]
    fn faulted_streamed_trial_matches_faulted_materialized_trial() {
        use doda_core::fault::FaultProfile;

        let horizon = 4_000usize;
        let mut runner = TrialRunner::new();
        let injection = FaultInjection {
            profile: FaultProfile {
                loss: 0.1,
                ..FaultProfile::crash(0.001)
            },
            seed: 0xFA7,
        };
        for (n, seed) in [(8usize, 1u64), (12, 2)] {
            let workload = UniformWorkload::new(n);
            for spec in [AlgorithmSpec::Gathering, AlgorithmSpec::Waiting] {
                let seq = workload.generate(horizon, seed);
                let config = TrialConfig {
                    max_interactions: Some(horizon as u64),
                    fault: Some(injection),
                    ..TrialConfig::default()
                };
                let materialized = runner.run(spec, &seq, &config);
                let streamed = runner.run_streamed(spec, workload.source(seed).as_mut(), &config);
                assert_eq!(
                    streamed, materialized,
                    "{spec} diverged under faults at n={n}, seed={seed}"
                );
            }
        }
    }

    #[test]
    fn faulted_trials_conserve_data_and_classify_completion() {
        use doda_core::fault::FaultProfile;
        use doda_core::outcome::Completion;

        let mut runner = TrialRunner::new();
        let workload = UniformWorkload::new(16);
        let mut survivor_trials = 0;
        for seed in 0..8u64 {
            let config = TrialConfig {
                max_interactions: Some(40_000),
                fault: Some(FaultInjection {
                    profile: FaultProfile::crash(0.005),
                    seed: seed ^ 0xFA,
                }),
                ..TrialConfig::default()
            };
            let result = runner.run_streamed(
                AlgorithmSpec::Gathering,
                workload.source(seed).as_mut(),
                &config,
            );
            assert!(result.terminated(), "seed {seed}");
            // Conservation holds whether or not data was lost.
            assert!(result.data_conserved, "seed {seed}");
            match result.completion {
                Completion::Aggregated => assert_eq!(result.faults.data_lost, 0),
                Completion::AggregatedSurvivors => {
                    assert!(result.faults.data_lost > 0);
                    assert!(!result.fully_aggregated());
                    survivor_trials += 1;
                }
                Completion::Starved => panic!("uniform contacts cannot starve Gathering"),
            }
        }
        assert!(survivor_trials > 0, "crashes must cost data in some trials");
    }

    #[test]
    fn byzantine_streamed_trial_matches_byzantine_materialized_trial() {
        use doda_core::byzantine::ByzantineProfile;

        let horizon = 4_000usize;
        let mut runner = TrialRunner::new();
        let injection = ByzantineInjection {
            profile: ByzantineProfile::forge(0.25),
            seed: 0xB12,
        };
        for (n, seed) in [(8usize, 1u64), (12, 2)] {
            let workload = UniformWorkload::new(n);
            for spec in [AlgorithmSpec::Gathering, AlgorithmSpec::Waiting] {
                let seq = workload.generate(horizon, seed);
                let config = TrialConfig {
                    max_interactions: Some(horizon as u64),
                    byzantine: Some(injection),
                    ..TrialConfig::default()
                };
                let materialized = runner.run(spec, &seq, &config);
                let streamed = runner.run_streamed(spec, workload.source(seed).as_mut(), &config);
                assert_eq!(
                    streamed, materialized,
                    "{spec} diverged under byzantine nodes at n={n}, seed={seed}"
                );
                assert!(streamed.verdict.is_some(), "audited trials carry a verdict");
            }
        }
    }

    #[test]
    fn zero_fraction_byzantine_trial_is_transparent() {
        let horizon = 3_000usize;
        let mut runner = TrialRunner::new();
        let workload = UniformWorkload::new(10);
        for seed in [1u64, 2, 3] {
            let honest_config = TrialConfig {
                max_interactions: Some(horizon as u64),
                ..TrialConfig::default()
            };
            let audited_config = TrialConfig {
                byzantine: Some(ByzantineInjection {
                    profile: doda_core::byzantine::ByzantineProfile::forge(0.0),
                    seed: seed ^ 0xB2,
                }),
                ..honest_config
            };
            let honest = runner.run_streamed(
                AlgorithmSpec::Gathering,
                workload.source(seed).as_mut(),
                &honest_config,
            );
            let mut audited = runner.run_streamed(
                AlgorithmSpec::Gathering,
                workload.source(seed).as_mut(),
                &audited_config,
            );
            assert_eq!(audited.verdict, Some(Verdict::Clean), "seed {seed}");
            audited.verdict = None;
            assert_eq!(
                audited, honest,
                "zero liars must be transparent, seed {seed}"
            );
        }
    }

    #[test]
    fn forging_byzantine_trial_composes_with_faults() {
        use doda_core::fault::FaultProfile;

        let mut runner = TrialRunner::new();
        let workload = UniformWorkload::new(16);
        let config = TrialConfig {
            max_interactions: Some(40_000),
            fault: Some(FaultInjection {
                profile: FaultProfile::crash(0.002),
                seed: 0xFA,
            }),
            byzantine: Some(ByzantineInjection {
                profile: doda_core::byzantine::ByzantineProfile::forge(0.25),
                seed: 0xB2,
            }),
            ..TrialConfig::default()
        };
        let result = runner.run_streamed(
            AlgorithmSpec::Gathering,
            workload.source(7).as_mut(),
            &config,
        );
        // Both planes ran: the schedule saw the fault stream, and the
        // audit reconciled the liars' transfers.
        assert!(result.verdict.is_some());
        assert!(result.terminated());
    }

    #[test]
    #[should_panic(expected = "the lane tier is honest by contract")]
    fn lane_batch_rejects_byzantine_plans() {
        let workload = UniformWorkload::new(6);
        let mut sources = [workload.source(1)];
        let _ = TrialRunner::new().run_lane_batch(
            AlgorithmSpec::Gathering,
            &mut sources,
            &TrialConfig {
                byzantine: Some(ByzantineInjection {
                    profile: doda_core::byzantine::ByzantineProfile::forge(0.5),
                    seed: 1,
                }),
                ..TrialConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "cannot run streamed")]
    fn streamed_trial_rejects_knowledge_based_specs() {
        let workload = UniformWorkload::new(6);
        let _ = TrialRunner::new().run_streamed(
            AlgorithmSpec::OfflineOptimal,
            workload.source(0).as_mut(),
            &TrialConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "cost is undefined")]
    fn faulted_trial_rejects_cost_computation() {
        use doda_core::fault::FaultProfile;

        let seq = UniformWorkload::new(6).generate(500, 1);
        let _ = TrialRunner::new().run(
            AlgorithmSpec::Gathering,
            &seq,
            &TrialConfig {
                compute_cost: true,
                fault: Some(FaultInjection {
                    profile: FaultProfile::crash(0.01),
                    seed: 1,
                }),
                ..TrialConfig::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "cost function needs the materialised sequence")]
    fn streamed_trial_rejects_cost_computation() {
        let workload = UniformWorkload::new(6);
        let _ = TrialRunner::new().run_streamed(
            AlgorithmSpec::Gathering,
            workload.source(0).as_mut(),
            &TrialConfig {
                compute_cost: true,
                ..TrialConfig::default()
            },
        );
    }
}
