//! Single-trial execution and metrics.
//!
//! [`TrialRunner`] is the sweep-facing entry point: it owns a reusable
//! [`Engine`] so that running thousands of trials reuses one set of
//! scratch allocations. [`TrialRunner::run_streamed`] is the primary path
//! — it drives a knowledge-free algorithm straight off an
//! [`InteractionSource`] in `O(n)` memory; [`TrialRunner::run`] executes
//! over a materialised sequence for the algorithms whose oracles need the
//! future. [`run_trial_on_sequence`] remains as a stateless convenience
//! for one-off trials.

use doda_core::cost::{cost_of_duration, Cost};
use doda_core::data::IdSet;
use doda_core::engine::{DiscardTransmissions, Engine, EngineConfig, RunStats};
use doda_core::{InteractionSequence, InteractionSource, Time};
use doda_graph::NodeId;

use crate::spec::AlgorithmSpec;

/// Configuration of a single trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialConfig {
    /// The sink node.
    pub sink: NodeId,
    /// Interaction budget of the engine. For materialised trials `None`
    /// defaults to the sequence length (an algorithm that cannot finish on
    /// the sequence is reported as non-terminated); for streamed trials
    /// over an infinite source `None` falls back to the engine's default
    /// budget, so sweeps should always set it explicitly.
    pub max_interactions: Option<u64>,
    /// Whether to compute the paper's cost function for the outcome (adds
    /// `O(len log len)` work per convergecast, so sweeps usually disable it).
    pub compute_cost: bool,
    /// Cap on the number of successive convergecasts examined by the cost
    /// computation.
    pub max_convergecasts: u64,
}

impl Default for TrialConfig {
    fn default() -> Self {
        TrialConfig {
            sink: NodeId(0),
            max_interactions: None,
            compute_cost: false,
            max_convergecasts: 64,
        }
    }
}

/// Metrics extracted from one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Number of nodes.
    pub n: usize,
    /// `Some(t)`: the aggregation completed at interaction index `t`.
    pub termination_time: Option<Time>,
    /// Number of interactions the engine processed.
    pub interactions_processed: u64,
    /// Number of transmissions performed.
    pub transmissions: usize,
    /// Number of `Transmit` decisions ignored by the engine.
    pub ignored_decisions: u64,
    /// `true` iff the sink's final data covers every origin (always checked;
    /// an algorithm with `false` here and `termination_time = Some(..)`
    /// would indicate a model violation).
    pub data_conserved: bool,
    /// The paper's cost, when requested.
    pub cost: Option<Cost>,
}

impl TrialResult {
    /// Returns `true` if the aggregation completed.
    pub fn terminated(&self) -> bool {
        self.termination_time.is_some()
    }

    /// The number of interactions until completion, as a float for
    /// statistics (`None` when the trial did not terminate). The count is
    /// `termination_time + 1` since times are 0-based indices.
    pub fn interactions_to_completion(&self) -> Option<f64> {
        self.termination_time.map(|t| (t + 1) as f64)
    }
}

/// A reusable trial executor.
///
/// Holds the zero-allocation [`Engine`] scratch so that consecutive trials
/// (the Monte-Carlo sweeps of Sections 4–5) reuse one set of allocations.
/// The sharded batch runner keeps one `TrialRunner` per worker thread.
#[derive(Debug, Default)]
pub struct TrialRunner {
    engine: Engine<IdSet>,
}

impl TrialRunner {
    /// Creates a runner with empty scratch.
    pub fn new() -> Self {
        TrialRunner {
            engine: Engine::new(),
        }
    }

    /// Runs `spec` over a concrete, pre-materialised sequence, reusing
    /// this runner's scratch.
    ///
    /// # Panics
    ///
    /// Panics if the algorithm produces a structurally invalid decision
    /// (this would be a bug in the algorithm implementation, not a
    /// property of the input).
    pub fn run(
        &mut self,
        spec: AlgorithmSpec,
        seq: &InteractionSequence,
        config: &TrialConfig,
    ) -> TrialResult {
        let n = seq.node_count();
        let sink = config.sink;
        let max_interactions = config.max_interactions.unwrap_or(seq.len() as u64);
        let engine_config = EngineConfig::sweep(max_interactions);
        let Some(mut algorithm) = spec.instantiate(seq, sink) else {
            // Spanning tree over a disconnected underlying graph: no
            // algorithm could aggregate on this sequence; report a
            // non-terminated trial.
            return TrialResult {
                algorithm: spec.label().to_string(),
                n,
                termination_time: None,
                interactions_processed: 0,
                transmissions: 0,
                ignored_decisions: 0,
                data_conserved: false,
                cost: None,
            };
        };
        let stats = self
            .engine
            .run(
                algorithm.as_mut(),
                &mut seq.stream(false),
                sink,
                IdSet::singleton,
                engine_config,
                &mut DiscardTransmissions,
            )
            .expect("the provided algorithms never emit structurally invalid decisions");
        let cost = config
            .compute_cost
            .then(|| cost_of_duration(seq, sink, stats.termination_time, config.max_convergecasts));
        self.finish(spec, stats, cost)
    }

    /// Runs `spec` **streamed**: the engine pulls interactions straight
    /// from `source` — no sequence is ever materialised, so the trial runs
    /// in `O(n)` memory at any horizon and the source may be adaptive.
    ///
    /// The engine's budget is `config.max_interactions` (sources are
    /// usually infinite, so sweeps must set it). Streamed trials never
    /// compute the paper's cost function — it is defined over a concrete
    /// sequence — and report `cost: None`.
    ///
    /// # Panics
    ///
    /// Panics if `spec` requires knowledge of the future (check
    /// [`AlgorithmSpec::requires_materialization`] first; such specs must
    /// materialise the source and go through [`TrialRunner::run`]), if
    /// `config.compute_cost` is set, or if the algorithm produces a
    /// structurally invalid decision.
    pub fn run_streamed<S>(
        &mut self,
        spec: AlgorithmSpec,
        source: &mut S,
        config: &TrialConfig,
    ) -> TrialResult
    where
        S: InteractionSource + ?Sized,
    {
        assert!(
            !config.compute_cost,
            "the paper's cost function needs the materialised sequence; \
             streamed trials cannot compute it"
        );
        let sink = config.sink;
        let max_interactions = config
            .max_interactions
            .unwrap_or(EngineConfig::default().max_interactions);
        let Some(mut algorithm) = spec.instantiate_online() else {
            panic!(
                "{spec} requires {} knowledge and cannot run streamed; \
                 materialise the source and use TrialRunner::run",
                spec.knowledge()
            );
        };
        let stats = self
            .engine
            .run(
                algorithm.as_mut(),
                source,
                sink,
                IdSet::singleton,
                EngineConfig::sweep(max_interactions),
                &mut DiscardTransmissions,
            )
            .expect("the provided algorithms never emit structurally invalid decisions");
        self.finish(spec, stats, None)
    }

    /// Packages the engine counters (plus the data-conservation check read
    /// off the engine's final state) into a [`TrialResult`].
    fn finish(&self, spec: AlgorithmSpec, stats: RunStats, cost: Option<Cost>) -> TrialResult {
        let data_conserved = stats.terminated()
            && self
                .engine
                .state()
                .data_of(stats.sink)
                .is_some_and(|data| data.covers_all(stats.node_count));
        TrialResult {
            algorithm: spec.label().to_string(),
            n: stats.node_count,
            termination_time: stats.termination_time,
            interactions_processed: stats.interactions_processed,
            transmissions: stats.transmissions as usize,
            ignored_decisions: stats.ignored_decisions,
            data_conserved,
            cost,
        }
    }
}

/// Runs `spec` over a concrete, pre-materialised sequence with fresh
/// scratch. Convenience wrapper over [`TrialRunner`] for one-off trials.
///
/// # Panics
///
/// Panics if the algorithm produces a structurally invalid decision (this
/// would be a bug in the algorithm implementation, not a property of the
/// input).
pub fn run_trial_on_sequence(
    spec: AlgorithmSpec,
    seq: &InteractionSequence,
    config: &TrialConfig,
) -> TrialResult {
    TrialRunner::new().run(spec, seq, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_workloads::{UniformWorkload, Workload};

    #[test]
    fn gathering_trial_terminates_and_conserves_data() {
        let seq = UniformWorkload::new(12).generate(2_000, 5);
        let result = run_trial_on_sequence(
            AlgorithmSpec::Gathering,
            &seq,
            &TrialConfig {
                compute_cost: true,
                ..TrialConfig::default()
            },
        );
        assert!(result.terminated());
        assert!(result.data_conserved);
        assert_eq!(result.transmissions, 11);
        assert!(result.interactions_to_completion().unwrap() >= 11.0);
        assert!(result.cost.is_some());
    }

    #[test]
    fn offline_beats_or_matches_every_online_algorithm_per_sequence() {
        let seq = UniformWorkload::new(10).generate(3_000, 11);
        let config = TrialConfig::default();
        let offline = run_trial_on_sequence(AlgorithmSpec::OfflineOptimal, &seq, &config);
        assert!(offline.terminated());
        for spec in [
            AlgorithmSpec::Waiting,
            AlgorithmSpec::Gathering,
            AlgorithmSpec::WaitingGreedy { tau: None },
        ] {
            let result = run_trial_on_sequence(spec, &seq, &config);
            if let (Some(on), Some(off)) = (result.termination_time, offline.termination_time) {
                assert!(
                    off <= on,
                    "{spec} finished at {on} before the offline optimum {off}"
                );
            }
        }
    }

    #[test]
    fn too_short_sequence_reports_non_termination() {
        let seq = UniformWorkload::new(10).generate(5, 3);
        let result = run_trial_on_sequence(AlgorithmSpec::Waiting, &seq, &TrialConfig::default());
        assert!(!result.terminated());
        assert_eq!(result.interactions_to_completion(), None);
        assert!(!result.data_conserved);
    }

    #[test]
    fn disconnected_spanning_tree_trial_is_reported_not_panicking() {
        let seq = doda_core::InteractionSequence::from_pairs(5, vec![(1, 2), (1, 2), (3, 4)]);
        let result =
            run_trial_on_sequence(AlgorithmSpec::SpanningTree, &seq, &TrialConfig::default());
        assert!(!result.terminated());
        assert_eq!(result.interactions_processed, 0);
    }

    #[test]
    fn reused_runner_matches_fresh_runs() {
        let config = TrialConfig::default();
        let mut runner = TrialRunner::new();
        // Varying n across consecutive runs exercises scratch resizing.
        for (n, seed) in [(8usize, 1u64), (12, 2), (6, 3), (12, 4)] {
            let seq = UniformWorkload::new(n).generate(8 * n * n, seed);
            for spec in [
                AlgorithmSpec::Gathering,
                AlgorithmSpec::Waiting,
                AlgorithmSpec::WaitingGreedy { tau: None },
            ] {
                let reused = runner.run(spec, &seq, &config);
                let fresh = run_trial_on_sequence(spec, &seq, &config);
                assert_eq!(reused, fresh, "{spec} diverged at n={n}, seed={seed}");
            }
        }
    }

    #[test]
    fn explicit_interaction_budget_is_respected() {
        let seq = UniformWorkload::new(8).generate(5_000, 1);
        let result = run_trial_on_sequence(
            AlgorithmSpec::Waiting,
            &seq,
            &TrialConfig {
                max_interactions: Some(10),
                ..TrialConfig::default()
            },
        );
        assert!(result.interactions_processed <= 10);
    }

    #[test]
    fn streamed_trial_matches_materialized_trial() {
        let horizon = 3_000usize;
        let mut runner = TrialRunner::new();
        for (n, seed) in [(8usize, 1u64), (12, 2), (6, 3)] {
            let workload = UniformWorkload::new(n);
            for spec in [AlgorithmSpec::Gathering, AlgorithmSpec::Waiting] {
                let seq = workload.generate(horizon, seed);
                let materialized = runner.run(spec, &seq, &TrialConfig::default());
                let streamed = runner.run_streamed(
                    spec,
                    workload.source(seed).as_mut(),
                    &TrialConfig {
                        max_interactions: Some(horizon as u64),
                        ..TrialConfig::default()
                    },
                );
                assert_eq!(
                    streamed, materialized,
                    "{spec} diverged at n={n}, seed={seed}"
                );
            }
        }
    }

    #[test]
    fn streamed_trial_runs_adaptive_adversaries() {
        let mut runner = TrialRunner::new();
        let config = TrialConfig {
            max_interactions: Some(5_000),
            ..TrialConfig::default()
        };
        let mut isolator = doda_adversary::IsolatorAdversary::new(16);
        let gathering = runner.run_streamed(AlgorithmSpec::Gathering, &mut isolator, &config);
        assert!(gathering.terminated());
        assert!(gathering.data_conserved);
        assert_eq!(gathering.transmissions, 15);

        let mut isolator = doda_adversary::IsolatorAdversary::new(16);
        let waiting = runner.run_streamed(AlgorithmSpec::Waiting, &mut isolator, &config);
        assert!(!waiting.terminated());
        assert_eq!(waiting.interactions_processed, 5_000);
    }

    #[test]
    #[should_panic(expected = "cannot run streamed")]
    fn streamed_trial_rejects_knowledge_based_specs() {
        let workload = UniformWorkload::new(6);
        let _ = TrialRunner::new().run_streamed(
            AlgorithmSpec::OfflineOptimal,
            workload.source(0).as_mut(),
            &TrialConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "cost function needs the materialised sequence")]
    fn streamed_trial_rejects_cost_computation() {
        let workload = UniformWorkload::new(6);
        let _ = TrialRunner::new().run_streamed(
            AlgorithmSpec::Gathering,
            workload.source(0).as_mut(),
            &TrialConfig {
                compute_cost: true,
                ..TrialConfig::default()
            },
        );
    }
}
