//! Algorithm specifications.
//!
//! Algorithms differ in the knowledge they require (nothing, `meetTime`,
//! the underlying graph, their own future, or the full sequence), so they
//! cannot all be constructed before the adversary's sequence is known.
//! [`AlgorithmSpec`] captures *which* algorithm to run; instantiation takes
//! the concrete sequence and builds the required oracles.

use doda_core::algorithms::{
    FutureBroadcast, Gathering, OfflineOptimal, SpanningTreeAggregation, Waiting, WaitingGreedy,
};
use doda_core::knowledge::{FullKnowledge, MeetTimeOracle};
use doda_core::{DodaAlgorithm, InteractionSequence, Time};
use doda_graph::NodeId;

/// A named DODA algorithm together with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// [`Waiting`] — no knowledge.
    Waiting,
    /// [`Gathering`] — no knowledge.
    Gathering,
    /// [`WaitingGreedy`] with an explicit `τ`, or the paper's recommended
    /// `τ = n^{3/2}√(log n)` when `None`.
    WaitingGreedy {
        /// Explicit horizon, or `None` for the recommended value.
        tau: Option<Time>,
    },
    /// [`SpanningTreeAggregation`] over the sequence's underlying graph.
    SpanningTree,
    /// [`FutureBroadcast`] — own-future knowledge.
    FutureBroadcast,
    /// [`OfflineOptimal`] — full knowledge.
    OfflineOptimal,
}

impl AlgorithmSpec {
    /// All specs, in the order used by comparison tables.
    pub fn all() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::OfflineOptimal,
            AlgorithmSpec::WaitingGreedy { tau: None },
            AlgorithmSpec::Gathering,
            AlgorithmSpec::Waiting,
            AlgorithmSpec::SpanningTree,
            AlgorithmSpec::FutureBroadcast,
        ]
    }

    /// The specs of the randomized-adversary comparison (Theorems 7–11).
    pub fn randomized_comparison() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::OfflineOptimal,
            AlgorithmSpec::WaitingGreedy { tau: None },
            AlgorithmSpec::Gathering,
            AlgorithmSpec::Waiting,
        ]
    }

    /// A short label used in tables and benchmark ids.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmSpec::Waiting => "Waiting",
            AlgorithmSpec::Gathering => "Gathering",
            AlgorithmSpec::WaitingGreedy { .. } => "WaitingGreedy",
            AlgorithmSpec::SpanningTree => "SpanningTree",
            AlgorithmSpec::FutureBroadcast => "FutureBroadcast",
            AlgorithmSpec::OfflineOptimal => "OfflineOptimal",
        }
    }

    /// The knowledge model the spec corresponds to (for reports).
    pub fn knowledge(&self) -> &'static str {
        match self {
            AlgorithmSpec::Waiting | AlgorithmSpec::Gathering => "none",
            AlgorithmSpec::WaitingGreedy { .. } => "meetTime",
            AlgorithmSpec::SpanningTree => "underlying graph",
            AlgorithmSpec::FutureBroadcast => "own future",
            AlgorithmSpec::OfflineOptimal => "full sequence",
        }
    }

    /// Instantiates the algorithm for a concrete sequence and sink,
    /// building whatever knowledge oracles it needs.
    ///
    /// Returns `None` only for [`AlgorithmSpec::SpanningTree`] when the
    /// sequence's underlying graph is not connected (no spanning tree — and
    /// indeed no aggregation — exists on such a dynamic graph).
    pub fn instantiate(
        &self,
        seq: &InteractionSequence,
        sink: NodeId,
    ) -> Option<Box<dyn DodaAlgorithm>> {
        match self {
            AlgorithmSpec::Waiting => Some(Box::new(Waiting::new())),
            AlgorithmSpec::Gathering => Some(Box::new(Gathering::new())),
            AlgorithmSpec::WaitingGreedy { tau } => {
                let algo = match tau {
                    Some(tau) => WaitingGreedy::new(*tau, MeetTimeOracle::new(seq, sink)),
                    None => WaitingGreedy::with_recommended_tau(seq, sink),
                };
                Some(Box::new(algo))
            }
            AlgorithmSpec::SpanningTree => {
                let underlying = seq.underlying_graph();
                SpanningTreeAggregation::from_underlying_graph(&underlying, sink)
                    .map(|a| Box::new(a) as Box<dyn DodaAlgorithm>)
            }
            AlgorithmSpec::FutureBroadcast => Some(Box::new(FutureBroadcast::new(seq, sink))),
            AlgorithmSpec::OfflineOptimal => Some(Box::new(OfflineOptimal::new(
                &FullKnowledge::new(seq.clone()),
                sink,
            ))),
        }
    }
}

impl std::fmt::Display for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgorithmSpec::WaitingGreedy { tau: Some(tau) } => write!(f, "WaitingGreedy(τ={tau})"),
            other => write!(f, "{}", other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_workloads::{UniformWorkload, Workload};

    #[test]
    fn every_spec_instantiates_on_a_rich_sequence() {
        let seq = UniformWorkload::new(8).generate(600, 3);
        for spec in AlgorithmSpec::all() {
            let algo = spec.instantiate(&seq, NodeId(0));
            assert!(algo.is_some(), "{spec} failed to instantiate");
            assert_eq!(algo.unwrap().name(), spec.label());
            assert!(!spec.knowledge().is_empty());
        }
    }

    #[test]
    fn spanning_tree_requires_connected_underlying_graph() {
        let seq = InteractionSequence::from_pairs(4, vec![(1, 2), (1, 2)]);
        assert!(AlgorithmSpec::SpanningTree
            .instantiate(&seq, NodeId(0))
            .is_none());
        assert!(AlgorithmSpec::Gathering
            .instantiate(&seq, NodeId(0))
            .is_some());
    }

    #[test]
    fn waiting_greedy_tau_override() {
        let seq = UniformWorkload::new(6).generate(200, 1);
        let spec = AlgorithmSpec::WaitingGreedy { tau: Some(42) };
        assert_eq!(spec.to_string(), "WaitingGreedy(τ=42)");
        assert!(spec.instantiate(&seq, NodeId(0)).is_some());
        assert_eq!(
            AlgorithmSpec::WaitingGreedy { tau: None }.to_string(),
            "WaitingGreedy"
        );
    }

    #[test]
    fn comparison_sets_are_subsets_of_all() {
        let all = AlgorithmSpec::all();
        for spec in AlgorithmSpec::randomized_comparison() {
            assert!(all.contains(&spec));
        }
        assert_eq!(all.len(), 6);
    }
}
