//! Algorithm specifications.
//!
//! Algorithms differ in the knowledge they require (nothing, `meetTime`,
//! the underlying graph, their own future, or the full sequence), so they
//! cannot all be constructed before the adversary's sequence is known.
//! [`AlgorithmSpec`] captures *which* algorithm to run;
//! [`AlgorithmSpec::knowledge_requirement`] classifies what the algorithm
//! must see of the future, which decides the execution path:
//!
//! * [`KnowledgeRequirement::None`] algorithms instantiate with
//!   [`AlgorithmSpec::instantiate_online`] and run **streamed** — the
//!   engine pulls interactions straight from the adversary in `O(n)`
//!   memory at any horizon;
//! * every other requirement forces the sweep to **materialise** the
//!   adversary's sequence first ([`AlgorithmSpec::instantiate`]), because
//!   the oracles (`meetTime`, underlying graph, futures, full sequence)
//!   are functions of the future.

use doda_core::algorithms::{
    FutureBroadcast, Gathering, OfflineOptimal, SpanningTreeAggregation, Waiting, WaitingGreedy,
};
use doda_core::knowledge::{FullKnowledge, MeetTimeOracle};
use doda_core::{DodaAlgorithm, InteractionSequence, Time};
use doda_graph::NodeId;

/// The knowledge class an algorithm draws on — and therefore whether a
/// sweep must materialise the adversary's sequence before execution.
///
/// Only [`KnowledgeRequirement::None`] algorithms can run against a live
/// (possibly adaptive) adversary; the other classes need oracles that are
/// functions of the future, so the adversary must commit to a finite
/// sequence first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnowledgeRequirement {
    /// Decides from the current interaction alone: streams in `O(n)`
    /// memory against any adversary, including adaptive ones.
    None,
    /// Needs the `meetTime` oracle (next meeting with the sink).
    MeetTime,
    /// Needs the underlying graph `G̅` of the whole sequence.
    UnderlyingGraph,
    /// Needs each node's own future interactions.
    OwnFuture,
    /// Needs the entire interaction sequence.
    FullSequence,
}

impl KnowledgeRequirement {
    /// `true` iff this requirement can only be satisfied by materialising
    /// the adversary's sequence up front.
    pub fn requires_materialization(self) -> bool {
        self != KnowledgeRequirement::None
    }

    /// The label used in reports and tables.
    pub fn label(self) -> &'static str {
        match self {
            KnowledgeRequirement::None => "none",
            KnowledgeRequirement::MeetTime => "meetTime",
            KnowledgeRequirement::UnderlyingGraph => "underlying graph",
            KnowledgeRequirement::OwnFuture => "own future",
            KnowledgeRequirement::FullSequence => "full sequence",
        }
    }
}

/// A named DODA algorithm together with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmSpec {
    /// [`Waiting`] — no knowledge.
    Waiting,
    /// [`Gathering`] — no knowledge.
    Gathering,
    /// [`WaitingGreedy`] with an explicit `τ`, or the paper's recommended
    /// `τ = n^{3/2}√(log n)` when `None`.
    WaitingGreedy {
        /// Explicit horizon, or `None` for the recommended value.
        tau: Option<Time>,
    },
    /// [`SpanningTreeAggregation`] over the sequence's underlying graph.
    SpanningTree,
    /// [`FutureBroadcast`] — own-future knowledge.
    FutureBroadcast,
    /// [`OfflineOptimal`] — full knowledge.
    OfflineOptimal,
}

impl AlgorithmSpec {
    /// All specs, in the order used by comparison tables.
    pub fn all() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::OfflineOptimal,
            AlgorithmSpec::WaitingGreedy { tau: None },
            AlgorithmSpec::Gathering,
            AlgorithmSpec::Waiting,
            AlgorithmSpec::SpanningTree,
            AlgorithmSpec::FutureBroadcast,
        ]
    }

    /// The specs of the randomized-adversary comparison (Theorems 7–11).
    pub fn randomized_comparison() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::OfflineOptimal,
            AlgorithmSpec::WaitingGreedy { tau: None },
            AlgorithmSpec::Gathering,
            AlgorithmSpec::Waiting,
        ]
    }

    /// A short label used in tables and benchmark ids.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmSpec::Waiting => "Waiting",
            AlgorithmSpec::Gathering => "Gathering",
            AlgorithmSpec::WaitingGreedy { .. } => "WaitingGreedy",
            AlgorithmSpec::SpanningTree => "SpanningTree",
            AlgorithmSpec::FutureBroadcast => "FutureBroadcast",
            AlgorithmSpec::OfflineOptimal => "OfflineOptimal",
        }
    }

    /// The knowledge class the spec's algorithm requires.
    pub fn knowledge_requirement(&self) -> KnowledgeRequirement {
        match self {
            AlgorithmSpec::Waiting | AlgorithmSpec::Gathering => KnowledgeRequirement::None,
            AlgorithmSpec::WaitingGreedy { .. } => KnowledgeRequirement::MeetTime,
            AlgorithmSpec::SpanningTree => KnowledgeRequirement::UnderlyingGraph,
            AlgorithmSpec::FutureBroadcast => KnowledgeRequirement::OwnFuture,
            AlgorithmSpec::OfflineOptimal => KnowledgeRequirement::FullSequence,
        }
    }

    /// `true` iff sweeps must materialise the adversary's sequence to run
    /// this spec (see [`KnowledgeRequirement::requires_materialization`]).
    pub fn requires_materialization(&self) -> bool {
        self.knowledge_requirement().requires_materialization()
    }

    /// The knowledge model the spec corresponds to (for reports).
    pub fn knowledge(&self) -> &'static str {
        self.knowledge_requirement().label()
    }

    /// The branchless lane kernel of this spec, if it has one.
    ///
    /// Exactly the knowledge-free specs have lane kernels: the lane tier
    /// ([`doda_core::LaneEngine`]) executes `Waiting` and `Gathering` as
    /// bitset operations, byte-identical per trial to the scalar engine.
    /// Every other spec needs oracles and returns `None` — sweeps fall
    /// back to the scalar path.
    pub fn lane_algorithm(&self) -> Option<doda_core::LaneAlgorithm> {
        match self {
            AlgorithmSpec::Waiting => Some(doda_core::LaneAlgorithm::Waiting),
            AlgorithmSpec::Gathering => Some(doda_core::LaneAlgorithm::Gathering),
            _ => None,
        }
    }

    /// Instantiates a knowledge-free algorithm — no sequence, no oracles —
    /// ready to run streamed against any [`doda_core::InteractionSource`],
    /// including adaptive adversaries.
    ///
    /// Returns `None` when the spec requires knowledge of the future
    /// (check with [`AlgorithmSpec::requires_materialization`]); such specs
    /// must go through [`AlgorithmSpec::instantiate`] with a materialised
    /// sequence.
    pub fn instantiate_online(&self) -> Option<Box<dyn DodaAlgorithm + Send>> {
        match self {
            AlgorithmSpec::Waiting => Some(Box::new(Waiting::new())),
            AlgorithmSpec::Gathering => Some(Box::new(Gathering::new())),
            _ => None,
        }
    }

    /// Instantiates the algorithm for a concrete sequence and sink,
    /// building whatever knowledge oracles it needs.
    ///
    /// Returns `None` only for [`AlgorithmSpec::SpanningTree`] when the
    /// sequence's underlying graph is not connected (no spanning tree — and
    /// indeed no aggregation — exists on such a dynamic graph).
    pub fn instantiate(
        &self,
        seq: &InteractionSequence,
        sink: NodeId,
    ) -> Option<Box<dyn DodaAlgorithm>> {
        match self {
            AlgorithmSpec::Waiting => Some(Box::new(Waiting::new())),
            AlgorithmSpec::Gathering => Some(Box::new(Gathering::new())),
            AlgorithmSpec::WaitingGreedy { tau } => {
                let algo = match tau {
                    Some(tau) => WaitingGreedy::new(*tau, MeetTimeOracle::new(seq, sink)),
                    None => WaitingGreedy::with_recommended_tau(seq, sink),
                };
                Some(Box::new(algo))
            }
            AlgorithmSpec::SpanningTree => {
                let underlying = seq.underlying_graph();
                SpanningTreeAggregation::from_underlying_graph(&underlying, sink)
                    .map(|a| Box::new(a) as Box<dyn DodaAlgorithm>)
            }
            AlgorithmSpec::FutureBroadcast => Some(Box::new(FutureBroadcast::new(seq, sink))),
            AlgorithmSpec::OfflineOptimal => Some(Box::new(OfflineOptimal::new(
                &FullKnowledge::new(seq.clone()),
                sink,
            ))),
        }
    }
}

impl std::fmt::Display for AlgorithmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgorithmSpec::WaitingGreedy { tau: Some(tau) } => write!(f, "WaitingGreedy(τ={tau})"),
            other => write!(f, "{}", other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_workloads::{UniformWorkload, Workload};

    #[test]
    fn every_spec_instantiates_on_a_rich_sequence() {
        let seq = UniformWorkload::new(8).generate(600, 3);
        for spec in AlgorithmSpec::all() {
            let algo = spec.instantiate(&seq, NodeId(0));
            assert!(algo.is_some(), "{spec} failed to instantiate");
            assert_eq!(algo.unwrap().name(), spec.label());
            assert!(!spec.knowledge().is_empty());
        }
    }

    #[test]
    fn spanning_tree_requires_connected_underlying_graph() {
        let seq = InteractionSequence::from_pairs(4, vec![(1, 2), (1, 2)]);
        assert!(AlgorithmSpec::SpanningTree
            .instantiate(&seq, NodeId(0))
            .is_none());
        assert!(AlgorithmSpec::Gathering
            .instantiate(&seq, NodeId(0))
            .is_some());
    }

    #[test]
    fn waiting_greedy_tau_override() {
        let seq = UniformWorkload::new(6).generate(200, 1);
        let spec = AlgorithmSpec::WaitingGreedy { tau: Some(42) };
        assert_eq!(spec.to_string(), "WaitingGreedy(τ=42)");
        assert!(spec.instantiate(&seq, NodeId(0)).is_some());
        assert_eq!(
            AlgorithmSpec::WaitingGreedy { tau: None }.to_string(),
            "WaitingGreedy"
        );
    }

    #[test]
    fn comparison_sets_are_subsets_of_all() {
        let all = AlgorithmSpec::all();
        for spec in AlgorithmSpec::randomized_comparison() {
            assert!(all.contains(&spec));
        }
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn online_instantiation_matches_the_knowledge_requirement() {
        for spec in AlgorithmSpec::all() {
            let req = spec.knowledge_requirement();
            assert_eq!(req.label(), spec.knowledge());
            assert_eq!(
                req.requires_materialization(),
                spec.requires_materialization()
            );
            // Exactly the knowledge-free specs instantiate without a sequence.
            assert_eq!(
                spec.instantiate_online().is_some(),
                !spec.requires_materialization(),
                "{spec}"
            );
            if let Some(algo) = spec.instantiate_online() {
                assert_eq!(algo.name(), spec.label());
            }
        }
        assert!(!KnowledgeRequirement::None.requires_materialization());
        assert!(KnowledgeRequirement::MeetTime.requires_materialization());
    }
}
