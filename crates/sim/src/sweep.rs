//! The unified sweep builder — one entry point for every batch shape.
//!
//! Before this module, the sweep surface was split three ways:
//! [`crate::runner::run_trials`] for workloads,
//! [`crate::runner::run_scenario_trials`] for the scenario registry, and
//! direct [`TrialRunner`] calls for anyone needing the round or streamed
//! path explicitly — with the execution-path choice (streamed vs
//! materialised vs native rounds) buried inside each function. The lane
//! tier made that split untenable: a fourth path cannot be wedged into
//! three entry points.
//!
//! [`Sweep`] collapses the surface into one builder over the full cross
//! product — interaction family (scenario or workload) × algorithm ×
//! trials × seed × parallelism × [`ExecutionTier`]:
//!
//! ```
//! use doda_sim::{AlgorithmSpec, Scenario, Sweep};
//!
//! let results = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
//!     .n(16)
//!     .trials(8)
//!     .seed(42)
//!     .run();
//! assert_eq!(results.len(), 8);
//! assert!(results.iter().all(|r| r.terminated()));
//! ```
//!
//! # Execution tiers
//!
//! | tier | what runs | when [`ExecutionTier::Auto`] picks it |
//! |------|-----------|---------------------------------------|
//! | materialised scalar | [`TrialRunner::run`] over a per-worker scratch sequence | the spec's oracles need the future |
//! | streamed scalar | [`TrialRunner::run_streamed`], `O(n)` memory | a fault plan is present (faults are a scalar-path feature), or no faster tier applies |
//! | native rounds | [`TrialRunner::run_rounds`], one matching per round | the scenario is round-based, fault-free, spec knowledge-free |
//! | **lanes** | [`TrialRunner::run_lane_batch`]: up to 64 trials in lockstep through bit-lane state | the spec has a lane kernel ([`AlgorithmSpec::lane_algorithm`]) and the trials are fault-free and pairwise |
//! | **hierarchical** | [`TrialRunner::run_hierarchical`]: cluster election, intra-cluster aggregation, then an aggregator-only phase | never — opt in with [`Sweep::tier`] |
//!
//! Every flat tier is byte-identical per trial to the scalar reference on
//! the same seeds — pinned by `tests/lane_equivalence.rs` and
//! `tests/round_equivalence.rs` — so [`ExecutionTier::Auto`] (the
//! default) is purely a performance decision, never a semantic one. Trial
//! `i` always draws sub-seed `i` of the sweep seed regardless of worker
//! count or lane grouping, so serial and parallel runs of any tier are
//! byte-identical too.
//!
//! The hierarchical tier is the exception: it runs a genuinely different
//! interaction process (clusters aggregate locally before aggregators
//! aggregate globally, `O(n^{3/2})` interactions instead of `Θ(n²)`), so
//! it is **never** auto-selected and is equivalent to flat aggregation
//! only on count-style outcomes — completion classification and the
//! conserved origin set — pinned by `tests/hierarchical_equivalence.rs`.

use doda_core::byzantine::ByzantineProfile;
use doda_core::lane::MAX_LANES;
use doda_core::{InteractionSequence, InteractionSource};
use doda_stats::rng::SeedSequence;
use doda_workloads::Workload;

use crate::datum::{
    AggregateKind, CountFamily, DatumFamily, DistinctFamily, MaxFamily, MinFamily, QuantileFamily,
    SumFamily,
};
use crate::runner::{shard, summarize, BatchConfig, BatchResult};
use crate::scenario::FaultedScenario;
use crate::spec::AlgorithmSpec;
use crate::trial::{ByzantineInjection, TrialConfig, TrialResult, TrialRunner};

/// The execution tier of a sweep: which engine path runs the trials.
///
/// All tiers produce byte-identical per-trial results where they overlap;
/// explicit tiers exist for benchmarking (pinning a path to measure it)
/// and testing (running the scalar reference against the fast tiers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecutionTier {
    /// Pick the fastest admissible tier (the default; see the module docs
    /// for the resolution table).
    #[default]
    Auto,
    /// Force the scalar reference path: materialised for knowledge-based
    /// specs, streamed otherwise — never native rounds, never lanes. Round
    /// scenarios run their flattened pairwise stream.
    Scalar,
    /// Force the lane tier: knowledge-free, fault-free trials stepped in
    /// lockstep through `[u64]` bit-lane state, up to
    /// [`MAX_LANES`] per batch. Round scenarios run
    /// their flattened stream on lanes.
    ///
    /// Sweeps panic if the spec has no lane kernel or a fault plan is
    /// present.
    Lanes,
    /// Force the native round path: one matching of disjoint interactions
    /// applied per synchronous round.
    ///
    /// Sweeps panic unless the scenario is round-based
    /// ([`crate::scenario::Scenario::is_round`]), fault-free, and the spec
    /// is knowledge-free. Workload sweeps (pairwise by construction) panic
    /// too.
    Rounds,
    /// Force hierarchical aggregation: a seeded
    /// [`doda_core::hierarchy::ClusterPlan`] election partitions the
    /// non-sink nodes into clusters of [`Sweep::cluster_size`] (default
    /// `⌈√n⌉`), each cluster aggregates toward its aggregator on the
    /// streamed path, then the aggregators aggregate toward the sink —
    /// `O(n^{3/2})` interactions at the default cluster size, which is
    /// what makes aggregation *complete* feasible at `n = 10^5` and
    /// beyond.
    ///
    /// Never auto-selected: the tier changes the interaction process, so
    /// it matches flat aggregation on completion classification and
    /// conserved origins but not interaction-level traces. Sweeps panic
    /// for knowledge-based specs, fault plans, and workload families
    /// (workloads fix one node count; the tier re-instantiates the
    /// scenario family at cluster size).
    Hierarchical,
}

/// The interaction family a sweep draws its per-trial streams from.
enum Family<'a> {
    /// An entry of the (possibly faulted) scenario registry.
    Scenario(FaultedScenario),
    /// A borrowed workload generator.
    Workload(&'a (dyn Workload + Sync)),
}

impl std::fmt::Debug for Family<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::Scenario(s) => f.debug_tuple("Scenario").field(s).finish(),
            Family::Workload(w) => f.debug_tuple("Workload").field(&w.name()).finish(),
        }
    }
}

/// The resolved execution path of one sweep (the private, unambiguous
/// form of [`ExecutionTier`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    Materialized,
    Streamed,
    Lanes,
    Rounds,
    Hierarchical,
}

/// A batch of independent trials: one algorithm against one interaction
/// family, with the trial count, seeding, parallelism and
/// [`ExecutionTier`] chosen fluently. See the [module docs](self) for the
/// tier-resolution table.
#[derive(Debug)]
pub struct Sweep<'a> {
    spec: AlgorithmSpec,
    family: Family<'a>,
    n: Option<usize>,
    trials: usize,
    seed: u64,
    horizon: Option<usize>,
    parallel: bool,
    tier: ExecutionTier,
    lane_width: usize,
    cluster_size: Option<usize>,
    aggregate: AggregateKind,
    byzantine: Option<ByzantineProfile>,
}

impl<'a> Sweep<'a> {
    /// A sweep of `spec` against an entry of the scenario registry (a
    /// plain [`crate::scenario::Scenario`] converts implicitly,
    /// fault-free). Scenario sweeps need an explicit node count
    /// ([`Sweep::n`]) before running.
    pub fn scenario(spec: AlgorithmSpec, scenario: impl Into<FaultedScenario>) -> Self {
        Sweep::new(spec, Family::Scenario(scenario.into()))
    }

    /// A sweep of `spec` against a workload generator. The node count
    /// defaults to [`Workload::node_count`].
    pub fn workload(spec: AlgorithmSpec, workload: &'a (dyn Workload + Sync)) -> Self {
        Sweep::new(spec, Family::Workload(workload))
    }

    fn new(spec: AlgorithmSpec, family: Family<'a>) -> Self {
        Sweep {
            spec,
            family,
            n: None,
            trials: 1,
            seed: 0,
            horizon: None,
            parallel: false,
            tier: ExecutionTier::Auto,
            lane_width: MAX_LANES,
            cluster_size: None,
            aggregate: AggregateKind::IdSet,
            byzantine: None,
        }
    }

    /// Sets the node count (the sink is node 0). Mandatory for scenario
    /// sweeps; workload sweeps may omit it (the workload fixes it) but a
    /// mismatched explicit value panics at [`Sweep::run`].
    pub fn n(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the number of independent trials (default 1).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the root seed (default 0); trial `i` uses sub-seed `i` of it,
    /// independent of worker count and lane grouping.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-trial horizon: the engine budget of streamed / round /
    /// lane trials and the materialised length of oracle trials. `None`
    /// (the default) uses the generous `8·n²` of
    /// [`doda_adversary::RandomizedAdversary::default_horizon`].
    pub fn horizon(mut self, horizon: Option<usize>) -> Self {
        self.horizon = horizon;
        self
    }

    /// Spreads trials across worker threads (default off). Results are
    /// byte-identical either way.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Pins the execution tier (default [`ExecutionTier::Auto`]).
    pub fn tier(mut self, tier: ExecutionTier) -> Self {
        self.tier = tier;
        self
    }

    /// Sets the lane-batch width `K` — consecutive trials stepped in
    /// lockstep per worker on the lane tier (default, and maximum,
    /// [`MAX_LANES`]). Grouping never changes a
    /// result; this knob exists for benchmarking and tests.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ width ≤ 64`.
    pub fn lane_width(mut self, width: usize) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&width),
            "lane width must be 1..={MAX_LANES}, got {width}"
        );
        self.lane_width = width;
        self
    }

    /// Sets the target cluster size `k` of the hierarchical tier: the
    /// non-sink nodes are partitioned into `⌊(n − 1)/k⌋` near-equal
    /// clusters. Defaults to `⌈√n⌉`, which balances the intra-cluster and
    /// aggregator phases at `O(n^{3/2})` total interactions. Ignored by
    /// every other tier.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn cluster_size(mut self, k: usize) -> Self {
        assert!(k >= 1, "cluster size must be at least 1, got {k}");
        self.cluster_size = Some(k);
        self
    }

    /// Selects the aggregate the trials carry (default
    /// [`AggregateKind::IdSet`], the exact-conservation datum — selecting
    /// nothing keeps every sweep byte-identical to the pre-algebra
    /// behaviour). Non-default kinds seed each node from the matching
    /// [`DatumFamily`] (readings derive from [`Sweep::seed`]) and stamp an
    /// [`doda_core::algebra::AggregateSummary`] on every result.
    ///
    /// The lane tier tracks ownership bits only, never aggregates, so
    /// non-default kinds run the scalar tiers: [`ExecutionTier::Auto`]
    /// resolves what would be a lane sweep to the streamed path instead,
    /// and forcing [`ExecutionTier::Lanes`] panics at [`Sweep::run`].
    pub fn aggregate(mut self, kind: AggregateKind) -> Self {
        self.aggregate = kind;
        self
    }

    /// Layers a Byzantine profile over the sweep: a seeded fraction of
    /// non-sink nodes lies on the data plane during their transmissions,
    /// every trial runs the audited engine path, and every result carries
    /// a [`doda_core::byzantine::Verdict`]. The schedule — and any fault
    /// plan — composes unchanged. On a scenario that already carries a
    /// Byzantine plan (a registry `+forge(0.1)` variant) this builder
    /// **overrides** it; a fraction-`0` profile still routes through the
    /// audit and earns `Clean`.
    ///
    /// The audited path is scalar: [`ExecutionTier::Auto`] resolves
    /// byzantine sweeps to the streamed (or materialised) tier, and
    /// forcing [`ExecutionTier::Lanes`], [`ExecutionTier::Rounds`] or
    /// [`ExecutionTier::Hierarchical`] panics at [`Sweep::run`].
    pub fn byzantine(mut self, profile: ByzantineProfile) -> Self {
        self.byzantine = Some(profile);
        self
    }

    /// Copies the batch shape (`n`, `trials`, `horizon`, `seed`,
    /// `parallel`) from a legacy [`BatchConfig`].
    pub fn config(self, config: &BatchConfig) -> Self {
        self.n(config.n)
            .trials(config.trials)
            .horizon(config.horizon)
            .seed(config.seed)
            .parallel(config.parallel)
    }

    /// The label of the execution path this sweep will actually run —
    /// `"materialized"`, `"streamed"`, `"rounds"`, `"lanes"` or
    /// `"hierarchical"` — resolved from the tier, the spec and the
    /// interaction family exactly as [`Sweep::run`] resolves it.
    /// `doda-bench` stamps this into each grid cell's `mode` column.
    ///
    /// # Panics
    ///
    /// Panics when a forced tier is inadmissible, with the same message
    /// [`Sweep::run`] would produce.
    pub fn path_label(&self) -> &'static str {
        let path = self.demote_lanes(match &self.family {
            Family::Scenario(scenario) => {
                self.resolve_scenario_path(&self.effective_scenario(*scenario))
            }
            Family::Workload(_) => self.resolve_workload_path(),
        });
        match path {
            Path::Materialized => "materialized",
            Path::Streamed => "streamed",
            Path::Rounds => "rounds",
            Path::Lanes => "lanes",
            Path::Hierarchical => "hierarchical",
        }
    }

    /// Runs the sweep and returns the raw per-trial results in trial-index
    /// order.
    ///
    /// # Panics
    ///
    /// Panics on inadmissible combinations — an adaptive scenario with a
    /// knowledge-based spec, an invalid fault plan, a forced tier the
    /// family, spec or [`Sweep::aggregate`] cannot take (see
    /// [`ExecutionTier`]), a scenario sweep without [`Sweep::n`], or a
    /// workload sweep whose explicit `n` mismatches the workload — and if
    /// a worker thread panics.
    pub fn run(&self) -> Vec<TrialResult> {
        // The default kind keeps the original monomorphic path: existing
        // sweeps compile to exactly the code they ran before aggregates
        // became selectable.
        match self.aggregate {
            AggregateKind::IdSet => match self.family {
                Family::Scenario(scenario) => self.run_scenario(scenario),
                Family::Workload(workload) => self.run_workload(workload),
            },
            AggregateKind::Count => self.run_family(&CountFamily),
            AggregateKind::Sum => self.run_family(&SumFamily::new(self.seed)),
            AggregateKind::Min => self.run_family(&MinFamily::new(self.seed)),
            AggregateKind::Max => self.run_family(&MaxFamily::new(self.seed)),
            AggregateKind::Distinct => self.run_family(&DistinctFamily::new(self.seed)),
            AggregateKind::Quantile => self.run_family(&QuantileFamily::new(self.seed)),
        }
    }

    /// Runs a non-default datum family through the generic trial surface.
    fn run_family<D: DatumFamily>(&self, datum: &D) -> Vec<TrialResult> {
        match self.family {
            Family::Scenario(scenario) => self.run_scenario_with(scenario, datum),
            Family::Workload(workload) => self.run_workload_with(workload, datum),
        }
    }

    /// Applies the aggregate-kind constraint to a resolved path: the lane
    /// tier steps ownership bits only — no aggregate state exists in its
    /// SoA lanes — so non-default kinds run the streamed path instead
    /// (under [`ExecutionTier::Auto`]) or refuse a forced lane tier.
    fn demote_lanes(&self, path: Path) -> Path {
        if path != Path::Lanes || self.aggregate == AggregateKind::IdSet {
            return path;
        }
        assert!(
            self.tier != ExecutionTier::Lanes,
            "the lane tier tracks no aggregates; aggregate '{}' sweeps run \
             the scalar tiers",
            self.aggregate
        );
        Path::Streamed
    }

    /// Runs the sweep and summarises it, returning the summary together
    /// with the raw per-trial results.
    ///
    /// # Panics
    ///
    /// Panics as [`Sweep::run`], and additionally if no trial terminated
    /// (no summary can be formed — the horizon was far too small).
    pub fn run_summarized(&self) -> (BatchResult, Vec<TrialResult>) {
        let results = self.run();
        let config = BatchConfig {
            n: self.resolved_n(),
            trials: self.trials,
            horizon: self.horizon,
            seed: self.seed,
            parallel: self.parallel,
        };
        (summarize(self.spec, &config, &results), results)
    }

    /// The node count the sweep will run at.
    fn resolved_n(&self) -> usize {
        match self.family {
            Family::Scenario(_) => self
                .n
                .expect("a scenario sweep needs an explicit node count: call Sweep::n"),
            Family::Workload(workload) => match self.n {
                None => workload.node_count(),
                Some(n) => {
                    assert_eq!(
                        workload.node_count(),
                        n,
                        "workload is over {} nodes but the batch asks for {}",
                        workload.node_count(),
                        n
                    );
                    n
                }
            },
        }
    }

    fn horizon_len(&self, n: usize) -> usize {
        self.horizon
            .unwrap_or_else(|| doda_adversary::RandomizedAdversary::default_horizon(n))
    }

    /// The scenario with the builder's Byzantine profile applied
    /// ([`Sweep::byzantine`] overrides any plan the entry carries).
    fn effective_scenario(&self, scenario: FaultedScenario) -> FaultedScenario {
        match self.byzantine {
            None => scenario,
            Some(profile) => scenario.with_byzantine(profile),
        }
    }

    /// The per-trial Byzantine injection of a **workload** sweep: the
    /// builder's profile seeded exactly as a scenario entry would seed it
    /// ([`FaultedScenario::byzantine_injection`]), so a workload sweep and
    /// the equivalent scenario sweep corrupt identically per trial seed.
    fn workload_byzantine_injection(&self, trial_seed: u64) -> Option<ByzantineInjection> {
        self.byzantine.map(|profile| ByzantineInjection {
            profile,
            seed: SeedSequence::new(trial_seed).seed(crate::scenario::BYZANTINE_STREAM_LABEL),
        })
    }

    /// Resolves the tier for a scenario sweep (see the module docs).
    fn resolve_scenario_path(&self, scenario: &FaultedScenario) -> Path {
        match self.tier {
            ExecutionTier::Auto => {
                if self.spec.requires_materialization() {
                    Path::Materialized
                } else if scenario.faults.is_some() || scenario.byzantine.is_some() {
                    // Both planes are scalar-path features: faults perturb
                    // the stream, byzantine plans need the audited engine.
                    Path::Streamed
                } else if scenario.is_round() {
                    Path::Rounds
                } else if self.spec.lane_algorithm().is_some() {
                    Path::Lanes
                } else {
                    Path::Streamed
                }
            }
            ExecutionTier::Scalar => {
                if self.spec.requires_materialization() {
                    Path::Materialized
                } else {
                    Path::Streamed
                }
            }
            ExecutionTier::Lanes => {
                assert!(
                    self.spec.lane_algorithm().is_some(),
                    "{} requires {} knowledge and has no lane kernel",
                    self.spec,
                    self.spec.knowledge()
                );
                assert!(
                    scenario.faults.is_none(),
                    "the lane tier is fault-free by contract; scenario \
                     '{scenario}' carries a fault plan"
                );
                assert!(
                    scenario.byzantine.is_none(),
                    "the lane tier is honest by contract; scenario \
                     '{scenario}' carries a byzantine plan"
                );
                Path::Lanes
            }
            ExecutionTier::Rounds => {
                assert!(
                    scenario.is_round(),
                    "scenario '{scenario}' is pairwise; the round tier needs a \
                     round scenario"
                );
                assert!(
                    scenario.faults.is_none(),
                    "fault plans compose over the flattened round stream (the \
                     scalar tier), not over the batched round path"
                );
                assert!(
                    scenario.byzantine.is_none(),
                    "byzantine plans compose over the flattened round stream \
                     (the audited scalar tier), not over the batched round path"
                );
                assert!(
                    !self.spec.requires_materialization(),
                    "{} requires {} knowledge and cannot run round-streamed",
                    self.spec,
                    self.spec.knowledge()
                );
                Path::Rounds
            }
            ExecutionTier::Hierarchical => {
                assert!(
                    !self.spec.requires_materialization(),
                    "{} requires {} knowledge and cannot run hierarchically: \
                     its oracles describe one flat committed schedule, not \
                     per-cluster sub-streams",
                    self.spec,
                    self.spec.knowledge()
                );
                assert!(
                    scenario.faults.is_none(),
                    "the hierarchical tier is fault-free by contract; scenario \
                     '{scenario}' carries a fault plan"
                );
                assert!(
                    scenario.byzantine.is_none(),
                    "the hierarchical tier is honest by contract; scenario \
                     '{scenario}' carries a byzantine plan"
                );
                Path::Hierarchical
            }
        }
    }

    /// Resolves the tier for a workload sweep: workloads are pairwise,
    /// infinite and fault-free, so only the round tier is off-limits.
    fn resolve_workload_path(&self) -> Path {
        match self.tier {
            ExecutionTier::Auto => {
                if self.spec.requires_materialization() {
                    Path::Materialized
                } else if self.byzantine.is_some() {
                    Path::Streamed
                } else if self.spec.lane_algorithm().is_some() {
                    Path::Lanes
                } else {
                    Path::Streamed
                }
            }
            ExecutionTier::Scalar => {
                if self.spec.requires_materialization() {
                    Path::Materialized
                } else {
                    Path::Streamed
                }
            }
            ExecutionTier::Lanes => {
                assert!(
                    self.spec.lane_algorithm().is_some(),
                    "{} requires {} knowledge and has no lane kernel",
                    self.spec,
                    self.spec.knowledge()
                );
                assert!(
                    self.byzantine.is_none(),
                    "the lane tier is honest by contract; the sweep carries \
                     a byzantine plan"
                );
                Path::Lanes
            }
            ExecutionTier::Rounds => {
                panic!("workloads are pairwise streams; the round tier needs a round scenario")
            }
            ExecutionTier::Hierarchical => {
                panic!(
                    "workloads fix one node count; the hierarchical tier \
                     re-instantiates the scenario family at cluster size — \
                     use Sweep::scenario"
                )
            }
        }
    }

    fn run_scenario(&self, scenario: FaultedScenario) -> Vec<TrialResult> {
        let scenario = self.effective_scenario(scenario);
        assert!(
            scenario.supports(self.spec),
            "scenario '{scenario}' is adaptive: {} requires {} knowledge, which would \
             need materialising a stream that depends on the execution itself",
            self.spec,
            self.spec.knowledge()
        );
        let n = self.resolved_n();
        // A fault plan that could strand the execution below two live
        // nodes must be a typed error before any trial runs — never a hang.
        scenario
            .validate(n)
            .unwrap_or_else(|e| panic!("invalid fault plan for scenario '{scenario}': {e}"));
        scenario
            .validate_byzantine()
            .unwrap_or_else(|e| panic!("invalid byzantine plan for scenario '{scenario}': {e}"));
        let seeds = SeedSequence::new(self.seed);
        let horizon = self.horizon_len(n);
        let spec = self.spec;

        match self.resolve_scenario_path(&scenario) {
            Path::Materialized => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut seq = InteractionSequence::new(n);
                let mut results = Vec::with_capacity(range.len());
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    let mut source = scenario.base.source(n, trial_seed);
                    seq.fill_from(source.as_mut(), horizon);
                    let trial_config = TrialConfig {
                        fault: scenario.fault_injection(trial_seed),
                        byzantine: scenario.byzantine_injection(trial_seed),
                        ..TrialConfig::default()
                    };
                    results.push(runner.run(spec, &seq, &trial_config));
                }
                results
            }),
            Path::Streamed => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut results = Vec::with_capacity(range.len());
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    let trial_config = TrialConfig {
                        max_interactions: Some(horizon as u64),
                        fault: scenario.fault_injection(trial_seed),
                        byzantine: scenario.byzantine_injection(trial_seed),
                        ..TrialConfig::default()
                    };
                    let mut source = scenario.base.source(n, trial_seed);
                    results.push(runner.run_streamed(spec, source.as_mut(), &trial_config));
                }
                results
            }),
            Path::Rounds => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut results = Vec::with_capacity(range.len());
                let trial_config = TrialConfig {
                    max_interactions: Some(horizon as u64),
                    ..TrialConfig::default()
                };
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    let mut rounds = scenario
                        .base
                        .round_source(n, trial_seed)
                        .expect("the round path only resolves for round scenarios");
                    results.push(runner.run_rounds(spec, rounds.as_mut(), &trial_config));
                }
                results
            }),
            Path::Lanes => {
                self.run_lanes_sharded(horizon, |trial_seed| scenario.base.source(n, trial_seed))
            }
            Path::Hierarchical => {
                let k = self
                    .cluster_size
                    .unwrap_or_else(|| (n as f64).sqrt().ceil() as usize)
                    .max(1);
                shard(self.trials, self.parallel, |range| {
                    let mut runner = TrialRunner::new();
                    let mut results = Vec::with_capacity(range.len());
                    let trial_config = TrialConfig {
                        max_interactions: Some(horizon as u64),
                        ..TrialConfig::default()
                    };
                    for trial in range {
                        let trial_seed = seeds.seed(trial as u64);
                        results.push(runner.run_hierarchical(
                            spec,
                            &scenario.base,
                            n,
                            k,
                            trial_seed,
                            &trial_config,
                        ));
                    }
                    results
                })
            }
        }
    }

    fn run_workload(&self, workload: &(dyn Workload + Sync)) -> Vec<TrialResult> {
        let n = self.resolved_n();
        let seeds = SeedSequence::new(self.seed);
        let horizon = self.horizon_len(n);
        let spec = self.spec;

        match self.resolve_workload_path() {
            Path::Materialized => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut seq = InteractionSequence::new(n);
                let mut results = Vec::with_capacity(range.len());
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    workload.fill(&mut seq, horizon, trial_seed);
                    let trial_config = TrialConfig {
                        byzantine: self.workload_byzantine_injection(trial_seed),
                        ..TrialConfig::default()
                    };
                    results.push(runner.run(spec, &seq, &trial_config));
                }
                results
            }),
            Path::Streamed => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut results = Vec::with_capacity(range.len());
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    let trial_config = TrialConfig {
                        max_interactions: Some(horizon as u64),
                        byzantine: self.workload_byzantine_injection(trial_seed),
                        ..TrialConfig::default()
                    };
                    let mut source = workload.source(trial_seed);
                    results.push(runner.run_streamed(spec, source.as_mut(), &trial_config));
                }
                results
            }),
            Path::Lanes => {
                self.run_lanes_sharded(horizon, |trial_seed| workload.source(trial_seed))
            }
            Path::Rounds => unreachable!("resolve_workload_path rejects the round tier"),
            Path::Hierarchical => {
                unreachable!("resolve_workload_path rejects the hierarchical tier")
            }
        }
    }

    /// [`Sweep::run_scenario`] for a non-default datum family: identical
    /// resolution and seeding, with the lane path demoted to streamed
    /// ([`Sweep::demote_lanes`]) and every trial routed through the
    /// generic `_with` surface of [`TrialRunner`].
    fn run_scenario_with<D: DatumFamily>(
        &self,
        scenario: FaultedScenario,
        datum: &D,
    ) -> Vec<TrialResult> {
        let scenario = self.effective_scenario(scenario);
        assert!(
            scenario.supports(self.spec),
            "scenario '{scenario}' is adaptive: {} requires {} knowledge, which would \
             need materialising a stream that depends on the execution itself",
            self.spec,
            self.spec.knowledge()
        );
        let n = self.resolved_n();
        scenario
            .validate(n)
            .unwrap_or_else(|e| panic!("invalid fault plan for scenario '{scenario}': {e}"));
        scenario
            .validate_byzantine()
            .unwrap_or_else(|e| panic!("invalid byzantine plan for scenario '{scenario}': {e}"));
        let seeds = SeedSequence::new(self.seed);
        let horizon = self.horizon_len(n);
        let spec = self.spec;

        match self.demote_lanes(self.resolve_scenario_path(&scenario)) {
            Path::Materialized => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut seq = InteractionSequence::new(n);
                let mut results = Vec::with_capacity(range.len());
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    let mut source = scenario.base.source(n, trial_seed);
                    seq.fill_from(source.as_mut(), horizon);
                    let trial_config = TrialConfig {
                        fault: scenario.fault_injection(trial_seed),
                        byzantine: scenario.byzantine_injection(trial_seed),
                        ..TrialConfig::default()
                    };
                    results.push(runner.run_with(spec, &seq, &trial_config, datum));
                }
                results
            }),
            Path::Streamed => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut results = Vec::with_capacity(range.len());
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    let trial_config = TrialConfig {
                        max_interactions: Some(horizon as u64),
                        fault: scenario.fault_injection(trial_seed),
                        byzantine: scenario.byzantine_injection(trial_seed),
                        ..TrialConfig::default()
                    };
                    let mut source = scenario.base.source(n, trial_seed);
                    results.push(runner.run_streamed_with(
                        spec,
                        source.as_mut(),
                        &trial_config,
                        datum,
                    ));
                }
                results
            }),
            Path::Rounds => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut results = Vec::with_capacity(range.len());
                let trial_config = TrialConfig {
                    max_interactions: Some(horizon as u64),
                    ..TrialConfig::default()
                };
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    let mut rounds = scenario
                        .base
                        .round_source(n, trial_seed)
                        .expect("the round path only resolves for round scenarios");
                    results.push(runner.run_rounds_with(
                        spec,
                        rounds.as_mut(),
                        &trial_config,
                        datum,
                    ));
                }
                results
            }),
            Path::Lanes => {
                unreachable!("demote_lanes rejects the lane tier for non-default aggregates")
            }
            Path::Hierarchical => {
                let k = self
                    .cluster_size
                    .unwrap_or_else(|| (n as f64).sqrt().ceil() as usize)
                    .max(1);
                shard(self.trials, self.parallel, |range| {
                    let mut runner = TrialRunner::new();
                    let mut results = Vec::with_capacity(range.len());
                    let trial_config = TrialConfig {
                        max_interactions: Some(horizon as u64),
                        ..TrialConfig::default()
                    };
                    for trial in range {
                        let trial_seed = seeds.seed(trial as u64);
                        results.push(runner.run_hierarchical_with(
                            spec,
                            &scenario.base,
                            n,
                            k,
                            trial_seed,
                            &trial_config,
                            datum,
                        ));
                    }
                    results
                })
            }
        }
    }

    /// [`Sweep::run_workload`] for a non-default datum family; see
    /// [`Sweep::run_scenario_with`].
    fn run_workload_with<D: DatumFamily>(
        &self,
        workload: &(dyn Workload + Sync),
        datum: &D,
    ) -> Vec<TrialResult> {
        let n = self.resolved_n();
        let seeds = SeedSequence::new(self.seed);
        let horizon = self.horizon_len(n);
        let spec = self.spec;

        match self.demote_lanes(self.resolve_workload_path()) {
            Path::Materialized => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut seq = InteractionSequence::new(n);
                let mut results = Vec::with_capacity(range.len());
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    workload.fill(&mut seq, horizon, trial_seed);
                    let trial_config = TrialConfig {
                        byzantine: self.workload_byzantine_injection(trial_seed),
                        ..TrialConfig::default()
                    };
                    results.push(runner.run_with(spec, &seq, &trial_config, datum));
                }
                results
            }),
            Path::Streamed => shard(self.trials, self.parallel, |range| {
                let mut runner = TrialRunner::new();
                let mut results = Vec::with_capacity(range.len());
                for trial in range {
                    let trial_seed = seeds.seed(trial as u64);
                    let trial_config = TrialConfig {
                        max_interactions: Some(horizon as u64),
                        byzantine: self.workload_byzantine_injection(trial_seed),
                        ..TrialConfig::default()
                    };
                    let mut source = workload.source(trial_seed);
                    results.push(runner.run_streamed_with(
                        spec,
                        source.as_mut(),
                        &trial_config,
                        datum,
                    ));
                }
                results
            }),
            Path::Lanes => {
                unreachable!("demote_lanes rejects the lane tier for non-default aggregates")
            }
            Path::Rounds => unreachable!("resolve_workload_path rejects the round tier"),
            Path::Hierarchical => {
                unreachable!("resolve_workload_path rejects the hierarchical tier")
            }
        }
    }

    /// The sharded lane driver: each worker chunk runs its trials in
    /// consecutive lane batches of up to [`Sweep::lane_width`]. Lanes are
    /// fully independent (one source per lane), so the grouping — which
    /// differs between serial and parallel runs at chunk boundaries —
    /// never affects a per-trial result.
    fn run_lanes_sharded<F>(&self, horizon: usize, make_source: F) -> Vec<TrialResult>
    where
        F: Fn(u64) -> Box<dyn InteractionSource + Send> + Sync,
    {
        let seeds = SeedSequence::new(self.seed);
        let width = self.lane_width;
        let spec = self.spec;
        let trial_config = TrialConfig {
            max_interactions: Some(horizon as u64),
            ..TrialConfig::default()
        };
        shard(self.trials, self.parallel, |range| {
            let mut runner = TrialRunner::new();
            let mut results = Vec::with_capacity(range.len());
            let mut batch = range.start;
            while batch < range.end {
                let upper = range.end.min(batch + width);
                let mut sources: Vec<_> = (batch..upper)
                    .map(|trial| make_source(seeds.seed(trial as u64)))
                    .collect();
                results.extend(runner.run_lane_batch(spec, &mut sources, &trial_config));
                batch = upper;
            }
            results
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use doda_core::fault::FaultProfile;
    use doda_workloads::UniformWorkload;

    #[test]
    fn lane_and_scalar_tiers_agree_per_trial() {
        for scenario in [Scenario::Uniform, Scenario::Zipf { exponent: 1.2 }] {
            let sweep = Sweep::scenario(AlgorithmSpec::Gathering, scenario)
                .n(12)
                .trials(10)
                .seed(7)
                .horizon(Some(4_000));
            let lanes = sweep.run();
            let scalar = Sweep::scenario(AlgorithmSpec::Gathering, scenario)
                .n(12)
                .trials(10)
                .seed(7)
                .horizon(Some(4_000))
                .tier(ExecutionTier::Scalar)
                .run();
            assert_eq!(lanes, scalar, "{scenario}");
        }
    }

    #[test]
    fn lane_grouping_and_parallelism_never_change_results() {
        let base = || {
            Sweep::scenario(AlgorithmSpec::Waiting, Scenario::Uniform)
                .n(10)
                .trials(13)
                .seed(3)
                .horizon(Some(3_000))
        };
        let reference = base().run();
        for width in [1, 7, 64] {
            assert_eq!(base().lane_width(width).run(), reference, "width {width}");
        }
        assert_eq!(base().parallel(true).run(), reference);
    }

    #[test]
    fn auto_routes_adaptive_scenarios_through_lanes_faithfully() {
        // The adaptive isolator reads the ownership view; the lane tier
        // must feed it per-lane views identical to the scalar engine's.
        let auto = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::AdaptiveIsolator)
            .n(12)
            .trials(4)
            .horizon(Some(4_000))
            .run();
        let scalar = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::AdaptiveIsolator)
            .n(12)
            .trials(4)
            .horizon(Some(4_000))
            .tier(ExecutionTier::Scalar)
            .run();
        assert_eq!(auto, scalar);
        assert!(auto.iter().all(|r| r.terminated()));
    }

    #[test]
    fn workload_sweeps_default_their_node_count() {
        let workload = UniformWorkload::new(9);
        let results = Sweep::workload(AlgorithmSpec::Gathering, &workload)
            .trials(3)
            .run();
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.n == 9 && r.terminated()));
    }

    #[test]
    fn rounds_tier_matches_auto_on_round_scenarios() {
        let auto = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::RandomMatching)
            .n(12)
            .trials(5)
            .horizon(Some(5_000))
            .run();
        let pinned = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::RandomMatching)
            .n(12)
            .trials(5)
            .horizon(Some(5_000))
            .tier(ExecutionTier::Rounds)
            .run();
        let scalar = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::RandomMatching)
            .n(12)
            .trials(5)
            .horizon(Some(5_000))
            .tier(ExecutionTier::Scalar)
            .run();
        assert_eq!(auto, pinned);
        assert_eq!(auto, scalar);
    }

    #[test]
    #[allow(deprecated)]
    fn summaries_match_the_legacy_runner() {
        let config = BatchConfig {
            n: 12,
            trials: 6,
            horizon: None,
            seed: 42,
            parallel: false,
        };
        let (summary, raw) = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
            .config(&config)
            .run_summarized();
        let legacy = crate::runner::run_batch_detailed(AlgorithmSpec::Gathering, &config);
        assert_eq!((summary, raw), legacy);
    }

    #[test]
    fn byzantine_sweeps_run_audited_on_every_scalar_tier() {
        use doda_core::byzantine::{ByzantineProfile, Verdict};

        let base = || {
            Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
                .n(12)
                .trials(6)
                .seed(7)
                .horizon(Some(4_000))
                .byzantine(ByzantineProfile::forge(0.25))
        };
        assert_eq!(base().path_label(), "streamed");
        let auto = base().run();
        let scalar = base().tier(ExecutionTier::Scalar).run();
        assert_eq!(auto, scalar);
        assert!(auto.iter().all(|r| r.verdict.is_some()));
        // Forgers pollute the exact origin set, so the audit must not
        // report every trial clean.
        assert!(auto
            .iter()
            .any(|r| !matches!(r.verdict, Some(Verdict::Clean))));

        // A registry byzantine entry routes identically to the builder.
        let entry = Scenario::Uniform.with_byzantine(ByzantineProfile::forge(0.25));
        let via_entry = Sweep::scenario(AlgorithmSpec::Gathering, entry)
            .n(12)
            .trials(6)
            .seed(7)
            .horizon(Some(4_000))
            .run();
        assert_eq!(via_entry, auto);
    }

    #[test]
    fn workload_byzantine_sweeps_match_the_equivalent_scenario_sweep() {
        use doda_core::byzantine::ByzantineProfile;

        let workload = UniformWorkload::new(10);
        let via_workload = Sweep::workload(AlgorithmSpec::Gathering, &workload)
            .trials(4)
            .seed(3)
            .horizon(Some(3_000))
            .byzantine(ByzantineProfile::duplicate(0.2))
            .run();
        let via_scenario = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
            .n(10)
            .trials(4)
            .seed(3)
            .horizon(Some(3_000))
            .byzantine(ByzantineProfile::duplicate(0.2))
            .run();
        assert_eq!(via_workload, via_scenario);
    }

    #[test]
    #[should_panic(expected = "honest by contract")]
    fn lane_tier_rejects_byzantine_plans() {
        use doda_core::byzantine::ByzantineProfile;

        let _ = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
            .n(10)
            .byzantine(ByzantineProfile::forge(0.1))
            .tier(ExecutionTier::Lanes)
            .run();
    }

    #[test]
    #[should_panic(expected = "fault-free by contract")]
    fn lane_tier_rejects_fault_plans() {
        let _ = Sweep::scenario(
            AlgorithmSpec::Gathering,
            Scenario::Uniform.with_faults(FaultProfile::crash(0.01)),
        )
        .n(10)
        .tier(ExecutionTier::Lanes)
        .run();
    }

    #[test]
    #[should_panic(expected = "has no lane kernel")]
    fn lane_tier_rejects_knowledge_based_specs() {
        let _ = Sweep::scenario(AlgorithmSpec::OfflineOptimal, Scenario::Uniform)
            .n(10)
            .tier(ExecutionTier::Lanes)
            .run();
    }

    #[test]
    #[should_panic(expected = "needs a round scenario")]
    fn rounds_tier_rejects_pairwise_scenarios() {
        let _ = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
            .n(10)
            .tier(ExecutionTier::Rounds)
            .run();
    }

    #[test]
    #[should_panic(expected = "lane width must be")]
    fn zero_lane_width_is_rejected() {
        let _ = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
            .n(10)
            .lane_width(0);
    }

    #[test]
    #[should_panic(expected = "call Sweep::n")]
    fn scenario_sweeps_require_an_explicit_node_count() {
        let _ = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform).run();
    }
}
