//! The unified scenario registry.
//!
//! A [`Scenario`] names one member of the composable space of interaction
//! processes the sweep stack can run against: the synthetic workload
//! generators of `doda-workloads` *and* the adversaries of
//! `doda-adversary` (weighted randomized, the oblivious star-then-ring
//! trap, and the sweepable online **adaptive** isolator). Every consumer —
//! the sharded batch runner ([`crate::runner::run_scenario_trials`]), the
//! `doda-bench` perf grid, the experiment harness and the examples —
//! enumerates the same registry instead of hand-wiring its own list of
//! generators.
//!
//! Every scenario yields a seeded streaming [`InteractionSource`] over any
//! admissible node count. Non-adaptive scenarios can additionally be
//! [`materialize`]d into a concrete [`InteractionSequence`] for the
//! knowledge oracles; adaptive ones cannot (their stream depends on the
//! execution itself), which is exactly the [`Scenario::supports`] rule.
//!
//! [`materialize`]: Scenario::materialize

use doda_adversary::{IsolatorAdversary, ObliviousTrap, WeightedRandomAdversary};
use doda_core::{InteractionSequence, InteractionSource};
use doda_workloads::{
    BodyAreaWorkload, CommunityWorkload, UniformWorkload, VehicularWorkload, Workload, ZipfWorkload,
};

use crate::spec::AlgorithmSpec;

/// One entry of the unified scenario space: a named, seeded family of
/// interaction sources parameterised by the node count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Uniform random contacts — the randomized adversary of Section 4.
    Uniform,
    /// Zipf-popularity contacts (hub-and-spoke mobility).
    Zipf {
        /// Zipf exponent of the popularity law.
        exponent: f64,
    },
    /// Community-structured contacts with rare bridge interactions.
    Community {
        /// Number of equal-sized communities (needs `n ≥ 2·communities`).
        communities: usize,
        /// Probability of an intra-community contact.
        p_intra: f64,
    },
    /// Periodic body-area sensor reports to a hub.
    BodyArea,
    /// Vehicular random-walk contacts on a `√n × √n` road grid.
    Vehicular,
    /// The non-uniform randomized adversary: pairs drawn proportionally to
    /// Zipf popularity weights (the paper's concluding question 3).
    WeightedZipf {
        /// Zipf exponent of the weight law.
        exponent: f64,
    },
    /// The oblivious star-then-ring trap of Theorem 2 (deterministic; the
    /// seed is ignored).
    ObliviousTrap,
    /// The online **adaptive** isolator adversary: starves the sink while
    /// more than one non-sink node owns data (deterministic; the seed is
    /// ignored). The only scenario whose stream depends on the execution.
    AdaptiveIsolator,
}

impl Scenario {
    /// The default-parameterised registry, in display order: every
    /// scenario the sweep stack knows how to run.
    pub fn registry() -> Vec<Scenario> {
        vec![
            Scenario::Uniform,
            Scenario::Zipf { exponent: 1.2 },
            Scenario::Community {
                communities: 4,
                p_intra: 0.9,
            },
            Scenario::BodyArea,
            Scenario::Vehicular,
            Scenario::WeightedZipf { exponent: 1.2 },
            Scenario::ObliviousTrap,
            Scenario::AdaptiveIsolator,
        ]
    }

    /// The label used in reports, benchmark grids and `BENCH_*.json`.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Uniform => "uniform",
            Scenario::Zipf { .. } => "zipf",
            Scenario::Community { .. } => "community",
            Scenario::BodyArea => "body-area",
            Scenario::Vehicular => "vehicular",
            Scenario::WeightedZipf { .. } => "weighted-zipf",
            Scenario::ObliviousTrap => "oblivious-trap",
            Scenario::AdaptiveIsolator => "adaptive-isolator",
        }
    }

    /// Looks a scenario up by its [`name`](Scenario::name), with the
    /// registry's default parameters.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::registry().into_iter().find(|s| s.name() == name)
    }

    /// `true` iff the scenario's stream depends on the execution (the
    /// online adaptive adversary) and therefore cannot be materialised
    /// faithfully.
    pub fn is_adaptive(&self) -> bool {
        matches!(self, Scenario::AdaptiveIsolator)
    }

    /// The smallest node count the scenario admits.
    pub fn min_nodes(&self) -> usize {
        match self {
            Scenario::Community { communities, .. } => 2 * (*communities).max(1),
            Scenario::BodyArea => 3,
            Scenario::ObliviousTrap => 4,
            _ => 2,
        }
    }

    /// `true` iff `spec` can run against this scenario: everything runs
    /// against the non-adaptive scenarios, while adaptive scenarios only
    /// admit knowledge-free algorithms (their oracles would require
    /// materialising a stream that depends on the execution itself).
    pub fn supports(&self, spec: AlgorithmSpec) -> bool {
        !(self.is_adaptive() && spec.requires_materialization())
    }

    /// A seeded streaming source over `n` nodes. The adversarial
    /// constructions are deterministic and ignore the seed; everything
    /// else streams the exact interactions its workload would materialise.
    ///
    /// # Panics
    ///
    /// Panics if `n < self.min_nodes()`.
    pub fn source(&self, n: usize, seed: u64) -> Box<dyn InteractionSource + Send> {
        match self {
            Scenario::WeightedZipf { exponent } => {
                Box::new(WeightedRandomAdversary::zipf(n, *exponent, seed))
            }
            Scenario::ObliviousTrap => {
                Box::new(ObliviousTrap::for_greedy_algorithms(n).adversary())
            }
            Scenario::AdaptiveIsolator => Box::new(IsolatorAdversary::new(n)),
            workload_backed => workload_backed
                .workload(n)
                .expect("non-adversary scenarios are workload-backed")
                .source(seed),
        }
    }

    /// The backing [`Workload`], for the scenarios that have one (`None`
    /// for the adversary-backed entries).
    pub fn workload(&self, n: usize) -> Option<Box<dyn Workload + Send + Sync>> {
        match self {
            Scenario::Uniform => Some(Box::new(UniformWorkload::new(n))),
            Scenario::Zipf { exponent } => Some(Box::new(ZipfWorkload::new(n, *exponent))),
            Scenario::Community {
                communities,
                p_intra,
            } => Some(Box::new(CommunityWorkload::new(n, *communities, *p_intra))),
            Scenario::BodyArea => Some(Box::new(BodyAreaWorkload::new(n))),
            Scenario::Vehicular => {
                // A square-ish grid: side ≈ √n keeps the road density
                // comparable across node counts.
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                Some(Box::new(VehicularWorkload::new(n, side)))
            }
            Scenario::WeightedZipf { .. }
            | Scenario::ObliviousTrap
            | Scenario::AdaptiveIsolator => None,
        }
    }

    /// Materialises the first `len` interactions of the scenario's stream,
    /// or `None` for adaptive scenarios (no faithful sequence exists).
    pub fn materialize(&self, n: usize, len: usize, seed: u64) -> Option<InteractionSequence> {
        if self.is_adaptive() {
            return None;
        }
        Some(InteractionSequence::materialize(
            self.source(n, seed).as_mut(),
            len,
        ))
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_core::sequence::AdversaryView;
    use doda_graph::NodeId;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let registry = Scenario::registry();
        for s in &registry {
            assert_eq!(Scenario::by_name(s.name()), Some(*s));
            assert_eq!(s.to_string(), s.name());
        }
        let mut names: Vec<_> = registry.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry.len());
        assert_eq!(Scenario::by_name("no-such-scenario"), None);
    }

    #[test]
    fn every_scenario_streams_at_its_minimum_node_count() {
        for s in Scenario::registry() {
            for n in [s.min_nodes(), s.min_nodes() + 5] {
                let mut source = s.source(n, 7);
                assert_eq!(source.node_count(), n, "{s}");
                let owns = vec![true; n];
                let view = AdversaryView {
                    owns_data: &owns,
                    sink: NodeId(0),
                };
                for t in 0..50u64 {
                    let i = source
                        .next_interaction(t, &view)
                        .unwrap_or_else(|| panic!("{s} ran dry at t={t}, n={n}"));
                    assert!(i.max().index() < n, "{s}");
                }
            }
        }
    }

    #[test]
    fn materialization_matches_the_stream_for_non_adaptive_scenarios() {
        for s in Scenario::registry() {
            let n = s.min_nodes().max(8);
            match s.materialize(n, 120, 3) {
                None => assert!(s.is_adaptive(), "{s}"),
                Some(seq) => {
                    assert_eq!(seq.len(), 120, "{s}");
                    assert_eq!(seq.node_count(), n, "{s}");
                    // Deterministic: a second materialisation is identical.
                    assert_eq!(s.materialize(n, 120, 3), Some(seq), "{s}");
                }
            }
        }
    }

    #[test]
    fn adaptive_scenarios_only_support_knowledge_free_specs() {
        for s in Scenario::registry() {
            for spec in AlgorithmSpec::all() {
                let expected = !(s.is_adaptive() && spec.requires_materialization());
                assert_eq!(s.supports(spec), expected, "{s} / {spec}");
            }
        }
    }

    #[test]
    fn workload_backed_scenarios_expose_their_workload() {
        for s in Scenario::registry() {
            let n = s.min_nodes().max(8);
            match s.workload(n) {
                Some(w) => assert_eq!(w.node_count(), n, "{s}"),
                None => assert!(
                    matches!(
                        s,
                        Scenario::WeightedZipf { .. }
                            | Scenario::ObliviousTrap
                            | Scenario::AdaptiveIsolator
                    ),
                    "{s}"
                ),
            }
        }
    }
}
