//! The unified scenario registry.
//!
//! A [`Scenario`] names one member of the composable space of interaction
//! processes the sweep stack can run against: the synthetic workload
//! generators of `doda-workloads` *and* the adversaries of
//! `doda-adversary` (weighted randomized, the oblivious star-then-ring
//! trap, and the sweepable online **adaptive** isolator). Every consumer —
//! the sharded batch runner ([`crate::runner::run_scenario_trials`]), the
//! `doda-bench` perf grid, the experiment harness and the examples —
//! enumerates the same registry instead of hand-wiring its own list of
//! generators.
//!
//! Every scenario yields a seeded streaming [`InteractionSource`] over any
//! admissible node count. Non-adaptive scenarios can additionally be
//! [`materialize`]d into a concrete [`InteractionSequence`] for the
//! knowledge oracles; adaptive ones cannot (their stream depends on the
//! execution itself), which is exactly the [`Scenario::supports`] rule.
//!
//! [`materialize`]: Scenario::materialize

use doda_adversary::{
    CrashAwareIsolator, IsolatorAdversary, ObliviousTrap, RoundIsolator, WeightedRandomAdversary,
};
use doda_core::byzantine::{ByzantineConfigError, ByzantineProfile};
use doda_core::fault::{FaultConfigError, FaultProfile, FaultedSource};
use doda_core::round::{FlattenedRounds, RoundSource};
use doda_core::{InteractionSequence, InteractionSource};
use doda_stats::rng::SeedSequence;
use doda_workloads::{
    BodyAreaWorkload, CommunityWorkload, IntervalConnectedWorkload, RandomMatchingWorkload,
    RoundWorkload, TorusContactWorkload, TournamentWorkload, UniformWorkload, VehicularWorkload,
    Workload, ZipfWorkload,
};

use crate::spec::AlgorithmSpec;
use crate::trial::{ByzantineInjection, FaultInjection};

/// One entry of the unified scenario space: a named, seeded family of
/// interaction sources parameterised by the node count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scenario {
    /// Uniform random contacts — the randomized adversary of Section 4.
    Uniform,
    /// Zipf-popularity contacts (hub-and-spoke mobility).
    Zipf {
        /// Zipf exponent of the popularity law.
        exponent: f64,
    },
    /// Community-structured contacts with rare bridge interactions.
    Community {
        /// Number of equal-sized communities (needs `n ≥ 2·communities`).
        communities: usize,
        /// Probability of an intra-community contact.
        p_intra: f64,
    },
    /// Periodic body-area sensor reports to a hub.
    BodyArea,
    /// Vehicular random-walk contacts on a `√n × √n` road grid.
    Vehicular,
    /// The non-uniform randomized adversary: pairs drawn proportionally to
    /// Zipf popularity weights (the paper's concluding question 3).
    WeightedZipf {
        /// Zipf exponent of the weight law.
        exponent: f64,
    },
    /// The oblivious star-then-ring trap of Theorem 2 (deterministic; the
    /// seed is ignored).
    ObliviousTrap,
    /// The online **adaptive** isolator adversary: starves the sink while
    /// more than one non-sink node owns data (deterministic; the seed is
    /// ignored). A scenario whose stream depends on the execution.
    AdaptiveIsolator,
    /// The **crash-aware** adaptive adversary: targets the current owner
    /// set and never releases anyone to the sink, so that under a crash
    /// fault plan every datum's fate is decided by faults, not
    /// transmissions (deterministic; the seed is ignored). Adaptive.
    CrashAwareIsolator,
    /// **Round scenario** — each round a uniformly random near-perfect
    /// matching: the round-model analogue of the uniform randomized
    /// adversary.
    RandomMatching,
    /// **Round scenario** — the deterministic round-robin tournament
    /// (circle method): every pair meets once per cycle, each round a
    /// perfect matching (the seed is ignored).
    Tournament,
    /// **Round scenario** — a `T`-interval-connected evolving graph: a
    /// random spanning path held stable for `t` rounds, served as
    /// alternating-edge matchings.
    IntervalConnected {
        /// The stability window, in rounds (`≥ 2`).
        t: usize,
    },
    /// **Round scenario** — the round-level trap that keeps the sink
    /// unmatched every round, starving every algorithm (deterministic;
    /// the seed is ignored).
    RoundIsolator,
    /// **Round scenario** — a CSR-backed contact process on a `⌈√n⌉`-side
    /// torus grid: the sparse underlying graph is compiled once, and each
    /// round greedily matches the edges active with probability 1/2. The
    /// large-n round scenario: `O(n)` memory, `O(n)` work per round.
    TorusContact,
}

impl Scenario {
    /// The default-parameterised registry, in display order: every
    /// scenario the sweep stack knows how to run.
    pub fn registry() -> Vec<Scenario> {
        vec![
            Scenario::Uniform,
            Scenario::Zipf { exponent: 1.2 },
            Scenario::Community {
                communities: 4,
                p_intra: 0.9,
            },
            Scenario::BodyArea,
            Scenario::Vehicular,
            Scenario::WeightedZipf { exponent: 1.2 },
            Scenario::ObliviousTrap,
            Scenario::AdaptiveIsolator,
            Scenario::CrashAwareIsolator,
            Scenario::RandomMatching,
            Scenario::Tournament,
            Scenario::IntervalConnected { t: 8 },
            Scenario::RoundIsolator,
            Scenario::TorusContact,
        ]
    }

    /// The label used in reports, benchmark grids and `BENCH_*.json`.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Uniform => "uniform",
            Scenario::Zipf { .. } => "zipf",
            Scenario::Community { .. } => "community",
            Scenario::BodyArea => "body-area",
            Scenario::Vehicular => "vehicular",
            Scenario::WeightedZipf { .. } => "weighted-zipf",
            Scenario::ObliviousTrap => "oblivious-trap",
            Scenario::AdaptiveIsolator => "adaptive-isolator",
            Scenario::CrashAwareIsolator => "crash-aware-isolator",
            Scenario::RandomMatching => "random-matching",
            Scenario::Tournament => "tournament",
            Scenario::IntervalConnected { .. } => "interval-connected",
            Scenario::RoundIsolator => "round-isolator",
            Scenario::TorusContact => "torus-contact",
        }
    }

    /// Looks a scenario up by its [`name`](Scenario::name), with the
    /// registry's default parameters.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::registry().into_iter().find(|s| s.name() == name)
    }

    /// `true` iff the scenario's stream depends on the execution (the
    /// online adaptive adversary) and therefore cannot be materialised
    /// faithfully.
    pub fn is_adaptive(&self) -> bool {
        matches!(
            self,
            Scenario::AdaptiveIsolator | Scenario::CrashAwareIsolator
        )
    }

    /// `true` iff the scenario is **round-based**: it natively yields a
    /// matching of disjoint interactions per synchronous round (see
    /// [`Scenario::round_source`]). Its pairwise [`source`] view is the
    /// flattened round stream.
    ///
    /// [`source`]: Scenario::source
    pub fn is_round(&self) -> bool {
        matches!(
            self,
            Scenario::RandomMatching
                | Scenario::Tournament
                | Scenario::IntervalConnected { .. }
                | Scenario::RoundIsolator
                | Scenario::TorusContact
        )
    }

    /// The smallest node count the scenario admits.
    pub fn min_nodes(&self) -> usize {
        match self {
            Scenario::Community { communities, .. } => 2 * (*communities).max(1),
            Scenario::BodyArea | Scenario::CrashAwareIsolator | Scenario::RoundIsolator => 3,
            Scenario::ObliviousTrap => 4,
            _ => 2,
        }
    }

    /// `true` iff `spec` can run against this scenario: everything runs
    /// against the non-adaptive scenarios, while adaptive scenarios only
    /// admit knowledge-free algorithms (their oracles would require
    /// materialising a stream that depends on the execution itself).
    pub fn supports(&self, spec: AlgorithmSpec) -> bool {
        !(self.is_adaptive() && spec.requires_materialization())
    }

    /// A seeded streaming source over `n` nodes. The adversarial
    /// constructions are deterministic and ignore the seed; everything
    /// else streams the exact interactions its workload would materialise.
    /// Round scenarios stream their **flattened** round schedule — each
    /// round's matching, one interaction per step, in matching order (the
    /// view every pairwise consumer gets: materialisation, oracles, fault
    /// plans).
    ///
    /// # Panics
    ///
    /// Panics if `n < self.min_nodes()`.
    pub fn source(&self, n: usize, seed: u64) -> Box<dyn InteractionSource + Send> {
        if let Some(rounds) = self.round_source(n, seed) {
            return Box::new(FlattenedRounds::new(rounds));
        }
        match self {
            Scenario::WeightedZipf { exponent } => {
                Box::new(WeightedRandomAdversary::zipf(n, *exponent, seed))
            }
            Scenario::ObliviousTrap => {
                Box::new(ObliviousTrap::for_greedy_algorithms(n).adversary())
            }
            Scenario::AdaptiveIsolator => Box::new(IsolatorAdversary::new(n)),
            Scenario::CrashAwareIsolator => Box::new(CrashAwareIsolator::new(n)),
            workload_backed => workload_backed
                .workload(n)
                .expect("non-adversary scenarios are workload-backed")
                .source(seed),
        }
    }

    /// A seeded **round** source over `n` nodes, for the round scenarios
    /// (`None` for the pairwise ones). This is the native view the round
    /// engine ([`doda_core::Engine::run_rounds`]) consumes; the
    /// [`source`](Scenario::source) view of the same scenario is the
    /// flattened equivalent.
    ///
    /// # Panics
    ///
    /// Panics if `n < self.min_nodes()`.
    pub fn round_source(&self, n: usize, seed: u64) -> Option<Box<dyn RoundSource + Send>> {
        match self {
            Scenario::RandomMatching => Some(RandomMatchingWorkload::new(n).rounds(seed)),
            Scenario::Tournament => Some(TournamentWorkload::new(n).rounds(seed)),
            Scenario::IntervalConnected { t } => {
                Some(IntervalConnectedWorkload::new(n, *t).rounds(seed))
            }
            Scenario::RoundIsolator => Some(Box::new(RoundIsolator::new(n))),
            Scenario::TorusContact => Some(TorusContactWorkload::new(n).rounds(seed)),
            _ => None,
        }
    }

    /// The backing [`Workload`], for the scenarios that have one (`None`
    /// for the adversary-backed entries).
    pub fn workload(&self, n: usize) -> Option<Box<dyn Workload + Send + Sync>> {
        match self {
            Scenario::Uniform => Some(Box::new(UniformWorkload::new(n))),
            Scenario::Zipf { exponent } => Some(Box::new(ZipfWorkload::new(n, *exponent))),
            Scenario::Community {
                communities,
                p_intra,
            } => Some(Box::new(CommunityWorkload::new(n, *communities, *p_intra))),
            Scenario::BodyArea => Some(Box::new(BodyAreaWorkload::new(n))),
            Scenario::Vehicular => {
                // A square-ish grid: side ≈ √n keeps the road density
                // comparable across node counts.
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                Some(Box::new(VehicularWorkload::new(n, side)))
            }
            Scenario::WeightedZipf { .. }
            | Scenario::ObliviousTrap
            | Scenario::AdaptiveIsolator
            | Scenario::CrashAwareIsolator
            | Scenario::RandomMatching
            | Scenario::Tournament
            | Scenario::IntervalConnected { .. }
            | Scenario::RoundIsolator
            | Scenario::TorusContact => None,
        }
    }

    /// Materialises the first `len` interactions of the scenario's stream,
    /// or `None` for adaptive scenarios (no faithful sequence exists).
    pub fn materialize(&self, n: usize, len: usize, seed: u64) -> Option<InteractionSequence> {
        if self.is_adaptive() {
            return None;
        }
        Some(InteractionSequence::materialize(
            self.source(n, seed).as_mut(),
            len,
        ))
    }
}

impl Scenario {
    /// Layers a fault profile over this scenario, producing an entry of
    /// the faulted scenario space (see [`FaultedScenario`]).
    pub fn with_faults(self, profile: FaultProfile) -> FaultedScenario {
        FaultedScenario {
            base: self,
            faults: Some(profile),
            byzantine: None,
        }
    }

    /// Layers a Byzantine profile over this scenario, producing an entry
    /// of the faulted scenario space (see [`FaultedScenario`]). The
    /// schedule is untouched — liars corrupt the data plane only, and the
    /// trial runner routes such entries through the audited engine path.
    pub fn with_byzantine(self, profile: ByzantineProfile) -> FaultedScenario {
        FaultedScenario {
            base: self,
            faults: None,
            byzantine: Some(profile),
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One entry of the **faulted** scenario space: a base interaction
/// process plus an optional deterministic fault plan layered on top.
///
/// This is the axis product the sweep stack actually enumerates: every
/// [`Scenario`] converts losslessly (`faults: None`) via `From`, so all
/// existing call sites keep working, while
/// [`FaultedScenario::registry`] adds the fault-profile variants
/// (`uniform+crash(p)`, `vehicular+churn(..)`, …) that every consumer —
/// the sharded runner, `doda-bench`, the experiment harness — picks up
/// for free.
///
/// Execution semantics: the **base** stream is what oracles see and what
/// the materialising path fills its sequence from (knowledge describes
/// the committed schedule, not the faults); the fault plan is injected
/// at execution time by the trial runner, per trial, from a sub-seed
/// derived from the trial seed. A fault-free `FaultedScenario` therefore
/// produces byte-identical trials to its plain [`Scenario`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultedScenario {
    /// The base interaction process.
    pub base: Scenario,
    /// The fault plan layered on top, if any.
    pub faults: Option<FaultProfile>,
    /// The Byzantine plan layered on the data plane, if any. Unlike the
    /// fault plan it never perturbs the schedule: liars corrupt what they
    /// transmit, and the runner audits every transfer
    /// ([`crate::trial::TrialConfig::byzantine`]).
    pub byzantine: Option<ByzantineProfile>,
}

impl From<Scenario> for FaultedScenario {
    fn from(base: Scenario) -> Self {
        FaultedScenario {
            base,
            faults: None,
            byzantine: None,
        }
    }
}

impl FaultedScenario {
    /// The default-parameterised faulted registry: every fault-free
    /// scenario of [`Scenario::registry`], followed by the pinned
    /// fault-profile variants of the new axis.
    pub fn registry() -> Vec<FaultedScenario> {
        let mut entries: Vec<FaultedScenario> =
            Scenario::registry().into_iter().map(Into::into).collect();
        entries.extend([
            Scenario::Uniform.with_faults(FaultProfile::crash(0.002)),
            Scenario::Uniform.with_faults(FaultProfile::crash_recoverable(0.002)),
            Scenario::Zipf { exponent: 1.2 }.with_faults(FaultProfile::lossy(0.2)),
            Scenario::Vehicular.with_faults(FaultProfile::churn(0.002, 0.004)),
            Scenario::CrashAwareIsolator.with_faults(FaultProfile::crash(0.005)),
            // Round scenarios cross the fault axis through their flattened
            // stream: losses drop matched pairs, crashes decide data fates
            // under the sink-unmatched trap.
            Scenario::RandomMatching.with_faults(FaultProfile::lossy(0.2)),
            Scenario::RoundIsolator.with_faults(FaultProfile::crash(0.005)),
            // The Byzantine axis: liars corrupt the data plane under the
            // committed schedule. One variant per strategy, plus a
            // fault × byzantine product entry (crashes delay the schedule
            // while forgers pollute it) and a round-scenario crossing
            // (audited over the flattened stream).
            Scenario::Uniform.with_byzantine(ByzantineProfile::forge(0.1)),
            Scenario::Uniform.with_byzantine(ByzantineProfile::duplicate(0.1)),
            Scenario::Zipf { exponent: 1.2 }.with_byzantine(ByzantineProfile::drop_carried(0.1)),
            Scenario::Vehicular.with_byzantine(ByzantineProfile::equivocate(0.1)),
            Scenario::Uniform
                .with_faults(FaultProfile::crash(0.002))
                .with_byzantine(ByzantineProfile::forge(0.1)),
            Scenario::RandomMatching.with_byzantine(ByzantineProfile::forge(0.1)),
        ]);
        entries
    }

    /// The label used in reports and `BENCH_*.json`: the base name, plus
    /// `+<fault label>` and/or `+<byzantine label>` for each plan present
    /// (e.g. `"uniform+crash(0.002)"`, `"uniform+forge(0.1)"`,
    /// `"uniform+crash(0.002)+forge(0.1)"`).
    pub fn name(&self) -> String {
        let mut name = self.base.name().to_string();
        if let Some(profile) = &self.faults {
            name.push('+');
            name.push_str(&profile.label());
        }
        if let Some(profile) = &self.byzantine {
            name.push('+');
            name.push_str(&profile.label());
        }
        name
    }

    /// Looks an entry up by its [`name`](FaultedScenario::name) among the
    /// registry defaults.
    pub fn by_name(name: &str) -> Option<FaultedScenario> {
        FaultedScenario::registry()
            .into_iter()
            .find(|s| s.name() == name)
    }

    /// The label of the fault plan (`"none"` when fault-free) — the
    /// `fault_profile` column of the bench schema.
    pub fn fault_label(&self) -> String {
        self.faults
            .map_or_else(|| "none".to_string(), |p| p.label())
    }

    /// Layers a Byzantine profile over this entry, keeping any fault plan
    /// — the builder behind the registry's fault × byzantine product
    /// entries.
    pub fn with_byzantine(mut self, profile: ByzantineProfile) -> FaultedScenario {
        self.byzantine = Some(profile);
        self
    }

    /// The label of the Byzantine plan (`"none"` when absent) — the
    /// `byzantine_profile` column of the bench schema.
    pub fn byzantine_label(&self) -> String {
        self.byzantine
            .map_or_else(|| "none".to_string(), |p| p.label())
    }

    /// Delegates to [`Scenario::is_adaptive`]: faults never change
    /// whether the *base* stream depends on the execution.
    pub fn is_adaptive(&self) -> bool {
        self.base.is_adaptive()
    }

    /// Delegates to [`Scenario::supports`]: oracles are built from the
    /// base stream, so the compatibility rule is the base's.
    pub fn supports(&self, spec: AlgorithmSpec) -> bool {
        self.base.supports(spec)
    }

    /// Delegates to [`Scenario::is_round`]: faults never change whether
    /// the base schedule is round-based.
    pub fn is_round(&self) -> bool {
        self.base.is_round()
    }

    /// The smallest node count the entry admits: the base's floor, never
    /// below the fault plan's live floor.
    pub fn min_nodes(&self) -> usize {
        let floor = self.faults.map_or(0, |p| p.min_live);
        self.base.min_nodes().max(floor)
    }

    /// Validates the fault plan for an execution over `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns the typed [`FaultConfigError`] for a plan that could hang
    /// the execution (live floor below 2), exceed the node count, or
    /// carry an out-of-range probability. Fault-free entries always pass.
    pub fn validate(&self, n: usize) -> Result<(), FaultConfigError> {
        match &self.faults {
            None => Ok(()),
            Some(profile) => profile.validate(n),
        }
    }

    /// Validates the Byzantine plan (fraction within `[0, 1]`).
    /// Byzantine-free entries always pass.
    ///
    /// # Errors
    ///
    /// Returns the typed [`ByzantineConfigError`] for an out-of-range
    /// lying fraction.
    pub fn validate_byzantine(&self) -> Result<(), ByzantineConfigError> {
        match &self.byzantine {
            None => Ok(()),
            Some(profile) => profile.validate(),
        }
    }

    /// The per-trial fault injection: the profile plus a fault-stream
    /// seed derived from (but independent of) the trial seed, so base
    /// stream and fault stream never share randomness.
    pub fn fault_injection(&self, trial_seed: u64) -> Option<FaultInjection> {
        self.faults.map(|profile| FaultInjection {
            profile,
            seed: SeedSequence::new(trial_seed).seed(FAULT_STREAM_LABEL),
        })
    }

    /// The per-trial Byzantine injection: the profile plus a seed for the
    /// liar-selection/forgery streams, derived from (but independent of)
    /// the trial seed — and of the fault stream's, so neither plane
    /// perturbs the other's randomness. `Some` whenever a profile is
    /// attached, even at fraction `0` (a zero-liar plan still runs the
    /// audited path and earns a `Clean` verdict).
    pub fn byzantine_injection(&self, trial_seed: u64) -> Option<ByzantineInjection> {
        self.byzantine.map(|profile| ByzantineInjection {
            profile,
            seed: SeedSequence::new(trial_seed).seed(BYZANTINE_STREAM_LABEL),
        })
    }

    /// A seeded streaming source with the fault plan already applied —
    /// the composite view for direct engine use (sweeps go through
    /// [`crate::runner::run_scenario_trials`], which injects faults per
    /// trial instead).
    ///
    /// # Panics
    ///
    /// Panics if `n < self.min_nodes()` (propagated from the base) or if
    /// the fault plan is invalid for `n` (use
    /// [`validate`](FaultedScenario::validate) for the typed error).
    pub fn source(&self, n: usize, seed: u64) -> Box<dyn InteractionSource + Send> {
        let base = self.base.source(n, seed);
        match self.fault_injection(seed) {
            None => base,
            Some(injection) => Box::new(
                FaultedSource::new(base, injection.profile, injection.seed)
                    .unwrap_or_else(|e| panic!("invalid fault plan for '{}': {e}", self.name())),
            ),
        }
    }
}

/// The seed-stream label separating fault randomness from the base
/// stream's (see [`FaultedScenario::fault_injection`]).
const FAULT_STREAM_LABEL: u64 = 0xFA;

/// The seed-stream label separating Byzantine randomness (liar selection
/// and forgery draws) from the base and fault streams' (see
/// [`FaultedScenario::byzantine_injection`]; `pub(crate)` so workload
/// sweeps seed their Byzantine plans identically).
pub(crate) const BYZANTINE_STREAM_LABEL: u64 = 0xB2;

impl std::fmt::Display for FaultedScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doda_core::sequence::AdversaryView;
    use doda_graph::NodeId;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let registry = Scenario::registry();
        for s in &registry {
            assert_eq!(Scenario::by_name(s.name()), Some(*s));
            assert_eq!(s.to_string(), s.name());
        }
        let mut names: Vec<_> = registry.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), registry.len());
        assert_eq!(Scenario::by_name("no-such-scenario"), None);
    }

    #[test]
    fn every_scenario_streams_at_its_minimum_node_count() {
        for s in Scenario::registry() {
            for n in [s.min_nodes(), s.min_nodes() + 5] {
                let mut source = s.source(n, 7);
                assert_eq!(source.node_count(), n, "{s}");
                let owns = vec![true; n];
                let view = AdversaryView {
                    owns_data: &owns,
                    sink: NodeId(0),
                };
                for t in 0..50u64 {
                    let i = source
                        .next_interaction(t, &view)
                        .unwrap_or_else(|| panic!("{s} ran dry at t={t}, n={n}"));
                    assert!(i.max().index() < n, "{s}");
                }
            }
        }
    }

    #[test]
    fn materialization_matches_the_stream_for_non_adaptive_scenarios() {
        for s in Scenario::registry() {
            let n = s.min_nodes().max(8);
            match s.materialize(n, 120, 3) {
                None => assert!(s.is_adaptive(), "{s}"),
                Some(seq) => {
                    assert_eq!(seq.len(), 120, "{s}");
                    assert_eq!(seq.node_count(), n, "{s}");
                    // Deterministic: a second materialisation is identical.
                    assert_eq!(s.materialize(n, 120, 3), Some(seq), "{s}");
                }
            }
        }
    }

    #[test]
    fn adaptive_scenarios_only_support_knowledge_free_specs() {
        for s in Scenario::registry() {
            for spec in AlgorithmSpec::all() {
                let expected = !(s.is_adaptive() && spec.requires_materialization());
                assert_eq!(s.supports(spec), expected, "{s} / {spec}");
            }
        }
    }

    #[test]
    fn faulted_registry_extends_the_plain_registry() {
        let plain = Scenario::registry();
        let faulted = FaultedScenario::registry();
        assert!(faulted.len() > plain.len());
        // The plain registry embeds as the fault-free prefix.
        for (entry, base) in faulted.iter().zip(&plain) {
            assert_eq!(entry.base, *base);
            assert!(entry.faults.is_none());
            assert_eq!(entry.name(), base.name());
            assert_eq!(entry.fault_label(), "none");
        }
        // Names are unique and resolvable; faulted names carry the axis.
        let mut names: Vec<String> = faulted.iter().map(FaultedScenario::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), faulted.len());
        for entry in &faulted {
            assert_eq!(FaultedScenario::by_name(&entry.name()), Some(*entry));
            assert_eq!(entry.to_string(), entry.name());
            if let Some(profile) = entry.faults {
                assert!(entry.name().contains('+'));
                assert_eq!(entry.fault_label(), profile.label());
                assert!(entry.validate(entry.min_nodes()).is_ok());
            }
        }
        assert_eq!(FaultedScenario::by_name("uniform+crash(0.9999)"), None);
    }

    #[test]
    fn faulted_sources_stream_and_fault_free_entries_match_the_base() {
        use doda_core::StepEvent;

        let entry = Scenario::Uniform.with_faults(FaultProfile::crash(0.05));
        let n = 10;
        let mut source = entry.source(n, 7);
        let owns = vec![true; n];
        let view = AdversaryView {
            owns_data: &owns,
            sink: NodeId(0),
        };
        let mut crashes = 0;
        for t in 0..2_000u64 {
            match source.next_event(t, &view) {
                Some(StepEvent::Crash { .. }) => crashes += 1,
                Some(_) => {}
                None => panic!("uniform+crash ran dry at t={t}"),
            }
        }
        assert!(crashes > 0, "a 5% crash plan must fire within 2000 steps");

        // A fault-free FaultedScenario streams exactly its base.
        let plain: FaultedScenario = Scenario::Uniform.into();
        let mut a = plain.source(n, 3);
        let mut b = Scenario::Uniform.source(n, 3);
        for t in 0..200u64 {
            assert_eq!(a.next_interaction(t, &view), b.next_interaction(t, &view));
        }
    }

    #[test]
    fn invalid_fault_plans_are_typed_errors_not_hangs() {
        use doda_core::fault::FaultConfigError;

        // A plan whose churn could strand the execution below 2 live
        // nodes is rejected up front with the typed error...
        let below_floor = Scenario::Uniform.with_faults(FaultProfile {
            min_live: 1,
            ..FaultProfile::crash(0.1)
        });
        assert_eq!(
            below_floor.validate(8),
            Err(FaultConfigError::MinLiveTooSmall { min_live: 1 })
        );
        // ...as is a floor the node count cannot satisfy.
        let oversized = Scenario::Uniform.with_faults(FaultProfile {
            min_live: 12,
            ..FaultProfile::churn(0.1, 0.1)
        });
        assert_eq!(
            oversized.validate(8),
            Err(FaultConfigError::MinLiveExceedsNodes { min_live: 12, n: 8 })
        );
        assert_eq!(oversized.min_nodes(), 12);
        // Fault-free entries always validate.
        assert!(FaultedScenario::from(Scenario::Uniform).validate(2).is_ok());
    }

    #[test]
    fn fault_injection_is_deterministic_and_independent_of_the_base_stream() {
        let entry = Scenario::Uniform.with_faults(FaultProfile::lossy(0.1));
        let a = entry.fault_injection(42).unwrap();
        let b = entry.fault_injection(42).unwrap();
        assert_eq!(a, b);
        assert_ne!(a.seed, 42, "fault stream must not reuse the base seed");
        assert_ne!(
            entry.fault_injection(43).unwrap().seed,
            a.seed,
            "distinct trials draw distinct fault streams"
        );
        assert!(FaultedScenario::from(Scenario::Uniform)
            .fault_injection(42)
            .is_none());
    }

    #[test]
    fn byzantine_registry_entries_are_resolvable_and_validated() {
        let registry = FaultedScenario::registry();
        let byz: Vec<_> = registry.iter().filter(|e| e.byzantine.is_some()).collect();
        assert_eq!(byz.len(), 6, "one per strategy, a product and a round");
        for entry in &byz {
            assert!(entry.name().contains('+'), "{entry}");
            assert_eq!(entry.byzantine_label(), entry.byzantine.unwrap().label());
            assert!(entry.validate_byzantine().is_ok(), "{entry}");
            assert_eq!(FaultedScenario::by_name(&entry.name()), Some(**entry));
        }
        // The product entry carries both axes in its name.
        assert!(registry.iter().any(|e| e.faults.is_some()
            && e.byzantine.is_some()
            && e.name() == "uniform+crash(0.002)+forge(0.1)"));
        // Plain entries expose no byzantine plan.
        let plain = FaultedScenario::from(Scenario::Uniform);
        assert!(plain.byzantine_injection(42).is_none());
        assert_eq!(plain.byzantine_label(), "none");
    }

    #[test]
    fn byzantine_injection_is_deterministic_and_independent_of_other_streams() {
        let entry = Scenario::Uniform
            .with_faults(FaultProfile::crash(0.002))
            .with_byzantine(ByzantineProfile::forge(0.1));
        let a = entry.byzantine_injection(42).unwrap();
        assert_eq!(a, entry.byzantine_injection(42).unwrap());
        assert_ne!(a.seed, 42, "byzantine stream must not reuse the base seed");
        assert_ne!(
            a.seed,
            entry.fault_injection(42).unwrap().seed,
            "the two planes draw from distinct streams"
        );
        assert_ne!(
            entry.byzantine_injection(43).unwrap().seed,
            a.seed,
            "distinct trials draw distinct byzantine streams"
        );
        // A fraction-0 plan still yields an injection: the audited path
        // runs with zero liars and earns its Clean verdict.
        let transparent = Scenario::Uniform.with_byzantine(ByzantineProfile::forge(0.0));
        assert!(transparent.byzantine_injection(42).is_some());
    }

    #[test]
    fn round_scenarios_expose_round_sources_that_flatten_to_the_stream() {
        let mut round_scenarios = 0;
        for s in Scenario::registry() {
            let n = s.min_nodes().max(8);
            match s.round_source(n, 5) {
                None => assert!(!s.is_round(), "{s}"),
                Some(rounds) => {
                    round_scenarios += 1;
                    assert!(s.is_round(), "{s}");
                    assert!(!s.is_adaptive(), "{s}");
                    assert_eq!(rounds.node_count(), n, "{s}");
                    // The pairwise view is exactly the flattened schedule.
                    let mut flat = doda_core::FlattenedRounds::new(rounds);
                    let mut source = s.source(n, 5);
                    let owns = vec![true; n];
                    let view = AdversaryView {
                        owns_data: &owns,
                        sink: NodeId(0),
                    };
                    for t in 0..200u64 {
                        assert_eq!(
                            source.next_interaction(t, &view),
                            flat.next_interaction(t, &view),
                            "{s} diverged at t={t}"
                        );
                    }
                }
            }
        }
        assert_eq!(round_scenarios, 5);
    }

    #[test]
    fn workload_backed_scenarios_expose_their_workload() {
        for s in Scenario::registry() {
            let n = s.min_nodes().max(8);
            match s.workload(n) {
                Some(w) => assert_eq!(w.node_count(), n, "{s}"),
                None => assert!(
                    matches!(
                        s,
                        Scenario::WeightedZipf { .. }
                            | Scenario::ObliviousTrap
                            | Scenario::AdaptiveIsolator
                            | Scenario::CrashAwareIsolator
                    ) || s.is_round(),
                    "{s}"
                ),
            }
        }
    }
}
