//! Shared registry fixtures for the cross-crate test suites.
//!
//! The equivalence and conformance suites under `tests/` all enumerate
//! the same scenario registry, but historically each re-listed the
//! faulted entries by hand — so a registry extension (a new fault plan,
//! the Byzantine axis) silently left some suites behind. These helpers
//! are the single source of truth: a suite picks the slice matching the
//! paths it can exercise and inherits every future registry entry for
//! free.

use crate::scenario::FaultedScenario;

/// Every registry entry: plain, faulted, Byzantine, and product
/// entries alike. For suites that drive trials through [`crate::Sweep`]
/// (which routes Byzantine entries onto the audited scalar paths).
pub fn registry_cases() -> Vec<FaultedScenario> {
    FaultedScenario::registry()
}

/// The registry minus entries carrying a Byzantine plan. For suites
/// that drive the engine directly (checkpoint slicing, hand-rolled
/// `run`/`step_for` loops): those paths cannot reproduce the audited
/// `run_audited` execution, so Byzantine entries are out of scope by
/// construction rather than by a per-suite filter that can drift.
pub fn byzantine_free_registry_cases() -> Vec<FaultedScenario> {
    FaultedScenario::registry()
        .into_iter()
        .filter(|scenario| scenario.byzantine.is_none())
        .collect()
}

/// The registry entries whose base schedule is round-based — plain,
/// faulted, and Byzantine variants. For the round-equivalence suite:
/// fault-free entries route through the native round path, faulted and
/// Byzantine entries through the flattened stream.
pub fn round_registry_cases() -> Vec<FaultedScenario> {
    FaultedScenario::registry()
        .into_iter()
        .filter(FaultedScenario::is_round)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_slices_partition_sensibly() {
        let all = registry_cases();
        let honest = byzantine_free_registry_cases();
        let rounds = round_registry_cases();
        assert!(
            honest.len() < all.len(),
            "the registry carries Byzantine entries"
        );
        assert!(honest.iter().all(|s| s.byzantine.is_none()));
        assert!(rounds.iter().all(FaultedScenario::is_round));
        // Every slice is a sub-multiset of the registry, in registry order.
        let names: Vec<String> = all.iter().map(FaultedScenario::name).collect();
        for slice in [&honest, &rounds] {
            let mut cursor = 0usize;
            for entry in slice.iter() {
                let name = entry.name();
                let pos = names[cursor..]
                    .iter()
                    .position(|n| *n == name)
                    .unwrap_or_else(|| panic!("slice entry '{name}' not in registry order"));
                cursor += pos + 1;
            }
        }
        // The round slice covers at least one plain, one faulted and one
        // Byzantine variant, so the suite exercises all three routes.
        assert!(rounds
            .iter()
            .any(|s| s.faults.is_none() && s.byzantine.is_none()));
        assert!(rounds.iter().any(|s| s.faults.is_some()));
        assert!(rounds.iter().any(|s| s.byzantine.is_some()));
    }
}
