//! Multi-trial batches.
//!
//! A batch fixes an algorithm, a node count and a trial count; each trial
//! draws an independent sequence from the uniform randomized adversary
//! (the paper's Section 4 setting), runs the algorithm, and the batch
//! summarises the interaction counts. Batches can run their trials across
//! threads with `std::thread::scope` scoped threads.

use doda_stats::rng::SeedSequence;
use doda_stats::Summary;
use doda_workloads::{UniformWorkload, Workload};
use parking_lot::Mutex;

use crate::spec::AlgorithmSpec;
use crate::trial::{run_trial_on_sequence, TrialConfig, TrialResult};

/// Configuration of a batch of independent randomized-adversary trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of nodes (the sink is node 0).
    pub n: usize,
    /// Number of independent trials.
    pub trials: usize,
    /// Length of the materialised random sequence per trial; `None` uses
    /// the generous default `8·n²` (see
    /// `doda_adversary::RandomizedAdversary::default_horizon`).
    pub horizon: Option<usize>,
    /// Root seed; trial `i` uses an independent sub-seed derived from it.
    pub seed: u64,
    /// Whether to spread trials across worker threads.
    pub parallel: bool,
}

impl BatchConfig {
    /// The sequence length used per trial.
    pub fn horizon_len(&self) -> usize {
        self.horizon
            .unwrap_or_else(|| doda_adversary::RandomizedAdversary::default_horizon(self.n))
    }
}

/// Summary of a batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of trials run.
    pub trials: usize,
    /// Number of trials that completed the aggregation within the horizon.
    pub completed: usize,
    /// Summary of the interaction counts to completion (over completed
    /// trials only).
    pub interactions: Summary,
    /// Fraction of completed trials (`completed / trials`).
    pub completion_rate: f64,
}

impl BatchResult {
    /// Fraction of completed trials whose completion count is within
    /// `bound` interactions — the empirical "with high probability within
    /// the bound" measure used by the Theorem 10 experiment.
    pub fn fraction_within(&self, bound: f64, raw: &[TrialResult]) -> f64 {
        let within = raw
            .iter()
            .filter(|r| {
                r.interactions_to_completion()
                    .map(|x| x <= bound)
                    .unwrap_or(false)
            })
            .count();
        within as f64 / raw.len().max(1) as f64
    }
}

/// Runs a batch against the uniform randomized adversary and returns its
/// summary together with the raw per-trial results.
///
/// # Panics
///
/// Panics if every trial fails to terminate (no summary can be formed); in
/// practice this means the horizon was far too small for the algorithm.
pub fn run_batch_detailed(
    spec: AlgorithmSpec,
    config: &BatchConfig,
) -> (BatchResult, Vec<TrialResult>) {
    let seeds = SeedSequence::new(config.seed);
    let horizon = config.horizon_len();
    let trial_config = TrialConfig::default();

    let run_one = |trial_idx: usize| -> TrialResult {
        let seed = seeds.seed(trial_idx as u64);
        let seq = UniformWorkload::new(config.n).generate(horizon, seed);
        run_trial_on_sequence(spec, &seq, &trial_config)
    };

    let results: Vec<TrialResult> = if config.parallel && config.trials > 1 {
        let collected = Mutex::new(vec![None; config.trials]);
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .min(config.trials);
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let collected = &collected;
                let run_one = &run_one;
                scope.spawn(move || {
                    let mut idx = worker;
                    while idx < config.trials {
                        let result = run_one(idx);
                        collected.lock()[idx] = Some(result);
                        idx += threads;
                    }
                });
            }
        });
        collected
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every trial index is filled by exactly one worker"))
            .collect()
    } else {
        (0..config.trials).map(run_one).collect()
    };

    let completions: Vec<f64> = results
        .iter()
        .filter_map(|r| r.interactions_to_completion())
        .collect();
    let completed = completions.len();
    let interactions = Summary::from_values(&completions).unwrap_or_else(|| {
        panic!(
            "no trial of {} terminated within {} interactions (n = {}); increase the horizon",
            spec, horizon, config.n
        )
    });
    (
        BatchResult {
            algorithm: spec.label().to_string(),
            n: config.n,
            trials: config.trials,
            completed,
            interactions,
            completion_rate: completed as f64 / config.trials.max(1) as f64,
        },
        results,
    )
}

/// Runs a batch and returns only its summary.
pub fn run_batch(spec: AlgorithmSpec, config: &BatchConfig) -> BatchResult {
    run_batch_detailed(spec, config).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: usize, trials: usize, parallel: bool) -> BatchConfig {
        BatchConfig {
            n,
            trials,
            horizon: None,
            seed: 42,
            parallel,
        }
    }

    #[test]
    fn sequential_batch_summarises_trials() {
        let (result, raw) = run_batch_detailed(AlgorithmSpec::Gathering, &config(12, 8, false));
        assert_eq!(result.trials, 8);
        assert_eq!(result.completed, 8);
        assert_eq!(raw.len(), 8);
        assert_eq!(result.completion_rate, 1.0);
        assert!(result.interactions.mean >= (12 - 1) as f64);
        assert!(result.fraction_within(f64::INFINITY, &raw) >= 0.99);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sequential = run_batch(AlgorithmSpec::Gathering, &config(10, 6, false));
        let parallel = run_batch(AlgorithmSpec::Gathering, &config(10, 6, true));
        // Same seeds per trial index, so the summaries are identical.
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn ordering_offline_fastest_waiting_slowest() {
        let cfg = config(16, 6, false);
        let offline = run_batch(AlgorithmSpec::OfflineOptimal, &cfg);
        let gathering = run_batch(AlgorithmSpec::Gathering, &cfg);
        let waiting = run_batch(AlgorithmSpec::Waiting, &cfg);
        assert!(offline.interactions.mean < gathering.interactions.mean);
        assert!(gathering.interactions.mean < waiting.interactions.mean);
    }

    #[test]
    fn custom_horizon_is_respected() {
        let cfg = BatchConfig {
            n: 8,
            trials: 3,
            horizon: Some(2_000),
            seed: 1,
            parallel: false,
        };
        assert_eq!(cfg.horizon_len(), 2_000);
        let result = run_batch(AlgorithmSpec::Gathering, &cfg);
        assert_eq!(result.completed, 3);
    }

    #[test]
    #[should_panic(expected = "increase the horizon")]
    fn hopelessly_short_horizon_panics_with_guidance() {
        let cfg = BatchConfig {
            n: 10,
            trials: 2,
            horizon: Some(3),
            seed: 1,
            parallel: false,
        };
        let _ = run_batch(AlgorithmSpec::Waiting, &cfg);
    }
}
