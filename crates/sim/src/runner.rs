//! Multi-trial batches.
//!
//! A batch fixes an algorithm, a node count and a trial count; each trial
//! draws an independent interaction stream from a workload or scenario (by
//! default the uniform randomized adversary — the paper's Section 4
//! setting), runs the algorithm, and the batch summarises the interaction
//! counts.
//!
//! # Streaming-first execution
//!
//! Knowledge-free algorithms ([`AlgorithmSpec::requires_materialization`]
//! is `false`) run **streamed**: each trial pulls interactions one at a
//! time from a seeded source, so a sweep's memory footprint is `O(n)`
//! regardless of the horizon, and adaptive adversaries (which cannot be
//! pre-generated at all) sweep through the exact same machinery
//! ([`run_scenario_trials`]). Knowledge-based algorithms materialise each
//! trial's sequence into a per-worker scratch buffer first, because their
//! oracles are functions of the future. Both paths produce byte-identical
//! results for the same seed, enforced by `tests/determinism.rs` and the
//! `streaming_equivalence` property suite.
//!
//! # Sharded execution
//!
//! Parallel batches are *sharded*: the trial indices are split into one
//! contiguous chunk per worker, every worker owns a [`TrialRunner`] (reused
//! engine scratch) plus — only on the materialising path — a scratch
//! [`InteractionSequence`] refilled in place, and a local result vector.
//! Nothing is shared while trials run — no mutex, no per-trial
//! synchronisation — and the local vectors are concatenated once, in
//! worker order, when the scope joins. Because trial `i` always uses the
//! sub-seed `SeedSequence::seed(i)` regardless of which worker executes
//! it, serial and parallel runs of the same [`BatchConfig`] produce
//! **identical** [`BatchResult`]s and raw [`TrialResult`]s, byte for byte.
//!
//! [`TrialRunner`]: crate::trial::TrialRunner
//! [`InteractionSequence`]: doda_core::InteractionSequence

use std::ops::Range;

use doda_stats::Summary;
use doda_workloads::{UniformWorkload, Workload};

use crate::scenario::FaultedScenario;
use crate::spec::AlgorithmSpec;
use crate::sweep::Sweep;
use crate::trial::TrialResult;

/// Configuration of a batch of independent randomized-adversary trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of nodes (the sink is node 0).
    pub n: usize,
    /// Number of independent trials.
    pub trials: usize,
    /// Length of the materialised random sequence per trial; `None` uses
    /// the generous default `8·n²` (see
    /// `doda_adversary::RandomizedAdversary::default_horizon`).
    pub horizon: Option<usize>,
    /// Root seed; trial `i` uses an independent sub-seed derived from it.
    pub seed: u64,
    /// Whether to spread trials across worker threads.
    pub parallel: bool,
}

impl BatchConfig {
    /// The sequence length used per trial.
    pub fn horizon_len(&self) -> usize {
        self.horizon
            .unwrap_or_else(|| doda_adversary::RandomizedAdversary::default_horizon(self.n))
    }
}

/// Summary of a batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    /// Algorithm label.
    pub algorithm: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of trials run.
    pub trials: usize,
    /// Number of trials that completed the aggregation within the horizon.
    pub completed: usize,
    /// Summary of the interaction counts to completion (over completed
    /// trials only).
    pub interactions: Summary,
    /// Fraction of completed trials (`completed / trials`).
    pub completion_rate: f64,
}

impl BatchResult {
    /// Fraction of completed trials whose completion count is within
    /// `bound` interactions — the empirical "with high probability within
    /// the bound" measure used by the Theorem 10 experiment.
    pub fn fraction_within(&self, bound: f64, raw: &[TrialResult]) -> f64 {
        let within = raw
            .iter()
            .filter(|r| {
                r.interactions_to_completion()
                    .map(|x| x <= bound)
                    .unwrap_or(false)
            })
            .count();
        within as f64 / raw.len().max(1) as f64
    }
}

/// Splits `trials` into contiguous per-worker chunks and concatenates the
/// chunk results in worker order (the sharded-execution skeleton shared by
/// every sweep entry point).
pub(crate) fn shard<F>(trials: usize, parallel: bool, run_chunk: F) -> Vec<TrialResult>
where
    F: Fn(Range<usize>) -> Vec<TrialResult> + Sync,
{
    if parallel && trials > 1 {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .min(trials);
        let chunk = trials.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let run_chunk = &run_chunk;
                    let start = worker * chunk;
                    let end = trials.min(start + chunk);
                    scope.spawn(move || run_chunk(start..end))
                })
                .collect();
            let mut results = Vec::with_capacity(trials);
            for handle in handles {
                results.extend(handle.join().expect("batch worker thread panicked"));
            }
            results
        })
    } else {
        run_chunk(0..trials)
    }
}

/// Runs `config.trials` independent trials of `spec`, each over a fresh
/// interaction stream drawn from `workload`, and returns the raw per-trial
/// results in trial-index order.
///
/// **Deprecation note:** this is a thin wrapper over the unified sweep
/// builder — [`Sweep::workload`] with [`Sweep::config`] — kept so existing
/// call sites migrate without churn. New code should use [`Sweep`], which
/// additionally exposes the execution tier
/// ([`crate::sweep::ExecutionTier`]) and lane width.
///
/// # Panics
///
/// Panics if `workload.node_count() != config.n`, or if a worker thread
/// panics.
#[deprecated(note = "use Sweep")]
pub fn run_trials<W>(spec: AlgorithmSpec, workload: &W, config: &BatchConfig) -> Vec<TrialResult>
where
    W: Workload + Sync + ?Sized,
{
    Sweep::workload(spec, &workload).config(config).run()
}

/// Runs `config.trials` independent trials of `spec` against `scenario` —
/// the scenario-registry counterpart of [`run_trials`], covering the
/// adversaries (oblivious trap, weighted, **adaptive**) alongside the
/// synthetic workloads, and — through the [`FaultedScenario`] axis — any
/// of them with a fault plan layered on top (a plain
/// [`crate::scenario::Scenario`] converts implicitly, fault-free).
///
/// Adaptive scenarios construct a fresh live adversary per trial and run
/// it streamed through the same sharded machinery; serial and parallel
/// runs remain byte-identical because the adversary's decisions depend
/// only on its own trial's execution. Fault plans preserve that: trial
/// `i` derives its fault-stream seed from its own trial seed, no matter
/// which worker executes it. On the materialising path the per-worker
/// scratch sequence is filled from the **base** stream (oracles describe
/// the committed schedule, not the faults) and the plan is injected at
/// execution time.
///
/// **Round scenarios** ([`crate::scenario::Scenario::is_round`]) run
/// their fault-free knowledge-free trials through the engine's native
/// batched round path ([`crate::trial::TrialRunner::run_rounds`]); faulted and
/// materialising trials consume the flattened round stream instead (the
/// fault layer and the oracles are pairwise constructs). The round and
/// flattened paths are byte-identical on any round stream — pinned by
/// `tests/round_equivalence.rs` — so the routing never changes a number.
///
/// **Deprecation note:** this is a thin wrapper over the unified sweep
/// builder — [`Sweep::scenario`] with [`Sweep::config`] — kept so existing
/// call sites migrate without churn. New code should use [`Sweep`], which
/// additionally exposes the execution tier
/// ([`crate::sweep::ExecutionTier`]) and lane width. The automatic
/// routing described above is exactly [`Sweep`]'s
/// [`Auto`](crate::sweep::ExecutionTier::Auto) tier.
///
/// # Panics
///
/// Panics if `spec` requires materialisation and `scenario` is adaptive
/// (an adaptive adversary's stream depends on the execution, so no
/// faithful sequence exists to build oracles from — check
/// [`FaultedScenario::supports`] first), if the fault plan is invalid for
/// `config.n` (the typed [`doda_core::fault::FaultConfigError`] is the
/// panic message — check [`FaultedScenario::validate`] first), if
/// `config.n` is below [`FaultedScenario::min_nodes`], or if a worker
/// thread panics.
#[deprecated(note = "use Sweep")]
pub fn run_scenario_trials(
    spec: AlgorithmSpec,
    scenario: impl Into<FaultedScenario>,
    config: &BatchConfig,
) -> Vec<TrialResult> {
    Sweep::scenario(spec, scenario).config(config).run()
}

/// Summarises raw trial results into a [`BatchResult`].
///
/// # Panics
///
/// Panics if no trial terminated (no summary can be formed); in practice
/// this means the horizon was far too small for the algorithm.
pub(crate) fn summarize(
    spec: AlgorithmSpec,
    config: &BatchConfig,
    results: &[TrialResult],
) -> BatchResult {
    let completions: Vec<f64> = results
        .iter()
        .filter_map(|r| r.interactions_to_completion())
        .collect();
    let completed = completions.len();
    let interactions = Summary::from_values(&completions).unwrap_or_else(|| {
        panic!(
            "no trial of {} terminated within {} interactions (n = {}); increase the horizon",
            spec,
            config.horizon_len(),
            config.n
        )
    });
    BatchResult {
        algorithm: spec.label().to_string(),
        n: config.n,
        trials: config.trials,
        completed,
        interactions,
        completion_rate: completed as f64 / config.trials.max(1) as f64,
    }
}

/// Runs a batch against the uniform randomized adversary and returns its
/// summary together with the raw per-trial results.
///
/// **Deprecation note:** prefer [`Sweep::scenario`] with
/// [`crate::scenario::Scenario::Uniform`] and [`Sweep::run_summarized`];
/// this wrapper is kept for existing call sites.
///
/// # Panics
///
/// Panics if every trial fails to terminate (no summary can be formed); in
/// practice this means the horizon was far too small for the algorithm.
#[deprecated(note = "use Sweep")]
pub fn run_batch_detailed(
    spec: AlgorithmSpec,
    config: &BatchConfig,
) -> (BatchResult, Vec<TrialResult>) {
    let workload = UniformWorkload::new(config.n);
    let results = Sweep::workload(spec, &workload).config(config).run();
    (summarize(spec, config, &results), results)
}

/// Runs a batch and returns only its summary.
#[deprecated(note = "use Sweep")]
pub fn run_batch(spec: AlgorithmSpec, config: &BatchConfig) -> BatchResult {
    #[allow(deprecated)]
    run_batch_detailed(spec, config).0
}

#[cfg(test)]
mod tests {
    // The deprecated wrappers stay under test until they are removed:
    // these tests pin that each one still matches its `Sweep` equivalent.
    #![allow(deprecated)]

    use super::*;
    use crate::scenario::Scenario;
    use doda_core::fault::FaultProfile;
    use doda_workloads::ZipfWorkload;

    fn config(n: usize, trials: usize, parallel: bool) -> BatchConfig {
        BatchConfig {
            n,
            trials,
            horizon: None,
            seed: 42,
            parallel,
        }
    }

    #[test]
    fn sequential_batch_summarises_trials() {
        let (result, raw) = run_batch_detailed(AlgorithmSpec::Gathering, &config(12, 8, false));
        assert_eq!(result.trials, 8);
        assert_eq!(result.completed, 8);
        assert_eq!(raw.len(), 8);
        assert_eq!(result.completion_rate, 1.0);
        assert!(result.interactions.mean >= (12 - 1) as f64);
        assert!(result.fraction_within(f64::INFINITY, &raw) >= 0.99);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let sequential = run_batch_detailed(AlgorithmSpec::Gathering, &config(10, 6, false));
        let parallel = run_batch_detailed(AlgorithmSpec::Gathering, &config(10, 6, true));
        // Same seeds per trial index regardless of sharding, so both the
        // summary and the raw per-trial results are identical.
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn run_trials_supports_non_uniform_workloads_without_panicking() {
        let cfg = BatchConfig {
            n: 10,
            trials: 4,
            horizon: Some(5), // hopeless horizon: zero completions allowed
            seed: 3,
            parallel: false,
        };
        let workload = ZipfWorkload::new(10, 1.2);
        let raw = run_trials(AlgorithmSpec::Waiting, &workload, &cfg);
        assert_eq!(raw.len(), 4);
        assert!(raw.iter().all(|r| !r.terminated()));
    }

    #[test]
    #[should_panic(expected = "workload is over")]
    fn run_trials_rejects_mismatched_node_counts() {
        let workload = ZipfWorkload::new(8, 1.2);
        let _ = run_trials(AlgorithmSpec::Waiting, &workload, &config(10, 2, false));
    }

    #[test]
    fn scenario_sweep_runs_adaptive_adversaries_sharded() {
        let cfg = BatchConfig {
            n: 12,
            trials: 6,
            horizon: Some(4_000),
            seed: 9,
            parallel: false,
        };
        let serial =
            run_scenario_trials(AlgorithmSpec::Gathering, Scenario::AdaptiveIsolator, &cfg);
        let parallel = run_scenario_trials(
            AlgorithmSpec::Gathering,
            Scenario::AdaptiveIsolator,
            &BatchConfig {
                parallel: true,
                ..cfg
            },
        );
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(|r| r.terminated() && r.data_conserved));
        // The same adversary starves Waiting for the whole horizon.
        let waiting = run_scenario_trials(AlgorithmSpec::Waiting, Scenario::AdaptiveIsolator, &cfg);
        assert!(waiting.iter().all(|r| !r.terminated()));
        assert!(waiting.iter().all(|r| r.interactions_processed == 4_000));
    }

    #[test]
    fn scenario_sweep_materializes_for_knowledge_based_specs() {
        let cfg = BatchConfig {
            n: 10,
            trials: 3,
            horizon: None,
            seed: 4,
            parallel: false,
        };
        let raw = run_scenario_trials(
            AlgorithmSpec::WaitingGreedy { tau: None },
            Scenario::Uniform,
            &cfg,
        );
        assert_eq!(raw.len(), 3);
        assert!(raw.iter().all(|r| r.terminated()));
        // The scenario and workload views of "uniform" are the same process:
        // identical seeds produce identical trials.
        let via_workload = run_trials(
            AlgorithmSpec::WaitingGreedy { tau: None },
            &UniformWorkload::new(10),
            &cfg,
        );
        assert_eq!(raw, via_workload);
    }

    #[test]
    fn faulted_scenario_sweeps_are_serial_parallel_identical() {
        let cfg = BatchConfig {
            n: 12,
            trials: 6,
            horizon: Some(6_000),
            seed: 0xFA,
            parallel: false,
        };
        for spec in [
            AlgorithmSpec::Gathering,
            AlgorithmSpec::WaitingGreedy { tau: None },
        ] {
            let scenario = Scenario::Uniform.with_faults(FaultProfile::crash(0.002));
            let serial = run_scenario_trials(spec, scenario, &cfg);
            let parallel = run_scenario_trials(
                spec,
                scenario,
                &BatchConfig {
                    parallel: true,
                    ..cfg
                },
            );
            assert_eq!(serial, parallel, "{spec}");
            assert!(serial.iter().all(|r| r.data_conserved || !r.terminated()));
        }
    }

    #[test]
    fn round_scenarios_sweep_serial_parallel_identical() {
        let cfg = BatchConfig {
            n: 12,
            trials: 6,
            horizon: Some(6_000),
            seed: 9,
            parallel: false,
        };
        for scenario in [
            Scenario::RandomMatching,
            Scenario::Tournament,
            Scenario::IntervalConnected { t: 8 },
        ] {
            let serial = run_scenario_trials(AlgorithmSpec::Gathering, scenario, &cfg);
            let parallel = run_scenario_trials(
                AlgorithmSpec::Gathering,
                scenario,
                &BatchConfig {
                    parallel: true,
                    ..cfg
                },
            );
            assert_eq!(serial, parallel, "{scenario}");
            assert!(
                serial.iter().all(|r| r.terminated() && r.data_conserved),
                "{scenario}"
            );
        }
        // The sink-unmatched round trap starves even Gathering.
        let starved = run_scenario_trials(AlgorithmSpec::Gathering, Scenario::RoundIsolator, &cfg);
        assert!(starved
            .iter()
            .all(|r| !r.terminated() && r.interactions_processed == 6_000));
    }

    #[test]
    fn faulted_round_scenarios_flow_through_the_flattened_fault_layer() {
        let cfg = BatchConfig {
            n: 12,
            trials: 5,
            horizon: Some(8_000),
            seed: 0xFA,
            parallel: false,
        };
        let scenario = Scenario::RandomMatching.with_faults(FaultProfile::lossy(0.2));
        let serial = run_scenario_trials(AlgorithmSpec::Gathering, scenario, &cfg);
        let parallel = run_scenario_trials(
            AlgorithmSpec::Gathering,
            scenario,
            &BatchConfig {
                parallel: true,
                ..cfg
            },
        );
        assert_eq!(serial, parallel);
        assert!(serial.iter().any(|r| r.faults.lost_interactions > 0));
        assert!(serial.iter().all(|r| !r.terminated() || r.data_conserved));
    }

    #[test]
    fn fault_free_faulted_scenario_reproduces_the_plain_scenario() {
        let cfg = config(10, 5, false);
        let plain = run_scenario_trials(AlgorithmSpec::Gathering, Scenario::Uniform, &cfg);
        let wrapped = run_scenario_trials(
            AlgorithmSpec::Gathering,
            FaultedScenario::from(Scenario::Uniform),
            &cfg,
        );
        assert_eq!(plain, wrapped);
        assert!(plain.iter().all(|r| r.faults.is_clean()));
    }

    #[test]
    #[should_panic(expected = "fewer than 2 live nodes")]
    fn invalid_fault_plans_panic_with_the_typed_error_not_a_hang() {
        let bad = Scenario::Uniform.with_faults(FaultProfile {
            min_live: 1,
            ..FaultProfile::churn(0.5, 0.0)
        });
        let _ = run_scenario_trials(AlgorithmSpec::Gathering, bad, &config(8, 2, false));
    }

    #[test]
    #[should_panic(expected = "is adaptive")]
    fn scenario_sweep_rejects_oracles_over_adaptive_streams() {
        let cfg = config(10, 2, false);
        let _ = run_scenario_trials(
            AlgorithmSpec::OfflineOptimal,
            Scenario::AdaptiveIsolator,
            &cfg,
        );
    }

    #[test]
    fn ordering_offline_fastest_waiting_slowest() {
        let cfg = config(16, 6, false);
        let offline = run_batch(AlgorithmSpec::OfflineOptimal, &cfg);
        let gathering = run_batch(AlgorithmSpec::Gathering, &cfg);
        let waiting = run_batch(AlgorithmSpec::Waiting, &cfg);
        assert!(offline.interactions.mean < gathering.interactions.mean);
        assert!(gathering.interactions.mean < waiting.interactions.mean);
    }

    #[test]
    fn custom_horizon_is_respected() {
        let cfg = BatchConfig {
            n: 8,
            trials: 3,
            horizon: Some(2_000),
            seed: 1,
            parallel: false,
        };
        assert_eq!(cfg.horizon_len(), 2_000);
        let result = run_batch(AlgorithmSpec::Gathering, &cfg);
        assert_eq!(result.completed, 3);
    }

    #[test]
    #[should_panic(expected = "increase the horizon")]
    fn hopelessly_short_horizon_panics_with_guidance() {
        let cfg = BatchConfig {
            n: 10,
            trials: 2,
            horizon: Some(3),
            seed: 1,
            parallel: false,
        };
        let _ = run_batch(AlgorithmSpec::Waiting, &cfg);
    }
}
