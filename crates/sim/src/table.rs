//! Table rendering for experiment reports.
//!
//! EXPERIMENTS.md and the examples print their results as Markdown tables
//! (and optionally CSV); this module keeps that formatting in one place.

/// A simple table: a header row plus data rows of equal arity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity does not match the header.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} does not match header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        let format_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&format_row(&self.header));
        let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format_row(&separator));
        for row in &self.rows {
            out.push_str(&format_row(row));
        }
        out
    }

    /// Renders as CSV (no quoting — callers keep cells free of commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Convenience: builds a Markdown table in one call.
pub fn markdown_table<H, S, R>(header: H, rows: R) -> String
where
    H: IntoIterator<Item = S>,
    S: Into<String>,
    R: IntoIterator<Item = Vec<String>>,
{
    let mut table = Table::new(header);
    for row in rows {
        table.push_row(row);
    }
    table.to_markdown()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_aligns_columns() {
        let mut t = Table::new(["algorithm", "n", "mean"]);
        t.push_row(["Gathering", "64", "3969.0"]);
        t.push_row(["Waiting", "64", "8241.5"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| algorithm | n  | mean   |"));
        assert!(md.contains("| Gathering | 64 | 3969.0 |"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn helper_builds_in_one_call() {
        let md = markdown_table(["x", "y"], vec![vec!["1".to_string(), "2".to_string()]]);
        assert!(md.contains("| 1 | 2 |"));
    }
}
