//! Datum families: what each node's initial datum is, and how a finished
//! trial is judged and summarised — the bridge between the engine's
//! compile-time [`Aggregate`] generic and a sweep's runtime-selected
//! [`AggregateKind`].
//!
//! A [`DatumFamily`] bundles the three decisions a sweep must make once it
//! is generic over the aggregate:
//!
//! 1. **Seeding** — the initial datum of node `v` ([`DatumFamily::initial`]):
//!    the origin singleton for [`IdSet`], `1` for [`Count`], a
//!    seed-derived sensor reading in `[0, 1)` for the numeric folds and
//!    the quantile sketch, the hashed node id for the distinct sketch.
//! 2. **Conservation** — what "every datum is accounted for" means for
//!    this family ([`DatumFamily::conserved`]). Only the families whose
//!    aggregate determines the input multiset can check it exactly
//!    (`IdSet`: the origin set is `{0..n}`; `Count`/`Quantile`: the count
//!    is `n`); the lossy folds (`Sum`, `Min`, `Max`, `Distinct`) cannot
//!    distinguish a dropped datum from an unlucky one, so they report
//!    `true` and exact conservation checking remains the
//!    [`ExactOrigins`] family's job.
//! 3. **Summary** — the constant-size [`AggregateSummary`] stamped on the
//!    [`crate::TrialResult`] ([`DatumFamily::summary`]). `None` for
//!    [`ExactOrigins`], keeping default sweeps structurally identical to
//!    every result produced before aggregates were selectable.
//!
//! Sensor readings are a pure function of `(family seed, node id)` —
//! trial index and worker count never enter — so serial and parallel
//! sweeps of any family stay byte-identical, the same determinism
//! contract the interaction streams obey.

use doda_core::algebra::{AggregateSummary, DistinctSketch, QuantileSketch};
use doda_core::data::{Aggregate, Count, IdSet, MaxData, MinData, SumData};
use doda_graph::NodeId;
use doda_stats::rng::SeedSequence;

/// Label of the sensor-reading seed stream within a family seed (keeps
/// readings independent of the trial interaction streams, which draw
/// sub-seeds of the same sweep seed).
const READING_LABEL: u64 = 0xDA;

/// A family of initial data for a trial: how nodes are seeded, how
/// conservation is judged, and how the sink's final aggregate is
/// summarised. See the [module docs](self).
pub trait DatumFamily: Sync {
    /// The aggregate type carried by every node.
    type Agg: Aggregate;

    /// The initial datum of node `v`.
    fn initial(&self, v: NodeId) -> Self::Agg;

    /// Whether `agg` — the sink's data merged with the fault-model's
    /// lost/recovered bins — accounts for all `n` origins, as far as this
    /// family can tell.
    fn conserved(&self, agg: &Self::Agg, n: usize) -> bool;

    /// The constant-size summary of the sink's final aggregate; `None`
    /// when the family has nothing to report ([`ExactOrigins`]).
    fn summary(&self, agg: &Self::Agg) -> Option<AggregateSummary>;
}

/// A sensor reading in `[0, 1)`: a pure function of the family seed and
/// the node id (53 mantissa bits of the node's sub-seed).
fn reading(seed: u64, v: NodeId) -> f64 {
    let h = SeedSequence::new(seed)
        .child(READING_LABEL)
        .seed(v.index() as u64);
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The exact-conservation family: every node starts with its origin
/// singleton and the sink must end with `{0, …, n−1}`. The default of
/// every sweep, and the only family whose conservation check is exact at
/// the origin granularity.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactOrigins;

impl DatumFamily for ExactOrigins {
    type Agg = IdSet;

    fn initial(&self, v: NodeId) -> IdSet {
        IdSet::singleton(v)
    }

    fn conserved(&self, agg: &IdSet, n: usize) -> bool {
        agg.covers_all(n)
    }

    fn summary(&self, _agg: &IdSet) -> Option<AggregateSummary> {
        None
    }
}

/// The counting family: every node starts with `1`; the sink must end
/// with exactly `n`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountFamily;

impl DatumFamily for CountFamily {
    type Agg = Count;

    fn initial(&self, _v: NodeId) -> Count {
        Count::unit()
    }

    fn conserved(&self, agg: &Count, n: usize) -> bool {
        agg.covers_exactly(n)
    }

    fn summary(&self, agg: &Count) -> Option<AggregateSummary> {
        Some(AggregateSummary::Count { value: agg.0 })
    }
}

/// The summing family: node `v` starts with its seed-derived reading.
/// Sums cannot verify conservation (a lost reading is indistinguishable
/// from a small one), so [`DatumFamily::conserved`] is trivially `true`.
#[derive(Debug, Clone, Copy)]
pub struct SumFamily {
    seed: u64,
}

impl SumFamily {
    /// A summing family whose readings derive from `seed`.
    pub fn new(seed: u64) -> Self {
        SumFamily { seed }
    }
}

impl DatumFamily for SumFamily {
    type Agg = SumData;

    fn initial(&self, v: NodeId) -> SumData {
        SumData(reading(self.seed, v))
    }

    fn conserved(&self, _agg: &SumData, _n: usize) -> bool {
        true
    }

    fn summary(&self, agg: &SumData) -> Option<AggregateSummary> {
        Some(AggregateSummary::Sum { value: agg.0 })
    }
}

/// The minimum family; conservation is trivially `true` (see
/// [`SumFamily`]).
#[derive(Debug, Clone, Copy)]
pub struct MinFamily {
    seed: u64,
}

impl MinFamily {
    /// A minimum family whose readings derive from `seed`.
    pub fn new(seed: u64) -> Self {
        MinFamily { seed }
    }
}

impl DatumFamily for MinFamily {
    type Agg = MinData;

    fn initial(&self, v: NodeId) -> MinData {
        MinData(reading(self.seed, v))
    }

    fn conserved(&self, _agg: &MinData, _n: usize) -> bool {
        true
    }

    fn summary(&self, agg: &MinData) -> Option<AggregateSummary> {
        Some(AggregateSummary::Min { value: agg.0 })
    }
}

/// The maximum family; conservation is trivially `true` (see
/// [`SumFamily`]).
#[derive(Debug, Clone, Copy)]
pub struct MaxFamily {
    seed: u64,
}

impl MaxFamily {
    /// A maximum family whose readings derive from `seed`.
    pub fn new(seed: u64) -> Self {
        MaxFamily { seed }
    }
}

impl DatumFamily for MaxFamily {
    type Agg = MaxData;

    fn initial(&self, v: NodeId) -> MaxData {
        MaxData(reading(self.seed, v))
    }

    fn conserved(&self, _agg: &MaxData, _n: usize) -> bool {
        true
    }

    fn summary(&self, agg: &MaxData) -> Option<AggregateSummary> {
        Some(AggregateSummary::Max { value: agg.0 })
    }
}

/// The distinct-count family: node `v` starts with the sketch of its own
/// id, so the sink's estimate approximates the number of distinct origins
/// aggregated — the constant-per-node-state stand-in for [`ExactOrigins`].
/// The estimate is approximate by construction, so conservation is
/// trivially `true`.
#[derive(Debug, Clone, Copy)]
pub struct DistinctFamily {
    seed: u64,
}

impl DistinctFamily {
    /// A distinct-count family whose sketch hashes derive from `seed`.
    pub fn new(seed: u64) -> Self {
        DistinctFamily { seed }
    }
}

impl DatumFamily for DistinctFamily {
    type Agg = DistinctSketch;

    fn initial(&self, v: NodeId) -> DistinctSketch {
        DistinctSketch::singleton(self.seed, v.index() as u64)
    }

    fn conserved(&self, _agg: &DistinctSketch, _n: usize) -> bool {
        true
    }

    fn summary(&self, agg: &DistinctSketch) -> Option<AggregateSummary> {
        Some(AggregateSummary::Distinct {
            estimate: agg.estimate(),
        })
    }
}

/// The quantile family: node `v` starts with the sketch of its reading
/// (readings live in `[0, 1)`, the sketch's bin range). The sketch counts
/// exactly, so conservation — all `n` readings aggregated — is checkable.
#[derive(Debug, Clone, Copy)]
pub struct QuantileFamily {
    seed: u64,
}

impl QuantileFamily {
    /// A quantile family whose readings derive from `seed`.
    pub fn new(seed: u64) -> Self {
        QuantileFamily { seed }
    }
}

impl DatumFamily for QuantileFamily {
    type Agg = QuantileSketch;

    fn initial(&self, v: NodeId) -> QuantileSketch {
        QuantileSketch::singleton(0.0, 1.0, reading(self.seed, v))
    }

    fn conserved(&self, agg: &QuantileSketch, n: usize) -> bool {
        agg.count() == n as u64
    }

    fn summary(&self, agg: &QuantileSketch) -> Option<AggregateSummary> {
        Some(AggregateSummary::Quantile {
            count: agg.count(),
            median: agg.quantile(0.5),
            p95: agg.quantile(0.95),
        })
    }
}

/// The runtime-selected aggregate of a sweep ([`crate::Sweep::aggregate`]):
/// which [`DatumFamily`] seeds the trials. Defaults to [`IdSet`] — the
/// exact-conservation family every existing sweep runs — so selecting
/// nothing changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggregateKind {
    /// [`ExactOrigins`]: exact origin sets, `O(n)` state at the sink.
    #[default]
    IdSet,
    /// [`CountFamily`]: exact population count, `O(1)` state.
    Count,
    /// [`SumFamily`]: sum of seed-derived readings, `O(1)` state.
    Sum,
    /// [`MinFamily`]: minimum reading (total order), `O(1)` state.
    Min,
    /// [`MaxFamily`]: maximum reading (total order), `O(1)` state.
    Max,
    /// [`DistinctFamily`]: approximate distinct-origin count, `O(1)`
    /// state per node.
    Distinct,
    /// [`QuantileFamily`]: approximate reading quantiles plus an exact
    /// count, `O(1)` state per node.
    Quantile,
}

impl AggregateKind {
    /// The sweep-facing label (the `aggregate` column of bench grids).
    pub fn label(self) -> &'static str {
        match self {
            AggregateKind::IdSet => "id-set",
            AggregateKind::Count => "count",
            AggregateKind::Sum => "sum",
            AggregateKind::Min => "min",
            AggregateKind::Max => "max",
            AggregateKind::Distinct => "distinct",
            AggregateKind::Quantile => "quantile",
        }
    }
}

impl std::fmt::Display for AggregateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_deterministic_in_range_and_seed_sensitive() {
        for v in 0..64 {
            let r = reading(7, NodeId(v));
            assert!((0.0..1.0).contains(&r));
            assert_eq!(r, reading(7, NodeId(v)));
            assert_ne!(r, reading(8, NodeId(v)));
        }
    }

    #[test]
    fn exact_families_check_conservation_exactly() {
        let origins = ExactOrigins;
        let mut set = origins.initial(NodeId(0));
        set.merge(origins.initial(NodeId(1)));
        assert!(origins.conserved(&set, 2));
        assert!(!origins.conserved(&set, 3));

        let counts = CountFamily;
        let mut count = counts.initial(NodeId(0));
        count.merge(counts.initial(NodeId(1)));
        assert!(counts.conserved(&count, 2));
        assert!(!counts.conserved(&count, 3));

        let quantiles = QuantileFamily::new(1);
        let mut q = quantiles.initial(NodeId(0));
        q.merge(quantiles.initial(NodeId(1)));
        assert!(quantiles.conserved(&q, 2));
        assert!(!quantiles.conserved(&q, 3));
    }

    #[test]
    fn summaries_report_the_aggregated_value() {
        let family = DistinctFamily::new(3);
        let mut sketch = family.initial(NodeId(0));
        for v in 1..50 {
            sketch.merge(family.initial(NodeId(v)));
        }
        let Some(AggregateSummary::Distinct { estimate }) = family.summary(&sketch) else {
            panic!("distinct family must summarise");
        };
        assert!((estimate - 50.0).abs() / 50.0 < 0.25);

        assert_eq!(ExactOrigins.summary(&IdSet::singleton(NodeId(0))), None);
    }
}
