//! Simulation harness for the DODA reproduction.
//!
//! This crate turns the building blocks of `doda-core`, `doda-adversary`
//! and `doda-workloads` into repeatable experiments:
//!
//! * [`spec::AlgorithmSpec`] names an algorithm plus its
//!   [`spec::KnowledgeRequirement`] — which decides whether sweeps stream
//!   it straight off the adversary (`O(n)` memory at any horizon) or must
//!   materialise the sequence for its oracles;
//! * [`scenario::Scenario`] is the unified registry of interaction
//!   processes: synthetic workloads, the oblivious / weighted / adaptive
//!   adversaries, *and* the round scenarios (random matchings,
//!   tournaments, interval-connected graphs, the sink-unmatched round
//!   trap), all enumerable by the same sweep;
//! * [`scenario::FaultedScenario`] crosses that registry with the fault
//!   axis of `doda_core::fault` — crash faults, node churn, lossy
//!   interactions — so every scenario also runs under a seeded,
//!   deterministic fault plan;
//! * [`trial`] runs one algorithm over one stream (or sequence) and
//!   extracts metrics;
//! * [`sweep::Sweep`] is the unified batch builder: scenario or workload ×
//!   algorithm × trials × seed × parallelism × execution tier
//!   ([`sweep::ExecutionTier`]: auto / scalar / lockstep **lanes** /
//!   native rounds);
//! * [`runner`] keeps the legacy batch entry points as thin wrappers over
//!   [`sweep::Sweep`] and summarises results;
//! * [`table`] renders result rows as Markdown/CSV for EXPERIMENTS.md and
//!   the examples.
//!
//! # Example
//!
//! ```
//! use doda_sim::prelude::*;
//!
//! let results = Sweep::scenario(AlgorithmSpec::Gathering, Scenario::Uniform)
//!     .n(16)
//!     .trials(5)
//!     .seed(7)
//!     .run();
//! assert_eq!(results.len(), 5);
//! assert!(results.iter().all(|r| r.completion.terminated()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod datum;
pub mod runner;
pub mod scenario;
pub mod spec;
pub mod sweep;
pub mod table;
pub mod test_support;
pub mod trial;

pub use datum::{
    AggregateKind, CountFamily, DatumFamily, DistinctFamily, ExactOrigins, MaxFamily, MinFamily,
    QuantileFamily, SumFamily,
};
#[allow(deprecated)]
pub use runner::{
    run_batch, run_batch_detailed, run_scenario_trials, run_trials, BatchConfig, BatchResult,
};
pub use scenario::{FaultedScenario, Scenario};
pub use spec::{AlgorithmSpec, KnowledgeRequirement};
pub use sweep::{ExecutionTier, Sweep};
pub use trial::{
    finish_trial, finish_trial_with, run_trial_on_sequence, ByzantineInjection, FaultInjection,
    TrialConfig, TrialResult, TrialRunner,
};

/// Commonly used items for examples and benches.
pub mod prelude {
    pub use crate::datum::{AggregateKind, DatumFamily, ExactOrigins};
    #[allow(deprecated)]
    pub use crate::runner::{
        run_batch, run_batch_detailed, run_scenario_trials, run_trials, BatchConfig, BatchResult,
    };
    pub use crate::scenario::{FaultedScenario, Scenario};
    pub use crate::spec::{AlgorithmSpec, KnowledgeRequirement};
    pub use crate::sweep::{ExecutionTier, Sweep};
    pub use crate::table::{markdown_table, Table};
    pub use crate::trial::{
        finish_trial, finish_trial_with, run_trial_on_sequence, ByzantineInjection, FaultInjection,
        TrialConfig, TrialResult, TrialRunner,
    };
}
