//! End-to-end over the in-memory loopback: the ISSUE's demo criterion.
//!
//! * ≥1000 concurrent scenario sessions driven over the wire produce
//!   results **byte-identical** to the equivalent standalone
//!   [`Sweep`] run per session;
//! * externally-fed sessions replayed over the wire match the same
//!   events replayed directly against the engine;
//! * backpressure is observable — the bounded inbox's high-water mark
//!   never exceeds its capacity, shed counts surface, and
//!   [`OverflowPolicy::Block`] refuses (then accepts after draining).

use doda_core::data::IdSet;
use doda_core::engine::{Engine, EngineConfig};
use doda_core::sequence::StepEvent;
use doda_core::{DiscardTransmissions, Interaction};
use doda_graph::NodeId;
use doda_service::prelude::*;
use doda_sim::{finish_trial, AlgorithmSpec, Scenario, Sweep, TrialResult};

/// The fleet: cycle specs and scenarios per tenant, vary seed and size.
fn fleet_shape(tenant: u64) -> (AlgorithmSpec, Scenario, usize, u64) {
    // Only the truly online specs can run as sessions; the rest need
    // knowledge of the future and are refused at open.
    let spec = if tenant % 2 == 0 {
        AlgorithmSpec::Waiting
    } else {
        AlgorithmSpec::Gathering
    };
    let scenario = match tenant % 4 {
        0 => Scenario::Uniform,
        1 => Scenario::Zipf { exponent: 1.2 },
        2 => Scenario::RandomMatching,
        _ => Scenario::Tournament,
    };
    let n = 8 + (tenant % 5) as usize;
    (spec, scenario, n, 1_000 + tenant)
}

fn reference_sweep(spec: AlgorithmSpec, scenario: Scenario, n: usize, seed: u64) -> TrialResult {
    let mut results = Sweep::scenario(spec, scenario)
        .n(n)
        .trials(1)
        .seed(seed)
        .run();
    assert_eq!(results.len(), 1);
    results.remove(0)
}

#[test]
fn thousand_sessions_over_loopback_match_standalone_sweeps() {
    const SESSIONS: u64 = 1_000;

    let (client_end, service_end) = Loopback::pair();
    let mut client = ServiceClient::new(client_end);
    let mut service = ServiceEndpoint::new(SessionManager::with_workers(4), service_end);

    // Small slice budget so sessions genuinely interleave: every session
    // is paused and resumed many times before it resolves.
    let config = SessionConfig {
        slice_budget: 64,
        ..SessionConfig::default()
    };
    for tenant in 0..SESSIONS {
        let (spec, scenario, n, seed) = fleet_shape(tenant);
        client
            .open_scenario(SessionId(tenant), spec, scenario, n, seed, &config)
            .expect("loopback send");
    }

    service.run_until_idle().expect("service run");
    assert!(service.manager().is_empty(), "every session retired");

    let mut seen = 0;
    while let Some(reply) = client.poll_result().expect("decode reply") {
        let (session, result) = match reply {
            WireResult::Result { session, result } => (session, result),
            WireResult::Error { session, message } => {
                panic!("session {session} failed: {message}")
            }
        };
        let (spec, scenario, n, seed) = fleet_shape(session.0);
        let reference = reference_sweep(spec, scenario, n, seed);
        assert_eq!(
            result, reference,
            "session {session} diverged from its standalone sweep"
        );
        seen += 1;
    }
    assert_eq!(seen, SESSIONS);
}

#[test]
fn worker_count_never_changes_results() {
    const SESSIONS: u64 = 40;
    let mut per_pool: Vec<Vec<(SessionId, TrialResult)>> = Vec::new();
    for workers in [1, 3, 8] {
        let mut manager = SessionManager::with_workers(workers);
        let config = SessionConfig {
            slice_budget: 32,
            ..SessionConfig::default()
        };
        for tenant in 0..SESSIONS {
            let (spec, scenario, n, seed) = fleet_shape(tenant);
            manager
                .open_scenario(SessionId(tenant), spec, scenario, n, seed, &config)
                .expect("open");
        }
        manager.run_until_idle();
        let mut results = Vec::new();
        while let Some(done) = manager.poll_result() {
            results.push(done);
        }
        per_pool.push(results);
    }
    assert_eq!(per_pool[0], per_pool[1]);
    assert_eq!(per_pool[0], per_pool[2]);
}

/// A deterministic little event script for externally-fed sessions.
fn event_script(n: usize, rounds: usize) -> Vec<StepEvent> {
    let mut events = Vec::new();
    for round in 0..rounds {
        for i in 1..n {
            let peer = (i + round) % n;
            if peer != i {
                events.push(StepEvent::Interaction(Interaction::new(
                    NodeId(i),
                    NodeId(peer),
                )));
            }
        }
    }
    events
}

#[test]
fn external_sessions_match_a_direct_engine_replay() {
    let n = 10;
    let spec = AlgorithmSpec::Gathering;
    let events = event_script(n, 6);

    // Reference: the same events straight through the engine, one run.
    let reference = {
        struct Replay(std::collections::VecDeque<StepEvent>);
        impl doda_core::sequence::InteractionSource for Replay {
            fn node_count(&self) -> usize {
                10
            }
            fn next_interaction(
                &mut self,
                t: doda_core::Time,
                view: &doda_core::sequence::AdversaryView<'_>,
            ) -> Option<Interaction> {
                while let Some(event) = self.next_event(t, view) {
                    if let StepEvent::Interaction(i) = event {
                        return Some(i);
                    }
                }
                None
            }
            fn next_event(
                &mut self,
                _t: doda_core::Time,
                _view: &doda_core::sequence::AdversaryView<'_>,
            ) -> Option<StepEvent> {
                self.0.pop_front()
            }
        }
        let horizon = doda_adversary::RandomizedAdversary::default_horizon(n) as u64;
        let mut engine = Engine::new();
        let mut algorithm = spec.instantiate_online().expect("online");
        let mut run =
            engine.begin_run(n, NodeId(0), IdSet::singleton, EngineConfig::sweep(horizon));
        let mut source = Replay(events.iter().copied().collect());
        while engine
            .step_for(
                &mut run,
                algorithm.as_mut(),
                &mut source,
                IdSet::singleton,
                u64::MAX,
                &mut DiscardTransmissions,
            )
            .expect("step")
            .can_continue()
        {}
        finish_trial(spec, &engine, engine.finish_run(&run), None)
    };

    // Same events over the wire, drip-fed in small bursts so the session
    // repeatedly drains, parks as AwaitingEvents, and resumes.
    let (client_end, service_end) = Loopback::pair();
    let mut client = ServiceClient::new(client_end);
    let mut service = ServiceEndpoint::new(SessionManager::with_workers(2), service_end);
    let id = SessionId(77);
    let config = SessionConfig {
        slice_budget: 4,
        inbox_capacity: 1_024,
        ..SessionConfig::default()
    };
    client
        .open_external(id, spec, n, &config)
        .expect("loopback send");
    for burst in events.chunks(7) {
        for event in burst {
            client.send_event(id, *event).expect("loopback send");
        }
        service.run_until_idle().expect("service run");
    }
    client.close(id).expect("loopback send");
    service.run_until_idle().expect("service run");

    let reply = client
        .poll_result()
        .expect("decode reply")
        .expect("one result frame");
    match reply {
        WireResult::Result { session, result } => {
            assert_eq!(session, id);
            assert_eq!(result, reference, "wire replay diverged from direct replay");
        }
        WireResult::Error { message, .. } => panic!("session failed: {message}"),
    }
}

#[test]
fn shed_policy_bounds_the_inbox_and_counts_drops() {
    let mut manager = SessionManager::with_workers(1);
    let id = SessionId(1);
    let config = SessionConfig {
        inbox_capacity: 8,
        overflow: OverflowPolicy::Shed,
        ..SessionConfig::default()
    };
    manager
        .open_external(id, AlgorithmSpec::Gathering, 6, &config)
        .expect("open");

    // Overfill without ever draining: pushes keep succeeding, the
    // overflow is shed and counted, and the bound is never exceeded.
    for k in 0..50u64 {
        let a = 1 + (k % 5) as usize;
        let event = StepEvent::Interaction(Interaction::new(NodeId(0), NodeId(a)));
        manager.push_event(id, event).expect("shed push succeeds");
        assert!(manager.inbox_len(id).unwrap() <= 8);
    }
    assert_eq!(manager.inbox_high_water(id), Some(8));
    assert_eq!(manager.session_shed_count(id), Some(42));
    assert_eq!(manager.shed_count(), 42);
}

#[test]
fn block_policy_refuses_until_the_scheduler_drains() {
    let mut manager = SessionManager::with_workers(1);
    let id = SessionId(2);
    let config = SessionConfig {
        inbox_capacity: 4,
        overflow: OverflowPolicy::Block,
        ..SessionConfig::default()
    };
    manager
        .open_external(id, AlgorithmSpec::Gathering, 6, &config)
        .expect("open");

    let event = |k: u64| {
        let a = 1 + (k % 5) as usize;
        StepEvent::Interaction(Interaction::new(NodeId(0), NodeId(a)))
    };
    for k in 0..4 {
        manager.push_event(id, event(k)).expect("below capacity");
    }
    let refused = manager.push_event(id, event(4));
    assert!(
        matches!(
            refused,
            Err(ServiceError::Backpressure {
                session,
                capacity: 4
            }) if session == id
        ),
        "full Block inbox must refuse, got {refused:?}"
    );

    // Draining the scheduler frees capacity; the retry lands.
    manager.run_slice();
    manager.push_event(id, event(4)).expect("after drain");
    assert!(manager.inbox_high_water(id).unwrap() <= 4);
}

#[test]
fn tenant_mistakes_come_back_as_error_frames_not_poison() {
    let (client_end, service_end) = Loopback::pair();
    let mut client = ServiceClient::new(client_end);
    let mut service = ServiceEndpoint::new(SessionManager::with_workers(1), service_end);
    let config = SessionConfig::default();

    // An offline-optimal spec needs the whole sequence up front; the
    // session tier must refuse it.
    client
        .open_scenario(
            SessionId(1),
            AlgorithmSpec::OfflineOptimal,
            Scenario::Uniform,
            8,
            1,
            &config,
        )
        .expect("send");
    // An event for a session that was never opened.
    client
        .send_event(
            SessionId(9),
            StepEvent::Interaction(Interaction::new(NodeId(0), NodeId(1))),
        )
        .expect("send");
    // A healthy session alongside the mistakes.
    client
        .open_scenario(
            SessionId(2),
            AlgorithmSpec::Gathering,
            Scenario::Uniform,
            8,
            5,
            &config,
        )
        .expect("send");

    service.run_until_idle().expect("mistakes must not poison");

    let mut errors = 0;
    let mut results = 0;
    while let Some(reply) = client.poll_result().expect("decode") {
        match reply {
            WireResult::Error { session, .. } => {
                assert!(session == SessionId(1) || session == SessionId(9));
                errors += 1;
            }
            WireResult::Result { session, .. } => {
                assert_eq!(session, SessionId(2));
                results += 1;
            }
        }
    }
    assert_eq!((errors, results), (2, 1));
}

#[test]
fn results_stream_out_before_the_fleet_finishes() {
    // One tiny session and one huge one: the tiny session's result must
    // be pollable while the huge one is still running.
    let mut manager = SessionManager::with_workers(2);
    let config = SessionConfig {
        slice_budget: 16,
        ..SessionConfig::default()
    };
    manager
        .open_scenario(
            SessionId(1),
            AlgorithmSpec::Gathering,
            Scenario::Uniform,
            8,
            3,
            &config,
        )
        .expect("open small");
    manager
        .open_scenario(
            SessionId(2),
            AlgorithmSpec::Waiting,
            Scenario::Uniform,
            256,
            3,
            &config,
        )
        .expect("open large");

    let mut small_done_while_large_live = false;
    while !manager.is_idle() {
        manager.run_slice();
        if manager.pending_results() > 0 && !manager.is_empty() {
            small_done_while_large_live = true;
            break;
        }
    }
    assert!(
        small_done_while_large_live,
        "completion must stream out while other sessions still run"
    );
    let (id, _) = manager.poll_result().expect("the small session's result");
    assert_eq!(id, SessionId(1));
}

#[test]
fn a_faulted_session_in_a_slice_never_discards_other_sessions_results() {
    use doda_core::fault::CrashPolicy;

    // Session 1's feed is inconsistent (a second crash of the same node);
    // session 2 finishes in the same slice. The faulted session must be
    // killed and queued as a failure while session 2's result is queued —
    // not discarded.
    let mut manager = SessionManager::with_workers(1);
    let external = SessionId(1);
    let scenario = SessionId(2);
    manager
        .open_external(
            external,
            AlgorithmSpec::Gathering,
            8,
            &SessionConfig::default(),
        )
        .expect("open external");
    manager
        .open_scenario(
            scenario,
            AlgorithmSpec::Gathering,
            Scenario::Uniform,
            8,
            3,
            &SessionConfig {
                slice_budget: u64::MAX,
                ..SessionConfig::default()
            },
        )
        .expect("open scenario");

    let crash = StepEvent::Crash {
        node: NodeId(3),
        policy: CrashPolicy::DatumLost,
    };
    manager
        .push_event(external, crash)
        .expect("first crash is valid");
    manager
        .push_event(external, crash)
        .expect("push-time checks cannot see liveness; the engine catches this at drain");

    let stepped = manager.run_slice();
    assert_eq!(stepped, 2);
    assert!(manager.is_empty(), "both sessions retired in one slice");

    let (failed, error) = manager.poll_failure().expect("the faulted session's error");
    assert_eq!(failed, external);
    assert!(
        matches!(error, ServiceError::SessionFault { session, .. } if session == external),
        "engine rejection must be attributed to its session, got {error:?}"
    );
    let (done, result) = manager.poll_result().expect("the healthy session's result");
    assert_eq!(done, scenario);
    assert!(result.completion.terminated());
    assert!(manager.poll_failure().is_none());
    assert!(manager.poll_result().is_none());
}

#[test]
fn a_poisonous_tenant_cannot_wedge_the_endpoint() {
    use doda_core::fault::CrashPolicy;

    let (client_end, service_end) = Loopback::pair();
    let mut client = ServiceClient::new(client_end);
    let mut service = ServiceEndpoint::new(SessionManager::with_workers(2), service_end);
    let config = SessionConfig::default();

    let attacker = SessionId(7);
    let victim = SessionId(8);
    client
        .open_external(attacker, AlgorithmSpec::Gathering, 8, &config)
        .expect("send");
    client
        .open_scenario(
            victim,
            AlgorithmSpec::Gathering,
            Scenario::Uniform,
            8,
            5,
            &config,
        )
        .expect("send");

    // Well-formed frames, hostile content: a crash of the sink and a
    // crash of a node outside the population are refused at push time...
    client
        .send_event(
            attacker,
            StepEvent::Crash {
                node: NodeId(0),
                policy: CrashPolicy::DatumLost,
            },
        )
        .expect("send");
    client
        .send_event(
            attacker,
            StepEvent::Crash {
                node: NodeId(99),
                policy: CrashPolicy::DatumLost,
            },
        )
        .expect("send");
    // ...while a double crash only liveness history can catch reaches the
    // engine, which kills the attacker's session — and nothing else.
    for _ in 0..2 {
        client
            .send_event(
                attacker,
                StepEvent::Crash {
                    node: NodeId(3),
                    policy: CrashPolicy::DatumLost,
                },
            )
            .expect("send");
    }

    service
        .run_until_idle()
        .expect("a tenant's bad events must never error the endpoint");
    assert!(
        service.manager().is_empty(),
        "attacker killed, victim finished — nothing left running"
    );

    let mut errors = Vec::new();
    let mut results = Vec::new();
    while let Some(reply) = client.poll_result().expect("decode") {
        match reply {
            WireResult::Error { session, message } => errors.push((session, message)),
            WireResult::Result { session, .. } => results.push(session),
        }
    }
    assert_eq!(
        results,
        vec![victim],
        "the victim's result still streams out"
    );
    assert_eq!(errors.len(), 3, "two refused pushes + one killed session");
    assert!(errors.iter().all(|(session, _)| *session == attacker));
    assert!(
        errors.iter().any(|(_, m)| m.contains("killed")),
        "the kill must be reported to the tenant: {errors:?}"
    );

    // The endpoint keeps serving new tenants afterwards.
    let late = SessionId(9);
    client
        .open_scenario(
            late,
            AlgorithmSpec::Waiting,
            Scenario::Uniform,
            8,
            11,
            &config,
        )
        .expect("send");
    service.run_until_idle().expect("service still serves");
    match client.poll_result().expect("decode").expect("late result") {
        WireResult::Result { session, .. } => assert_eq!(session, late),
        WireResult::Error { message, .. } => panic!("late session failed: {message}"),
    }
}
